//! Property tests for the pending set against a naive reference model,
//! including the cancelled-then-resent-identical-copy corner that bit the
//! engine during development.

use cagvt_base::ids::{EventId, LpId};
use cagvt_base::time::VirtualTime;
use cagvt_core::event::Event;
use cagvt_core::queue::{CancelOutcome, PendingSet};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    /// Insert event (src, seq, time-in-tenths).
    Insert(u8, u8, u16),
    /// Cancel the most recent live copy of (src, seq) if any, else a
    /// random key (exercising the deferred path).
    CancelLive(u8, u8),
    /// Pop the minimum.
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 0u8..16, 1u16..1000).prop_map(|(a, b, t)| Op::Insert(a % 4, b, t)),
        (any::<u8>(), 0u8..16).prop_map(|(a, b)| Op::CancelLive(a % 4, b)),
        Just(Op::Pop),
    ]
}

fn ev(src: u8, seq: u8, tenths: u16) -> Event<u16> {
    Event {
        recv_time: VirtualTime::new(tenths as f64 / 10.0),
        dst: LpId(0),
        id: EventId::new(LpId(src as u32), seq as u64),
        payload: tenths,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The pending set behaves exactly like a sorted map of live events
    /// under arbitrary interleavings of insert, cancel and pop — with the
    /// engine's constraint that at most one copy per id is live at a time.
    #[test]
    fn pending_set_matches_reference(ops in prop::collection::vec(arb_op(), 1..300)) {
        let mut ps: PendingSet<u16> = PendingSet::new();
        // Reference: live events keyed by (time-bits, src, seq).
        let mut reference: BTreeMap<(u64, u32, u64), u16> = BTreeMap::new();
        // Engine constraint bookkeeping: the live copy per id, if any.
        let mut live_copy: BTreeMap<(u8, u8), u16> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(src, seq, t) => {
                    if live_copy.contains_key(&(src, seq)) {
                        // Engine never has two live copies of one id.
                        continue;
                    }
                    let e = ev(src, seq, t);
                    if ps.insert(e) {
                        reference.insert(
                            (VirtualTime::new(t as f64 / 10.0).to_ordered_bits(),
                             src as u32, seq as u64),
                            t,
                        );
                        live_copy.insert((src, seq), t);
                    } else {
                        // Annihilated by a deferred anti: the reference
                        // must have recorded that cancellation.
                    }
                }
                Op::CancelLive(src, seq) => {
                    let t = live_copy.get(&(src, seq)).copied();
                    match t {
                        Some(t) => {
                            let key = cagvt_core::event::EventKey {
                                t: VirtualTime::new(t as f64 / 10.0),
                                id: EventId::new(LpId(src as u32), seq as u64),
                            };
                            prop_assert_eq!(ps.cancel(key), CancelOutcome::AnnihilatedPending);
                            reference.remove(&(key.t.to_ordered_bits(), src as u32, seq as u64));
                            live_copy.remove(&(src, seq));
                        }
                        None => {
                            // Cancel something that is not live: deferred.
                            let key = cagvt_core::event::EventKey {
                                t: VirtualTime::new(0.05),
                                id: EventId::new(LpId(src as u32), seq as u64 + 1000),
                            };
                            prop_assert_eq!(ps.cancel(key), CancelOutcome::Deferred);
                            // A matching insert would annihilate — the ids
                            // used above (seq + 1000) are never inserted,
                            // so the deferred entry stays inert.
                        }
                    }
                }
                Op::Pop => {
                    let got = ps.pop_min();
                    let want = reference.iter().next().map(|(k, v)| (*k, *v));
                    match (got, want) {
                        (None, None) => {}
                        (Some(e), Some(((bits, src, seq), payload))) => {
                            prop_assert_eq!(e.recv_time.to_ordered_bits(), bits);
                            prop_assert_eq!(e.id, EventId::new(LpId(src), seq));
                            prop_assert_eq!(e.payload, payload);
                            reference.remove(&(bits, src, seq));
                            live_copy.remove(&(src as u8, seq as u8));
                        }
                        (got, want) => prop_assert!(false, "mismatch: {got:?} vs {want:?}"),
                    }
                }
            }
            prop_assert_eq!(ps.len(), reference.len());
            prop_assert_eq!(
                ps.min_time().to_ordered_bits(),
                reference
                    .keys()
                    .next()
                    .map(|(bits, _, _)| *bits)
                    .unwrap_or(VirtualTime::INFINITY.to_ordered_bits())
            );
        }
    }

    /// Cancel-then-resend with an identical key (time and id) any number
    /// of times: exactly the last surviving copy pops.
    #[test]
    fn identical_copy_cancellation_chain(n in 1u8..8) {
        let mut ps: PendingSet<u16> = PendingSet::new();
        let e = ev(1, 1, 500);
        for _ in 0..n {
            prop_assert!(ps.insert(e.clone()));
            prop_assert_eq!(ps.cancel(e.key()), CancelOutcome::AnnihilatedPending);
        }
        prop_assert!(ps.insert(e.clone()), "final copy must be accepted");
        let popped = ps.pop_min().expect("final copy must be live");
        prop_assert_eq!(popped.id, e.id);
        prop_assert!(ps.pop_min().is_none(), "no zombie copies");
    }
}
