//! Property tests for LP rollback: arbitrary interleavings of processing
//! and rollbacks always restore exact state, and replay converges to the
//! in-order execution.

use cagvt_base::ids::{EventId, LpId};
use cagvt_base::rng::Pcg32;
use cagvt_base::time::VirtualTime;
use cagvt_core::event::{Event, EventKey};
use cagvt_core::lp::{LpRuntime, RollbackStrategy, SentRecord};
use cagvt_core::model::{Emitter, EventCtx, Model};
use proptest::prelude::*;

/// Model whose state is an order-sensitive hash of everything processed,
/// consuming randomness each event (so restored RNG state is observable).
#[derive(Clone)]
struct HashModel;

impl Model for HashModel {
    type State = u64;
    type Payload = u32;

    fn init_state(&self, lp: LpId, _rng: &mut Pcg32) -> u64 {
        lp.0 as u64
    }
    fn initial_events(&self, _lp: LpId, _s: &mut u64, _r: &mut Pcg32, _e: &mut Emitter<u32>) {}
    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut u64,
        payload: &u32,
        rng: &mut Pcg32,
        emit: &mut Emitter<u32>,
    ) -> u64 {
        *state = state
            .wrapping_mul(0x100000001B3)
            .wrapping_add(*payload as u64)
            .wrapping_add(rng.next_u32() as u64)
            .wrapping_add(ctx.now.as_f64().to_bits());
        emit.emit(ctx.self_lp, 0.1 + rng.next_f64(), payload + 1);
        1
    }
    fn state_fingerprint(&self, state: &u64) -> u64 {
        *state
    }

    fn supports_reverse(&self) -> bool {
        true
    }

    fn reverse(&self, ctx: &EventCtx, state: &mut u64, payload: &u32, rng: &mut Pcg32) {
        // Inverse of the forward fold; the scratch generator re-derives
        // the forward pass's draw.
        const FNV_INV: u64 = 0xCE96_5057_AFF6_957B;
        let draw = rng.next_u32() as u64;
        *state = state
            .wrapping_sub(ctx.now.as_f64().to_bits())
            .wrapping_sub(draw)
            .wrapping_sub(*payload as u64)
            .wrapping_mul(FNV_INV);
    }
}

fn strategies() -> [RollbackStrategy; 5] {
    [
        RollbackStrategy::Snapshot,
        RollbackStrategy::Reverse,
        RollbackStrategy::PeriodicSnapshot(1),
        RollbackStrategy::PeriodicSnapshot(3),
        RollbackStrategy::PeriodicSnapshot(64),
    ]
}

fn ctx(t: f64) -> EventCtx {
    EventCtx {
        now: VirtualTime::new(t),
        self_lp: LpId(0),
        end_time: VirtualTime::new(1e9),
        total_lps: 1,
    }
}

fn make_events(times: &[u16]) -> Vec<Event<u32>> {
    let mut sorted: Vec<u16> = times.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &t)| Event {
            recv_time: VirtualTime::new(t as f64 + 1.0),
            dst: LpId(0),
            id: EventId::new(LpId(9), i as u64),
            payload: t as u32,
        })
        .collect()
}

fn process(lp: &mut LpRuntime<HashModel>, e: Event<u32>) {
    let t = e.recv_time.as_f64();
    let mut em = Emitter::new();
    lp.process(&HashModel, &ctx(t), e, &mut em);
    let sends: Vec<(LpId, f64)> = em.take().map(|(d, dl, _)| (d, dl)).collect();
    let mut recs = Vec::new();
    for (dst, delay) in sends {
        recs.push(SentRecord {
            dst,
            recv_time: VirtualTime::new(t + delay),
            id: EventId::new(LpId(0), lp.next_seq()),
        });
    }
    lp.record_sends(recs);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Process a prefix, roll back to an arbitrary point, replay: the
    /// final state equals processing everything in order once.
    #[test]
    fn rollback_replay_converges(
        times in prop::collection::vec(0u16..500, 2..40),
        cut in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let events = make_events(&times);

        // Ground truth: straight-through processing.
        let mut truth = LpRuntime::<HashModel>::new(LpId(0), &HashModel, seed);
        for e in &events {
            process(&mut truth, e.clone());
        }

        for strategy in strategies() {
            // Optimistic: process everything, then roll back to a random
            // cut and replay the tail — under every rollback strategy.
            let mut lp = LpRuntime::<HashModel>::with_strategy(
                LpId(0),
                &HashModel,
                seed,
                strategy,
                cagvt_base::VirtualTime::new(1e9),
                1,
            );
            for e in &events {
                process(&mut lp, e.clone());
            }
            let cut_idx = (cut as usize) % events.len();
            let cut_key = EventKey {
                t: events[cut_idx].recv_time,
                id: EventId::new(LpId(0), 0), // below any real id at that time
            };
            let rb = lp.rollback_to(&HashModel, cut_key);
            // Everything from cut_idx (inclusive, because its key is above
            // the synthetic cut key) must have been undone.
            prop_assert_eq!(rb.undone as usize, events.len() - cut_idx, "{:?}", strategy);
            prop_assert_eq!(rb.antis.len(), rb.undone as usize, "one send each");

            let mut replay = rb.reenqueue;
            replay.sort_by_key(|e| e.key());
            for e in replay {
                process(&mut lp, e);
            }
            prop_assert_eq!(lp.state, truth.state, "state must converge ({:?})", strategy);
            prop_assert_eq!(lp.rng, truth.rng, "rng must converge ({:?})", strategy);
            prop_assert_eq!(lp.lvt(), truth.lvt());
        }
    }

    /// Periodic-snapshot fossil collection (driven by the incremental
    /// snapshot index) always retains a restoration point: after fossils
    /// at increasing GVTs, rolling back to any surviving event and
    /// replaying still converges to the in-order run.
    #[test]
    fn periodic_fossil_retains_restoration_point(
        times in prop::collection::vec(0u16..500, 3..40),
        k in 1u32..8,
        mut gvt_tenths in prop::collection::vec(0u32..6000, 1..4),
        cut in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let events = make_events(&times);
        let mut truth = LpRuntime::<HashModel>::new(LpId(0), &HashModel, seed);
        for e in &events {
            process(&mut truth, e.clone());
        }
        let mut lp = LpRuntime::<HashModel>::with_strategy(
            LpId(0),
            &HashModel,
            seed,
            RollbackStrategy::PeriodicSnapshot(k),
            cagvt_base::VirtualTime::new(1e9),
            1,
        );
        for e in &events {
            process(&mut lp, e.clone());
        }
        gvt_tenths.sort_unstable();
        let mut committed = 0u64;
        for g in &gvt_tenths {
            let gvt = VirtualTime::new(*g as f64 / 10.0);
            committed += lp.fossil_collect(gvt);
            let below = events.iter().filter(|e| e.recv_time < gvt).count() as u64;
            prop_assert!(committed <= below, "over-committed past GVT");
        }
        let max_gvt = VirtualTime::new(*gvt_tenths.last().expect("non-empty") as f64 / 10.0);
        let survivors: Vec<_> = events.iter().filter(|e| e.recv_time >= max_gvt).collect();
        if !survivors.is_empty() {
            let cut_idx = (cut as usize) % survivors.len();
            let cut_key = EventKey {
                t: survivors[cut_idx].recv_time,
                id: EventId::new(LpId(0), 0),
            };
            let rb = lp.rollback_to(&HashModel, cut_key);
            let mut replay = rb.reenqueue;
            replay.sort_by_key(|e| e.key());
            for e in replay {
                process(&mut lp, e);
            }
        }
        prop_assert_eq!(lp.state, truth.state, "state must converge after fossil+rollback");
        prop_assert_eq!(lp.rng, truth.rng);
        prop_assert_eq!(lp.lvt(), truth.lvt());
    }

    /// Fossil collection frees exactly the events strictly below GVT and
    /// never affects the LP's forward state.
    #[test]
    fn fossil_frees_prefix_only(
        times in prop::collection::vec(0u16..500, 1..40),
        gvt_tenths in 0u32..6000,
        seed in any::<u64>(),
    ) {
        let events = make_events(&times);
        let mut lp = LpRuntime::<HashModel>::new(LpId(0), &HashModel, seed);
        for e in &events {
            process(&mut lp, e.clone());
        }
        let state_before = lp.state;
        let gvt = VirtualTime::new(gvt_tenths as f64 / 10.0);
        let committed = lp.fossil_collect(gvt);
        let expected = events.iter().filter(|e| e.recv_time < gvt).count() as u64;
        prop_assert_eq!(committed, expected);
        prop_assert_eq!(lp.state, state_before);
        prop_assert_eq!(lp.history_len() as u64, events.len() as u64 - expected);
    }
}
