//! Unit-level tests of the MPI pump: outbox draining, inbound routing,
//! lock charging, and the queue-depth signal.

use cagvt_base::ids::{EventId, LaneId, LpId, NodeId};
use cagvt_base::time::{VirtualTime, WallNs};
use cagvt_core::cluster::build_shared;
use cagvt_core::event::{AntiMsg, EventMsg, RemoteEnv, TaggedMsg};
use cagvt_core::gvt::NullMpiGvt;
use cagvt_core::mpi_actor::MpiPump;
use cagvt_core::testmodel::MiniHold;
use cagvt_core::SimConfig;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn env(dst_node: u16, dst_lane: u16, seq: u64) -> RemoteEnv<u32> {
    RemoteEnv {
        dst_node: NodeId(dst_node),
        dst_lane: LaneId(dst_lane),
        tagged: TaggedMsg {
            msg: EventMsg::Anti(AntiMsg {
                recv_time: VirtualTime::new(1.0),
                dst: LpId(0),
                id: EventId::new(LpId(0), seq),
            }),
            tag: 0,
        },
    }
}

#[test]
fn pump_moves_outbox_to_fabric_and_routes_inbound() {
    let cfg = SimConfig::small(2, 2);
    let shared = build_shared(Arc::new(MiniHold::default()), cfg);
    let mut pump0 = MpiPump::new(NodeId(0), Arc::clone(&shared), Box::new(NullMpiGvt), true, false);
    let mut pump1 = MpiPump::new(NodeId(1), Arc::clone(&shared), Box::new(NullMpiGvt), true, false);

    // Worker on node 0 posts two remote messages for node 1 lane 1.
    shared.nodes[0].outbox.push(WallNs(0), env(1, 1, 0));
    shared.nodes[0].outbox.push(WallNs(0), env(1, 1, 1));
    assert_eq!(shared.nodes[0].outbox.len(), 2);

    let (charge, moved) = pump0.pump(WallNs(10));
    assert!(moved);
    assert!(charge >= cfg.cost.mpi_send, "per-message costs are paid");
    assert_eq!(shared.nodes[0].outbox.len(), 0, "outbox drained");
    assert_eq!(shared.fabric.event_inbox_len(NodeId(1)), 2, "on the wire");

    // Node 1's pump routes them to lane 1 once the wire latency passes.
    let (_, moved_early) = pump1.pump(WallNs(20));
    assert!(!moved_early, "nothing deliverable before the wire latency");
    let late = WallNs(10_000_000);
    let (_, moved_late) = pump1.pump(late);
    assert!(moved_late);
    assert_eq!(shared.nodes[1].lane_queues[1].len(), 2, "routed to the right lane");
    assert_eq!(shared.nodes[1].lane_queues[0].len(), 0);
    assert_eq!(pump0.counters.sent, 2);
    assert_eq!(pump1.counters.received, 2);
}

#[test]
fn pump_publishes_queue_depth_signal() {
    let cfg = SimConfig::small(2, 2);
    let shared = build_shared(Arc::new(MiniHold::default()), cfg);
    let mut pump = MpiPump::new(NodeId(0), Arc::clone(&shared), Box::new(NullMpiGvt), false, false);

    for seq in 0..5 {
        shared.nodes[0].outbox.push(WallNs(0), env(1, 0, seq));
    }
    // handle_outbox = false (PerWorker receive-only pump): the depth is
    // still reported even though this pump does not transmit.
    pump.pump(WallNs(0));
    assert_eq!(shared.gvt_core.mpi_queue_depth[0].load(Ordering::Relaxed), 5);
    assert_eq!(shared.gvt_core.max_mpi_queue_depth(), 5);
    assert_eq!(shared.nodes[0].outbox.len(), 5, "receive-only pump leaves the outbox");
    assert_eq!(shared.nodes[0].outbox_hwm.load(Ordering::Relaxed), 5);
}

#[test]
fn locked_pump_charges_through_the_node_lock() {
    let cfg = SimConfig::small(2, 1);
    let shared = build_shared(Arc::new(MiniHold::default()), cfg);
    let mut pump = MpiPump::with_poll_charging(
        NodeId(0),
        Arc::clone(&shared),
        Box::new(NullMpiGvt),
        true,
        true,
        true,
    );
    shared.nodes[0].outbox.push(WallNs(0), env(1, 0, 0));
    let (charge, moved) = pump.pump(WallNs(0));
    assert!(moved);
    // Worker-context pump: poll + lock hold + send are all charged.
    assert!(charge >= cfg.cost.mpi_poll + cfg.cost.mpi_send + cfg.cost.mpi_lock_hold);
    assert_eq!(shared.nodes[0].mpi_lock.acquisitions(), 1);
}
