//! End-to-end engine tests against the sequential reference, using the
//! shared-memory oracle GVT (so the engine is validated independently of
//! the real GVT algorithms).

use cagvt_core::cluster::{build_shared, run_virtual};
use cagvt_core::gvt::OracleBundle;
use cagvt_core::seq::SequentialSim;
use cagvt_core::testmodel::MiniHold;
use cagvt_core::{GvtBundle, RunReport, SimConfig};
use std::sync::Arc;

fn oracle_run(model: MiniHold, cfg: SimConfig) -> RunReport {
    run_virtual(Arc::new(model), cfg, |shared| {
        Box::new(OracleBundle {
            shared: Arc::clone(&shared.gvt_core),
            end_time: shared.cfg.end_vt(),
        }) as Box<dyn GvtBundle>
    })
}

fn assert_matches_sequential(model: MiniHold, cfg: SimConfig) -> RunReport {
    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    let report = oracle_run(model, cfg);
    report.check_conservation(cfg.end_vt());
    assert_eq!(
        report.committed, seq.processed,
        "committed events must match the sequential reference\n{report}"
    );
    assert_eq!(
        report.state_fingerprint, seq.fingerprint,
        "final LP states must match the sequential reference\n{report}"
    );
    report
}

#[test]
fn single_worker_matches_sequential() {
    let mut cfg = SimConfig::small(1, 1);
    cfg.end_time = 40.0;
    assert_matches_sequential(MiniHold::default(), cfg);
}

#[test]
fn multi_worker_single_node_matches_sequential() {
    let mut cfg = SimConfig::small(1, 4);
    cfg.end_time = 40.0;
    let report = assert_matches_sequential(MiniHold::default(), cfg);
    assert!(report.sent_regional > 0, "cross-worker traffic expected\n{report}");
}

#[test]
fn multi_node_matches_sequential() {
    let mut cfg = SimConfig::small(2, 3);
    cfg.end_time = 30.0;
    let report = assert_matches_sequential(MiniHold::default(), cfg);
    assert!(report.sent_remote > 0, "cross-node traffic expected\n{report}");
}

#[test]
fn rollbacks_occur_and_do_not_corrupt_state() {
    // Aggressive far traffic + long remote latency => stragglers.
    let model = MiniHold { far_fraction: 0.6, ..Default::default() };
    let mut cfg = SimConfig::small(2, 2);
    cfg.end_time = 50.0;
    let report = assert_matches_sequential(model, cfg);
    assert!(report.rollbacks > 0, "this configuration should produce rollbacks\n{report}");
    assert!(report.antis_sent > 0);
}

#[test]
fn inline_mpi_mode_matches_sequential() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.spec.mpi_mode = cagvt_net::MpiMode::InlineWorker;
    cfg.end_time = 30.0;
    assert_matches_sequential(MiniHold { far_fraction: 0.4, ..Default::default() }, cfg);
}

#[test]
fn per_worker_mpi_mode_matches_sequential() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.spec.mpi_mode = cagvt_net::MpiMode::PerWorker;
    cfg.end_time = 30.0;
    assert_matches_sequential(MiniHold { far_fraction: 0.4, ..Default::default() }, cfg);
}

#[test]
fn identical_seeds_are_bit_identical() {
    let cfg = SimConfig::small(2, 2);
    let a = oracle_run(MiniHold::default(), cfg);
    let b = oracle_run(MiniHold::default(), cfg);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.state_fingerprint, b.state_fingerprint);
    assert_eq!(a.sched_steps, b.sched_steps, "virtual schedule must be deterministic");
    assert_eq!(a.sim_seconds, b.sim_seconds);
}

#[test]
fn different_seeds_diverge() {
    let cfg1 = SimConfig::small(1, 2);
    let mut cfg2 = cfg1;
    cfg2.seed ^= 0x5EED;
    let a = oracle_run(MiniHold::default(), cfg1);
    let b = oracle_run(MiniHold::default(), cfg2);
    assert_ne!(a.state_fingerprint, b.state_fingerprint);
}

#[test]
fn throttle_keeps_memory_bounded_and_preserves_results() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.end_time = 30.0;
    cfg.max_outstanding = cfg.gvt_interval as usize; // tightest legal throttle
    let report = assert_matches_sequential(MiniHold::default(), cfg);
    assert!(report.completed);
}

#[test]
fn build_shared_exposes_topology() {
    let cfg = SimConfig::small(2, 3);
    let shared = build_shared(Arc::new(MiniHold::default()), cfg);
    assert_eq!(shared.nodes.len(), 2);
    assert_eq!(shared.cfg.total_lps(), 2 * 3 * cfg.lps_per_worker);
}

#[test]
fn throttle_engages_and_is_counted() {
    let mut cfg = SimConfig::small(1, 2);
    cfg.end_time = 6.0;
    // Two uncommitted events per worker: processing regularly stalls until
    // the next fossil pass, so the throttle engages even under the
    // oracle's eager GVT (a cap of 1 works too but serializes the whole
    // cluster to one event per round).
    cfg.gvt_interval = 2;
    cfg.max_outstanding = 2;
    let report = oracle_run(MiniHold::default(), cfg);
    report.check_conservation(cfg.end_vt());
    assert!(report.throttled_steps > 0, "a throttle this tight must engage\n{report}");
    // And with the bound orders of magnitude looser it binds less.
    cfg.max_outstanding = 4096;
    let loose = oracle_run(MiniHold::default(), cfg);
    assert!(loose.throttled_steps < report.throttled_steps);
    assert_eq!(loose.committed, report.committed, "results never depend on the throttle");
    assert_eq!(loose.state_fingerprint, report.state_fingerprint);
}

#[test]
fn request_counters_are_populated() {
    let mut cfg = SimConfig::small(1, 2);
    cfg.end_time = 10.0;
    // Interval 1: every processed event raises a round request, no matter
    // how eagerly the oracle completes rounds in between.
    cfg.gvt_interval = 1;
    cfg.max_outstanding = 64;
    let report = oracle_run(MiniHold::default(), cfg);
    assert!(report.requests_interval > 0, "round requests must be recorded\n{report}");
}
