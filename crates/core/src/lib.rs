//! ROSS-style optimistic (Time Warp) PDES engine.
//!
//! This crate implements the simulation engine the paper's GVT study runs
//! on: logical processes exchanging time-stamped events, processed
//! optimistically with rollback on causality violations, anti-messages with
//! annihilation, fossil collection below GVT, and the committed-event-rate
//! / efficiency accounting the paper reports.
//!
//! Architecture (one simulated cluster run):
//!
//! ```text
//!   ClusterBuilder  ──►  actors:  N × (workers + optional MPI thread)
//!        │                            │
//!        │   Worker  = LPs + pending set + WorkerGvt half   (worker.rs)
//!        │   MpiActor = node outbox/inbox pump + MpiGvt half (mpi_actor.rs)
//!        │
//!        └─ shared:  EngineShared (router, fabric, GVT core state, stats)
//!                    NodeShared   (per-lane queues, outbox, node GVT state)
//! ```
//!
//! The engine is generic over the [`Model`] (LP behaviour) and over the GVT
//! algorithm (the [`gvt`] interfaces; implementations live in `cagvt-gvt`).
//! [`seq::SequentialSim`] is the ground-truth reference simulator used by
//! the test suite to verify that optimistic execution commits exactly the
//! same events and states.

pub mod cluster;
pub mod config;
pub mod event;
pub mod gvt;
pub mod lp;
pub mod model;
pub mod mpi_actor;
pub mod node;
pub mod queue;
pub mod report;
pub mod seq;
pub mod stats;
pub mod worker;

pub use cluster::{
    build_cluster, build_shared, build_shared_faulted, run_virtual, run_virtual_with,
    ClusterHandles,
};
pub use config::SimConfig;
pub use event::{AntiMsg, Event, EventKey, EventMsg, RemoteEnv, TaggedMsg, WHITE_TAG};
pub use gvt::{GvtBundle, GvtSharedCore, MpiGvt, WorkerGvt, WorkerGvtCtx, WorkerGvtOutcome};
pub use model::{Emitter, EventCtx, Model};
pub use report::RunReport;
pub use seq::SequentialSim;

pub mod testmodel;
