//! The MPI pump: moving remote traffic between a node and the fabric.
//!
//! One [`MpiPump`] exists per node. Who drives it is the paper's first
//! research question:
//!
//! * `MpiMode::Dedicated` — an [`MpiActor`] (its own thread) drives it and
//!   does nothing else;
//! * `MpiMode::InlineWorker` — worker lane 0 drives it in between event
//!   processing, so pump costs land on that worker's clock and its LPs
//!   fall behind;
//! * `MpiMode::PerWorker` — every worker performs its own *sends* through
//!   the contended MPI lock; lane 0 drives the pump for inbound traffic
//!   and GVT control, also through the lock.

use cagvt_base::actor::{Actor, StepResult};
use cagvt_base::ids::{ActorId, NodeId};
use cagvt_base::time::WallNs;
use std::sync::Arc;

use crate::event::RemoteEnv;
use crate::gvt::MpiGvt;
use crate::model::Model;
use crate::node::{EngineShared, NodeShared};
use crate::stats::MpiCounters;

/// Per-node MPI send/receive engine plus the node-side GVT half.
pub struct MpiPump<M: Model> {
    node: NodeId,
    shared: Arc<EngineShared<M>>,
    nshared: Arc<NodeShared<M::Payload>>,
    gvt_mpi: Box<dyn MpiGvt>,
    /// Whether this pump transmits the node outbox (false in `PerWorker`
    /// mode, where workers send for themselves).
    handle_outbox: bool,
    /// Charge MPI calls through the node's library lock (true in
    /// `PerWorker` mode).
    use_lock: bool,
    /// Charge the progress-engine poll cost (`mpi_poll`) on every pump.
    /// True for pumps embedded in a worker (inline modes), where polling
    /// displaces event processing; false for the dedicated MPI actor,
    /// whose polling happens on an otherwise-idle core.
    charge_poll: bool,
    out_buf: Vec<RemoteEnv<M::Payload>>,
    in_buf: Vec<RemoteEnv<M::Payload>>,
    pub counters: MpiCounters,
}

impl<M: Model> MpiPump<M> {
    pub fn new(
        node: NodeId,
        shared: Arc<EngineShared<M>>,
        gvt_mpi: Box<dyn MpiGvt>,
        handle_outbox: bool,
        use_lock: bool,
    ) -> Self {
        Self::with_poll_charging(node, shared, gvt_mpi, handle_outbox, use_lock, false)
    }

    pub fn with_poll_charging(
        node: NodeId,
        shared: Arc<EngineShared<M>>,
        gvt_mpi: Box<dyn MpiGvt>,
        handle_outbox: bool,
        use_lock: bool,
        charge_poll: bool,
    ) -> Self {
        let nshared = Arc::clone(&shared.nodes[node.index()]);
        MpiPump {
            node,
            shared,
            nshared,
            gvt_mpi,
            handle_outbox,
            use_lock,
            charge_poll,
            out_buf: Vec::new(),
            in_buf: Vec::new(),
            counters: MpiCounters::default(),
        }
    }

    /// Charge for one MPI library call of base cost `base` at time `now`
    /// (already including accrued charge).
    fn mpi_call(&self, now: WallNs, base: WallNs) -> WallNs {
        if self.use_lock {
            let hold = base + self.shared.cfg.cost.mpi_lock_hold;
            self.nshared.mpi_lock.acquire(now, hold)
        } else {
            base
        }
    }

    /// Move one batch in each direction and step the GVT half. Returns the
    /// total wall charge and whether any traffic moved.
    pub fn pump(&mut self, now: WallNs) -> (WallNs, bool) {
        let cost_model = self.shared.cfg.cost;
        let batch = self.shared.cfg.mpi_batch;
        // An in-worker pump pays the progress-engine poll on every call —
        // time stolen from event processing. The dedicated actor's polls
        // ride on its own core.
        let mut charge = if self.charge_poll { cost_model.mpi_poll } else { WallNs::ZERO };
        // A stalled MPI progress engine charges its stall before any
        // traffic moves: sends and receives all land after the stall.
        if let Some(f) = &self.shared.faults {
            charge += f.mpi_stall(self.node, now);
        }

        // Outbound: node outbox -> fabric.
        self.nshared.note_outbox_depth();
        let depth = self.nshared.outbox.len() as u64;
        self.shared.gvt_core.mpi_queue_depth[self.node.index()]
            .store(depth, std::sync::atomic::Ordering::Relaxed);
        {
            let node = self.node.0;
            self.shared.gvt_core.emit(now, || cagvt_base::trace::TraceRecord::MpiQueue {
                node,
                depth,
                inbound: false,
            });
        }
        let mut moved = 0u64;
        if self.handle_outbox {
            let mut out_buf = std::mem::take(&mut self.out_buf);
            let n = self.nshared.outbox.drain_ready_into(now, batch, &mut out_buf);
            for env in out_buf.drain(..) {
                charge += self.mpi_call(now + charge, cost_model.mpi_send);
                self.shared.fabric.send_event(
                    self.node,
                    env.dst_node,
                    now + charge,
                    env,
                    &cost_model,
                );
            }
            self.out_buf = out_buf;
            moved += n as u64;
            self.counters.sent += n as u64;
        }

        // Inbound: fabric -> destination worker lanes.
        let mut in_buf = std::mem::take(&mut self.in_buf);
        let m = self.shared.fabric.drain_events(self.node, now, batch, &mut in_buf);
        for env in in_buf.drain(..) {
            charge += self.mpi_call(now + charge, cost_model.mpi_recv);
            debug_assert_eq!(env.dst_node, self.node, "misrouted remote message");
            self.nshared.lane_queues[env.dst_lane.index()]
                .push(now + charge + cost_model.regional_latency, env.tagged);
        }
        self.in_buf = in_buf;
        moved += m as u64;
        self.counters.received += m as u64;

        // Node-side GVT work (collective relays, ring forwarding).
        charge += self.gvt_mpi.step(now + charge);

        self.counters.pump_time += charge;
        self.counters.outbox_hwm = self
            .counters
            .outbox_hwm
            .max(self.nshared.outbox_hwm.load(std::sync::atomic::Ordering::Relaxed));
        (charge, moved > 0)
    }
}

/// Dedicated MPI thread: drives the pump and nothing else.
pub struct MpiActor<M: Model> {
    actor_id: ActorId,
    pump: MpiPump<M>,
    shared: Arc<EngineShared<M>>,
    finished: bool,
}

impl<M: Model> MpiActor<M> {
    pub fn new(actor_id: ActorId, pump: MpiPump<M>) -> Self {
        let shared = Arc::clone(&pump.shared);
        MpiActor { actor_id, pump, shared, finished: false }
    }
}

impl<M: Model> Actor for MpiActor<M> {
    fn id(&self) -> ActorId {
        self.actor_id
    }

    fn label(&self) -> String {
        format!("mpi@{}", self.pump.node)
    }

    fn step(&mut self, now: WallNs) -> StepResult {
        if self.finished {
            return StepResult::done();
        }
        if self.shared.gvt_core.stopped() {
            self.shared.stats.mpi_deposits.lock().push(self.pump.counters);
            self.finished = true;
            return StepResult::done();
        }
        let (charge, moved) = self.pump.pump(now);
        if moved || charge > WallNs::ZERO {
            StepResult::progress(charge)
        } else {
            StepResult::idle(self.shared.cfg.cost.idle_poll)
        }
    }
}
