//! Cluster construction and the virtual-run driver.

use cagvt_base::actor::Actor;
use cagvt_base::fault::FaultInjector;
use cagvt_base::ids::{ActorId, EventId, LaneId, LpId, NodeId};
use cagvt_base::metrics::MetricsSink;
use cagvt_base::time::VirtualTime;
use cagvt_base::trace::TraceSink;
use cagvt_exec::{VirtualConfig, VirtualScheduler};
use cagvt_net::{fabric_pair_traced, MpiMode};
use std::sync::Arc;

use crate::config::SimConfig;
use crate::event::Event;
use crate::gvt::{GvtBundle, GvtSharedCore};
use crate::lp::LpRuntime;
use crate::model::{Emitter, Model};
use crate::mpi_actor::{MpiActor, MpiPump};
use crate::node::{EngineShared, NodeShared};
use crate::report::RunReport;
use crate::stats::SharedStats;
use crate::worker::Worker;

/// Shared handles surviving a build, for inspection by tests and the
/// harness.
pub struct ClusterHandles<M: Model> {
    pub shared: Arc<EngineShared<M>>,
}

/// Construct the shared engine state for `cfg` (workers and actors are
/// built on top by [`build_cluster`]; exposed separately so GVT bundle
/// factories can be handed the shared state first).
pub fn build_shared<M: Model>(model: Arc<M>, cfg: SimConfig) -> Arc<EngineShared<M>> {
    build_shared_faulted(model, cfg, None)
}

/// [`build_shared`] with a fault injector installed: the fabric shapes
/// every inter-node message through it and the MPI pumps consult it for
/// stall windows.
pub fn build_shared_faulted<M: Model>(
    model: Arc<M>,
    cfg: SimConfig,
    faults: Option<Arc<dyn FaultInjector>>,
) -> Arc<EngineShared<M>> {
    build_shared_traced(model, cfg, faults, None)
}

/// [`build_shared_faulted`] with a trace sink installed on every
/// instrumented layer (workers and GVT algorithms via `GvtSharedCore`, the
/// event fabric's inbox sampling). When `trace` is `None` the
/// `CAGVT_TRACE` environment variable can still enable a filtered stderr
/// sink (`<lp>:<seq>` for one event's lifecycle, `all` for everything).
pub fn build_shared_traced<M: Model>(
    model: Arc<M>,
    cfg: SimConfig,
    faults: Option<Arc<dyn FaultInjector>>,
    trace: Option<Arc<dyn TraceSink>>,
) -> Arc<EngineShared<M>> {
    build_shared_observed(model, cfg, faults, trace, None)
}

/// [`build_shared_traced`] with a metrics sink installed on the GVT core:
/// each completed GVT round publishes one windowed [`MetricsEpoch`] to it
/// (see `GvtSharedCore::publish_epoch`). Like tracing, metrics observation
/// never charges virtual time and a disabled sink costs one branch.
///
/// [`MetricsEpoch`]: cagvt_base::metrics::MetricsEpoch
pub fn build_shared_observed<M: Model>(
    model: Arc<M>,
    cfg: SimConfig,
    faults: Option<Arc<dyn FaultInjector>>,
    trace: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<dyn MetricsSink>>,
) -> Arc<EngineShared<M>> {
    cfg.validate();
    let trace = trace.or_else(cagvt_base::trace::env_sink);
    let spec = cfg.spec;
    let stats = Arc::new(SharedStats::new(spec.total_workers()));
    let gvt_core = Arc::new(GvtSharedCore::with_observers(
        Arc::clone(&stats),
        spec.nodes,
        spec.workers_per_node,
        trace.clone(),
        metrics,
    ));
    let (fabric, ctrl) = fabric_pair_traced(spec.nodes, faults.clone(), trace);
    let nodes = (0..spec.nodes)
        .map(|n| Arc::new(NodeShared::new(NodeId(n), spec.workers_per_node)))
        .collect();
    Arc::new(EngineShared { cfg, model, fabric, ctrl, nodes, gvt_core, stats, faults })
}

/// Build every actor of a run: all workers plus (in dedicated mode) one
/// MPI actor per node, with time-zero events preloaded.
pub fn build_cluster<M: Model>(
    shared: Arc<EngineShared<M>>,
    bundle: &dyn GvtBundle,
) -> (Vec<Box<dyn Actor>>, ClusterHandles<M>) {
    let cfg = shared.cfg;
    let spec = cfg.spec;
    let total_workers = spec.total_workers();

    // Construct workers with their LPs.
    let mut workers: Vec<Worker<M>> = Vec::with_capacity(total_workers as usize);
    for n in 0..spec.nodes {
        for l in 0..spec.workers_per_node {
            let node = NodeId(n);
            let lane = LaneId(l);
            let widx = shared.worker_index(node, lane);
            let first = shared.first_lp(node, lane);
            let strategy = cfg.rollback_strategy(shared.model.supports_reverse());
            let lps: Vec<LpRuntime<M>> = (0..cfg.lps_per_worker)
                .map(|k| {
                    LpRuntime::with_strategy(
                        LpId(first.0 + k),
                        &*shared.model,
                        cfg.seed,
                        strategy,
                        cfg.end_vt(),
                        cfg.total_lps(),
                    )
                })
                .collect();
            let gvt = bundle.worker_gvt(node, lane, widx);
            let mpi_duty = match spec.mpi_mode {
                MpiMode::Dedicated => None,
                MpiMode::InlineWorker if l == 0 => Some(MpiPump::with_poll_charging(
                    node,
                    Arc::clone(&shared),
                    bundle.mpi_gvt(node),
                    true,
                    false,
                    true,
                )),
                MpiMode::PerWorker if l == 0 => Some(MpiPump::with_poll_charging(
                    node,
                    Arc::clone(&shared),
                    bundle.mpi_gvt(node),
                    false,
                    true,
                    true,
                )),
                _ => None,
            };
            workers.push(Worker::new(
                ActorId(widx),
                node,
                lane,
                Arc::clone(&shared),
                lps,
                gvt,
                mpi_duty,
            ));
        }
    }

    // Time-zero seeding: run every LP's initial-event hook, then distribute
    // the events to their owning workers' pending sets.
    let mut emitter: Emitter<M::Payload> = Emitter::new();
    let mut seeds: Vec<(u32, Event<M::Payload>)> = Vec::new();
    for w in 0..total_workers {
        let worker = &mut workers[w as usize];
        for k in 0..cfg.lps_per_worker {
            let src = LpId(worker_first_lp(&shared, w) + k);
            let (lp_seeds, _) = {
                let lp = worker_lp_mut(worker, k as usize);
                lp.seed_initial(&*shared.model, &mut emitter);
                let collected: Vec<(LpId, f64, M::Payload)> = emitter.take().collect();
                let mut out = Vec::with_capacity(collected.len());
                for (dst, delay, payload) in collected {
                    let id = EventId::new(src, lp.next_seq());
                    out.push(Event { recv_time: VirtualTime::ZERO + delay, dst, id, payload });
                }
                (out, ())
            };
            for e in lp_seeds {
                let (dn, dl) = shared.locate(e.dst);
                let dst_widx = shared.worker_index(dn, dl);
                seeds.push((dst_widx, e));
            }
        }
    }
    for (widx, e) in seeds {
        workers[widx as usize].preload_event(e);
    }

    // Box the actors: workers first (ActorId = worker index), then the
    // dedicated MPI actors.
    let mut actors: Vec<Box<dyn Actor>> = Vec::new();
    for w in workers {
        actors.push(Box::new(w));
    }
    if spec.mpi_mode == MpiMode::Dedicated {
        for n in 0..spec.nodes {
            let node = NodeId(n);
            let pump = MpiPump::new(node, Arc::clone(&shared), bundle.mpi_gvt(node), true, false);
            actors.push(Box::new(MpiActor::new(ActorId(total_workers + n as u32), pump)));
        }
    }

    (actors, ClusterHandles { shared })
}

fn worker_first_lp<M: Model>(shared: &EngineShared<M>, widx: u32) -> u32 {
    widx * shared.cfg.lps_per_worker
}

fn worker_lp_mut<M: Model>(worker: &mut Worker<M>, k: usize) -> &mut LpRuntime<M> {
    worker.lp_mut(k)
}

/// Build and run a complete simulation under the deterministic virtual
/// scheduler, returning the assembled report.
pub fn run_virtual<M: Model>(
    model: Arc<M>,
    cfg: SimConfig,
    make_bundle: impl FnOnce(&Arc<EngineShared<M>>) -> Box<dyn GvtBundle>,
) -> RunReport {
    let vcfg = VirtualConfig {
        // A run that models minutes of cluster time has gone off the rails.
        horizon: Some(cagvt_base::WallNs(600_000_000_000)),
        ..Default::default()
    };
    run_virtual_with(model, cfg, vcfg, make_bundle)
}

/// [`run_virtual`] with explicit scheduler limits (tests and the harness
/// use tighter valves).
pub fn run_virtual_with<M: Model>(
    model: Arc<M>,
    cfg: SimConfig,
    vcfg: VirtualConfig,
    make_bundle: impl FnOnce(&Arc<EngineShared<M>>) -> Box<dyn GvtBundle>,
) -> RunReport {
    // The injector set on the scheduler config also drives the fabric and
    // MPI pumps, so one `vcfg.faults` perturbs every layer consistently;
    // likewise one `vcfg.trace` observes every layer and one `vcfg.metrics`
    // receives every GVT epoch.
    let shared = build_shared_observed(
        model,
        cfg,
        vcfg.faults.clone(),
        vcfg.trace.clone(),
        vcfg.metrics.clone(),
    );
    let bundle = make_bundle(&shared);
    let (actors, handles) = build_cluster(Arc::clone(&shared), &*bundle);
    let t0 = std::time::Instant::now();
    let stats = VirtualScheduler::new(vcfg).run(actors);
    let host_seconds = t0.elapsed().as_secs_f64();
    let mut report = RunReport::assemble(bundle.name(), &handles.shared, stats);
    report.host_seconds = host_seconds;
    report
}
