//! The worker thread: the engine's main loop as an actor state machine.
//!
//! Each step performs one iteration of the classic optimistic main loop:
//!
//! 1. drain the lane's inbound queue (insert events, handle anti-messages,
//!    annihilate, roll back as needed);
//! 2. if this worker carries MPI duty (inline modes), pump the MPI layer;
//! 3. advance the GVT algorithm; fossil collect on round completion;
//! 4. unless the GVT step blocked (synchronous algorithms) or the optimism
//!    throttle is engaged, process the lowest pending event and route its
//!    emissions.
//!
//! All charging goes through the [`CostModel`](cagvt_net::CostModel), so
//! the identical code yields paper-scale timing under the virtual
//! scheduler and real timing under the thread runtime.

use cagvt_base::actor::{Actor, StepResult};
use cagvt_base::ids::{ActorId, EventId, LaneId, LpId, NodeId};
use cagvt_base::time::{VirtualTime, WallNs};
use cagvt_base::trace::TraceRecord;
use cagvt_net::{MpiMode, MsgClass};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::event::{AntiMsg, Event, EventMsg, RemoteEnv, TaggedMsg};
use crate::gvt::{WorkerGvt, WorkerGvtCtx, WorkerGvtOutcome};
use crate::lp::{LpRuntime, Rollback, SentRecord};
use crate::model::{Emitter, EventCtx, Model};
use crate::mpi_actor::MpiPump;
use crate::node::{EngineShared, NodeShared};
use crate::queue::{CancelOutcome, PendingSet};
use crate::stats::WorkerCounters;

/// A worker thread of one node.
pub struct Worker<M: Model> {
    actor_id: ActorId,
    node: NodeId,
    lane: LaneId,
    /// Dense global worker index.
    widx: u32,
    first_lp: u32,
    shared: Arc<EngineShared<M>>,
    nshared: Arc<NodeShared<M::Payload>>,
    model: Arc<M>,
    lps: Vec<LpRuntime<M>>,
    pending: PendingSet<M::Payload>,
    gvt: Box<dyn WorkerGvt>,
    /// MPI duty carried by this worker (inline modes, lane 0 only).
    mpi_duty: Option<MpiPump<M>>,
    counters: WorkerCounters,
    events_since_round: u64,
    /// Total uncommitted history across this worker's LPs (throttle input).
    uncommitted: usize,
    recv_buf: Vec<TaggedMsg<M::Payload>>,
    emit: Emitter<M::Payload>,
    local_antis: VecDeque<AntiMsg>,
    last_idle_request: WallNs,
    /// Start of the current contiguous barrier-blocked stretch, if any
    /// (one `BarrierWait` record and counter update on release).
    blocked_since: Option<WallNs>,
    /// The GVT algorithm requires acknowledgement traffic (Samadi).
    acks_enabled: bool,
    finished: bool,
}

impl<M: Model> Worker<M> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        actor_id: ActorId,
        node: NodeId,
        lane: LaneId,
        shared: Arc<EngineShared<M>>,
        lps: Vec<LpRuntime<M>>,
        gvt: Box<dyn WorkerGvt>,
        mpi_duty: Option<MpiPump<M>>,
    ) -> Self {
        let nshared = Arc::clone(&shared.nodes[node.index()]);
        let model = Arc::clone(&shared.model);
        let widx = shared.worker_index(node, lane);
        let first_lp = shared.first_lp(node, lane).0;
        let acks_enabled = gvt.wants_acks();
        Worker {
            actor_id,
            node,
            lane,
            widx,
            first_lp,
            shared,
            nshared,
            model,
            lps,
            pending: PendingSet::new(),
            gvt,
            mpi_duty,
            counters: WorkerCounters::default(),
            events_since_round: 0,
            uncommitted: 0,
            recv_buf: Vec::new(),
            emit: Emitter::new(),
            local_antis: VecDeque::new(),
            last_idle_request: WallNs::ZERO,
            blocked_since: None,
            acks_enabled,
            finished: false,
        }
    }

    /// Insert a pre-run (time-zero) event, used by the cluster builder.
    pub fn preload_event(&mut self, event: Event<M::Payload>) {
        let inserted = self.pending.insert(event);
        debug_assert!(inserted, "no anti-messages can exist before the run");
    }

    /// Builder access to LP `k` (time-zero seeding).
    pub fn lp_mut(&mut self, k: usize) -> &mut LpRuntime<M> {
        &mut self.lps[k]
    }

    #[inline]
    fn lp_index(&self, lp: LpId) -> usize {
        let idx = (lp.0 - self.first_lp) as usize;
        debug_assert!(idx < self.lps.len(), "event routed to wrong worker: {lp}");
        idx
    }

    /// Route a tagged message to its destination queue, returning the send
    /// charge. Local deliveries are applied immediately.
    fn route(&mut self, now: WallNs, msg: EventMsg<M::Payload>) -> WallNs {
        let cost = &self.shared.cfg.cost;
        let dst = msg.dst();
        let (dst_node, dst_lane) = self.shared.locate(dst);
        let is_ack = matches!(msg, EventMsg::Ack(_));
        if !is_ack {
            let (id, vt, anti) = match &msg {
                EventMsg::Event(e) => (e.id, e.recv_time, false),
                EventMsg::Anti(a) => (a.id, a.recv_time, true),
                EventMsg::Ack(_) => unreachable!(),
            };
            let (worker, remote) = (self.widx, dst_node != self.node);
            self.shared.gvt_core.emit(now, || TraceRecord::MsgSend {
                worker,
                id,
                dst,
                vt,
                anti,
                remote,
            });
        }
        if dst_node == self.node && dst_lane == self.lane {
            // Local: never in flight, no tag, no channel.
            match msg {
                EventMsg::Event(e) => {
                    self.counters.sent_local += 1;
                    if !self.pending.insert(e) {
                        self.counters.annihilated += 1;
                    }
                }
                EventMsg::Anti(a) => {
                    self.counters.sent_local += 1;
                    self.local_antis.push_back(a);
                }
                // A local "ack" can only arise from a local send, which is
                // never tracked — nothing to do.
                EventMsg::Ack(_) => return WallNs::ZERO,
            }
            return cost.local_send;
        }
        if matches!(msg, EventMsg::Anti(_)) {
            self.counters.antis_sent += 1;
        }
        let recv_time = msg.recv_time();
        // Acknowledgements are GVT-algorithm bookkeeping, not simulation
        // messages: they carry no color tag and stay out of the in-transit
        // accounting (they can never cause a rollback). Samadi tracks the
        // *acknowledged* messages instead.
        if is_ack {
            self.counters.acks_sent += 1;
        } else {
            self.shared.stats.msgs_sent.fetch_add(1, Ordering::Release);
            if self.acks_enabled {
                let (id, anti) = match &msg {
                    EventMsg::Event(e) => (e.id, false),
                    EventMsg::Anti(a) => (a.id, true),
                    EventMsg::Ack(_) => unreachable!(),
                };
                self.gvt.on_send_tracked(id, recv_time, anti);
            }
        }
        if dst_node == self.node {
            let tag = if is_ack { 0 } else { self.gvt.on_send(MsgClass::Regional, recv_time) };
            self.counters.sent_regional += 1;
            self.nshared.lane_queues[dst_lane.index()]
                .push(now + cost.regional_latency, TaggedMsg { msg, tag });
            cost.regional_send
        } else {
            let tag = if is_ack { 0 } else { self.gvt.on_send(MsgClass::Remote, recv_time) };
            self.counters.sent_remote += 1;
            let env = RemoteEnv { dst_node, dst_lane, tagged: TaggedMsg { msg, tag } };
            if self.shared.cfg.spec.mpi_mode == MpiMode::PerWorker {
                // This worker performs the MPI send itself, through the
                // contended library lock.
                let hold = cost.mpi_send + cost.mpi_lock_hold;
                let charge = self.nshared.mpi_lock.acquire(now, hold);
                self.shared.fabric.send_event(self.node, dst_node, now + charge, env, cost);
                charge
            } else {
                self.nshared.outbox.push(now, env);
                self.nshared.note_outbox_depth();
                cost.remote_post
            }
        }
    }

    /// Apply a rollback result: account, re-enqueue, send anti-messages.
    fn apply_rollback(&mut self, now: WallNs, rb: Rollback<M::Payload>, straggler: bool) -> WallNs {
        let cost = &self.shared.cfg.cost;
        let mut charge = WallNs::ZERO;
        if rb.undone == 0 {
            return charge;
        }
        self.counters.rollbacks += 1;
        self.counters.rolled_back += rb.undone;
        self.uncommitted -= rb.undone as usize;
        self.shared.stats.rolled_back.fetch_add(rb.undone, Ordering::Relaxed);
        let (worker, undone) = (self.widx, rb.undone);
        self.shared.gvt_core.emit(now, || TraceRecord::Rollback { worker, undone, straggler });
        charge += WallNs(cost.rollback_per_event.0 * rb.undone);
        for e in rb.reenqueue {
            let (id, vt) = (e.id, e.recv_time);
            self.shared.gvt_core.emit(now, || TraceRecord::Reenqueue { worker, id, vt });
            if !self.pending.insert(e) {
                self.counters.annihilated += 1;
            }
        }
        for a in rb.antis {
            charge += self.route(now + charge, EventMsg::Anti(a));
        }
        charge
    }

    /// Handle one received anti-message (and any local cascade it causes).
    fn handle_anti(&mut self, now: WallNs, anti: AntiMsg) -> WallNs {
        self.local_antis.push_back(anti);
        self.drain_local_antis(now)
    }

    /// Process queued local anti-messages until none remain. Every code
    /// path that can call [`Self::route`] outside this loop must drain
    /// afterwards, or a locally-routed anti would sit unapplied while its
    /// target is re-sent.
    fn drain_local_antis(&mut self, now: WallNs) -> WallNs {
        let mut charge = WallNs::ZERO;
        let mut cascade = 0u64;
        let worker = self.widx;
        while let Some(a) = self.local_antis.pop_front() {
            self.counters.antis_received += 1;
            let idx = self.lp_index(a.dst);
            if self.lps[idx].has_processed(a.id) {
                // GVT safety: an anti-message can only cancel work that is
                // still provisional. Rolling back below the published GVT
                // would mean a GVT algorithm overshot (fossil-collected
                // state is gone), so this is checked unconditionally.
                let gvt_floor = self.shared.gvt_core.published_gvt();
                assert!(
                    a.recv_time >= gvt_floor,
                    "anti-message rollback target {} below published GVT {gvt_floor}",
                    a.recv_time
                );
                cascade += 1;
                let rb = self.lps[idx].rollback_cancel(&*self.model, a.id, a.key());
                self.counters.annihilated += 1;
                let id = a.id;
                self.shared.gvt_core.emit(now + charge, || TraceRecord::Annihilate {
                    worker,
                    id,
                    pending: false,
                });
                charge += self.apply_rollback(now + charge, rb, false);
            } else {
                match self.pending.cancel(a.key()) {
                    CancelOutcome::AnnihilatedPending => {
                        self.counters.annihilated += 1;
                        let id = a.id;
                        self.shared.gvt_core.emit(now + charge, || TraceRecord::Annihilate {
                            worker,
                            id,
                            pending: true,
                        });
                    }
                    CancelOutcome::Deferred => {
                        let (id, vt) = (a.id, a.recv_time);
                        self.shared.gvt_core.emit(now + charge, || TraceRecord::AntiDeferred {
                            worker,
                            id,
                            vt,
                        });
                    }
                }
            }
        }
        self.counters.max_cascade = self.counters.max_cascade.max(cascade);
        charge
    }

    /// Drain this lane's inbound queue.
    fn drain_inbound(&mut self, now: WallNs) -> (WallNs, bool) {
        let cost = self.shared.cfg.cost;
        let mut charge = WallNs::ZERO;
        let mut buf = std::mem::take(&mut self.recv_buf);
        let n = self.nshared.lane_queues[self.lane.index()].drain_ready_into(
            now,
            self.shared.cfg.recv_batch,
            &mut buf,
        );
        for tagged in buf.drain(..) {
            charge += cost.recv_handling;
            if let EventMsg::Ack(a) = &tagged.msg {
                self.counters.acks_received += 1;
                self.gvt.on_ack(a.id, a.recv_time, a.anti, a.marked);
                continue;
            }
            self.counters.received_msgs += 1;
            self.shared.stats.msgs_received.fetch_add(1, Ordering::Release);
            self.gvt.on_recv(tagged.tag, MsgClass::Regional);
            if self.acks_enabled {
                let ack = match &tagged.msg {
                    EventMsg::Event(e) => crate::event::AckMsg {
                        id: e.id,
                        recv_time: e.recv_time,
                        anti: false,
                        marked: self.gvt.mark_acks(),
                    },
                    EventMsg::Anti(a) => crate::event::AckMsg {
                        id: a.id,
                        recv_time: a.recv_time,
                        anti: true,
                        marked: self.gvt.mark_acks(),
                    },
                    EventMsg::Ack(_) => unreachable!(),
                };
                charge += self.route(now + charge, EventMsg::Ack(ack));
            }
            {
                let worker = self.widx;
                let (id, vt, anti) = match &tagged.msg {
                    EventMsg::Event(e) => (e.id, e.recv_time, false),
                    EventMsg::Anti(a) => (a.id, a.recv_time, true),
                    EventMsg::Ack(_) => unreachable!(),
                };
                self.shared.gvt_core.emit(now + charge, || TraceRecord::MsgRecv {
                    worker,
                    id,
                    vt,
                    anti,
                });
            }
            match tagged.msg {
                EventMsg::Event(e) => {
                    if !self.pending.insert(e) {
                        self.counters.annihilated += 1;
                    }
                }
                EventMsg::Anti(a) => {
                    charge += self.handle_anti(now + charge, a);
                }
                EventMsg::Ack(_) => unreachable!(),
            }
        }
        self.recv_buf = buf;
        (charge, n > 0)
    }

    /// Fossil collect all LPs at the new GVT.
    fn fossil(&mut self, gvt: VirtualTime) -> WallNs {
        // Tombstones keyed below the new GVT can never match again; free
        // them with the same pass that frees LP history.
        self.pending.purge_below(gvt);
        let mut committed = 0u64;
        for lp in &mut self.lps {
            committed += lp.fossil_collect(gvt);
        }
        self.uncommitted -= committed as usize;
        self.counters.committed += committed;
        self.shared.stats.committed.fetch_add(committed, Ordering::Relaxed);
        WallNs(self.shared.cfg.cost.fossil_per_event.0 * committed)
    }

    /// Process the minimum pending event, if allowed. Returns (charge,
    /// processed?).
    fn process_next(&mut self, now: WallNs) -> (WallNs, bool) {
        let cfg = self.shared.cfg;
        let end = cfg.end_vt();
        if self.uncommitted >= cfg.max_outstanding {
            self.counters.throttled += 1;
            return (WallNs::ZERO, false);
        }
        let Some(key) = self.pending.min_key() else {
            return (WallNs::ZERO, false);
        };
        if key.t >= end {
            return (WallNs::ZERO, false);
        }
        let event = self.pending.pop_min().expect("min_key was Some");
        let cost = cfg.cost;
        let mut charge = WallNs::ZERO;

        let idx = self.lp_index(event.dst);
        if event.key() <= self.lps[idx].last_key() {
            // Straggler: roll the LP back to just before this event. Local
            // antis must apply before processing resumes — the re-execution
            // below reuses the sequence numbers they cancel.
            //
            // GVT safety: the rollback target must sit at or above the
            // published GVT — state below it has been fossil-collected.
            // Checked unconditionally so every fault-plan run exercises it.
            let gvt_floor = self.shared.gvt_core.published_gvt();
            assert!(
                event.recv_time >= gvt_floor,
                "straggler rollback target {} below published GVT {gvt_floor}",
                event.recv_time
            );
            self.counters.stragglers += 1;
            let rb = self.lps[idx].rollback_to(&*self.model, event.key());
            charge += self.apply_rollback(now, rb, true);
            charge += self.drain_local_antis(now + charge);
        }

        let ctx = EventCtx {
            now: event.recv_time,
            self_lp: event.dst,
            end_time: end,
            total_lps: cfg.total_lps(),
        };
        let (eid, edst) = (event.id, event.dst);
        let span_start = now + charge;
        let mut emit = std::mem::take(&mut self.emit);
        let epg = self.lps[idx].process(&*self.model, &ctx, event, &mut emit);
        let span = cost.event_overhead + cost.epg_cost(epg);
        {
            let (worker, vt) = (self.widx, ctx.now);
            self.shared.gvt_core.emit(span_start, || TraceRecord::EventSpan {
                worker,
                id: eid,
                dst: edst,
                vt,
                dur: span,
            });
        }
        charge += span;

        // Stamp, route and record the emissions.
        let base = ctx.now;
        let mut records: Vec<SentRecord> = Vec::with_capacity(emit.len());
        let sends: Vec<(LpId, f64, M::Payload)> = emit.take().collect();
        self.emit = emit;
        for (dst, delay, payload) in sends {
            let seq = self.lps[idx].next_seq();
            let id = EventId::new(self.lps[idx].id, seq);
            let recv_time = base + delay;
            records.push(SentRecord { dst, recv_time, id });
            charge +=
                self.route(now + charge, EventMsg::Event(Event { recv_time, dst, id, payload }));
        }
        self.lps[idx].record_sends(records);
        charge += self.drain_local_antis(now + charge);

        self.uncommitted += 1;
        self.counters.processed += 1;
        self.counters.busy_time += charge;
        self.shared.stats.processed.fetch_add(1, Ordering::Relaxed);
        self.events_since_round += 1;
        self.shared.stats.worker_lvts[self.widx as usize]
            .store(base.to_ordered_bits(), Ordering::Relaxed);
        (charge, true)
    }

    fn finish(&mut self) {
        // GVT has passed the end time: everything processed is final and
        // no rollback can follow (so periodic-snapshot retention lifts).
        let end = self.shared.cfg.end_vt();
        let mut committed = 0u64;
        for lp in &mut self.lps {
            committed += lp.fossil_collect_final(end);
        }
        self.uncommitted -= committed as usize;
        self.counters.committed += committed;
        self.shared.stats.committed.fetch_add(committed, Ordering::Relaxed);
        let mut fp = 0u64;
        for lp in &self.lps {
            fp ^= crate::seq::fingerprint_mix(lp.id, self.model.state_fingerprint(&lp.state));
        }
        self.shared.stats.state_fp.fetch_xor(fp, Ordering::AcqRel);
        self.shared.stats.worker_deposits.lock().push(self.counters);
        if let Some(pump) = &self.mpi_duty {
            self.shared.stats.mpi_deposits.lock().push(pump.counters);
        }
        self.finished = true;
    }
}

impl<M: Model> Actor for Worker<M> {
    fn id(&self) -> ActorId {
        self.actor_id
    }

    fn label(&self) -> String {
        format!("worker@{}.{}", self.node, self.lane.0)
    }

    fn step(&mut self, now: WallNs) -> StepResult {
        if self.finished {
            return StepResult::done();
        }
        if self.shared.gvt_core.stopped() {
            self.finish();
            return StepResult::progress(WallNs(100));
        }
        let cfg = self.shared.cfg;
        let mut charge = WallNs::ZERO;
        let mut did_work = false;

        // 1. Inbound messages.
        let (c, moved) = self.drain_inbound(now);
        charge += c;
        did_work |= moved;
        // Publish the post-drain contribution before any GVT step can run:
        // draining (including anti-message rollbacks) is the only way this
        // worker's minimum can *decrease*, and a stale-high published value
        // would let a concurrent GVT computation overshoot.
        self.shared.stats.worker_contrib[self.widx as usize]
            .store(self.pending.min_time().to_ordered_bits(), Ordering::Release);

        // 2. Inline MPI duty.
        if let Some(mut pump) = self.mpi_duty.take() {
            let (c, moved) = pump.pump(now + charge);
            charge += c;
            did_work |= moved;
            self.mpi_duty = Some(pump);
        }

        // 3. GVT.
        let ctx = WorkerGvtCtx {
            now: now + charge,
            lvt: self.pending.min_time(),
            worker_index: self.widx,
        };
        let mut blocked = false;
        let outcome = self.gvt.step(&ctx);
        // Close out a barrier-blocked stretch: one `BarrierWait` record and
        // counter update spanning first blocked step to release.
        if !matches!(outcome, WorkerGvtOutcome::Blocked(_)) {
            if let Some(start) = self.blocked_since.take() {
                let dur = now.saturating_sub(start);
                self.counters.barrier_wait += dur;
                let worker = self.widx;
                self.shared.gvt_core.emit(start, || TraceRecord::BarrierWait { worker, dur });
            }
        }
        match outcome {
            WorkerGvtOutcome::Quiet => {}
            WorkerGvtOutcome::Working(c) => {
                charge += c;
                self.counters.gvt_time += c;
                did_work = true;
            }
            WorkerGvtOutcome::Blocked(c) => {
                charge += c;
                self.counters.gvt_time += c;
                blocked = true;
                if self.blocked_since.is_none() {
                    self.blocked_since = Some(now);
                }
            }
            WorkerGvtOutcome::Completed { gvt, cost } => {
                charge += cost;
                self.counters.gvt_time += cost;
                self.counters.gvt_rounds += 1;
                self.shared
                    .gvt_core
                    .last_round_wall
                    .fetch_max((now + charge).as_nanos(), Ordering::Relaxed);
                charge += self.fossil(gvt);
                self.events_since_round = 0;
                did_work = true;
                // Metrics cells refresh once per round (never on the event
                // path): each worker snapshots its private counters here so
                // the epoch assembler can merge them. Gated, so un-metered
                // runs skip even these stores.
                if self.shared.gvt_core.metrics_on() {
                    self.shared.stats.publish_worker_cell(self.widx, &self.counters);
                }
                if self.widx == 0 {
                    self.shared.stats.sample_disparity();
                    self.shared.stats.progress.lock().push(crate::stats::ProgressSample {
                        gvt: gvt.as_f64(),
                        wall: now + charge,
                        committed: self.shared.stats.committed.load(Ordering::Relaxed),
                    });
                    // Horizon snapshot: the published GVT plus every finite
                    // worker LVT, batched so `compute` can pair them up.
                    if let Some(tr) = self.shared.gvt_core.tracing() {
                        let t = now + charge;
                        let round = self.shared.gvt_core.published_round();
                        tr.record(t, &TraceRecord::GvtPublish { round, gvt });
                        for (i, l) in self.shared.stats.worker_lvts.iter().enumerate() {
                            let lvt = VirtualTime::from_ordered_bits(l.load(Ordering::Relaxed));
                            if lvt.is_finite() {
                                tr.record(t, &TraceRecord::Lvt { worker: i as u32, lvt });
                            }
                        }
                    }
                    // Per-GVT-epoch metrics publication (after the round's
                    // fossil pass, before the termination check so the
                    // final round is included). Records only; charges no
                    // virtual time.
                    self.shared.gvt_core.publish_epoch(now + charge);
                }
                if gvt >= cfg.end_vt() {
                    self.shared.gvt_core.signal_stop();
                    self.finish();
                    return StepResult::progress(charge);
                }
            }
        }

        // 4. Event processing.
        let mut processed = false;
        if !blocked {
            let (c, p) = self.process_next(now + charge);
            charge += c;
            processed = p;
            did_work |= p;
        }

        // Publish this worker's GVT contribution.
        self.shared.stats.worker_contrib[self.widx as usize]
            .store(self.pending.min_time().to_ordered_bits(), Ordering::Release);

        // Round initiation: on interval, or whenever progress is gated on
        // a new GVT (throttled or drained below the end time).
        if self.events_since_round >= cfg.gvt_interval {
            self.counters.requests_interval += 1;
            self.shared.gvt_core.request_round();
        } else if !processed && !blocked && self.shared.gvt_core.published_gvt() < cfg.end_vt() {
            // Globally paced: give busy workers a full quiet interval
            // after each completed round before idle workers may force
            // another one (prevents the end-of-run round convoy).
            let last_round = WallNs(self.shared.gvt_core.last_round_wall.load(Ordering::Relaxed));
            if now.saturating_sub(last_round) >= cfg.idle_request_backoff {
                self.counters.requests_idle += 1;
                self.last_idle_request = now;
                self.shared.gvt_core.request_round();
            }
        }

        if did_work || blocked {
            StepResult::progress(charge.max(WallNs(1)))
        } else {
            self.counters.idle_polls += 1;
            StepResult::idle(charge + cfg.cost.idle_poll)
        }
    }
}
