//! GVT algorithm interface.
//!
//! A GVT algorithm has two halves, matching the paper's division of labor:
//!
//! * a [`WorkerGvt`] per worker thread — tags outgoing messages with the
//!   Mattern color, observes incoming tags, and advances the worker's part
//!   of the round state machine each loop iteration;
//! * an [`MpiGvt`] per node — performs the cluster-level communication
//!   (MPI collectives for Barrier GVT, ring circulation of the control
//!   message for Mattern/CA-GVT). Owned by the dedicated MPI actor, or by
//!   worker lane 0 in the inline modes.
//!
//! [`GvtSharedCore`] is the engine-visible shared state: the round-request
//! flag (set when a worker's event interval elapses), the published GVT,
//! and the stop flag. Algorithm-private shared state (node counters,
//! barriers, control-message slots) lives inside the algorithm's own
//! structures in `cagvt-gvt`.
//!
//! [`OracleGvt`] is a shared-memory termination oracle used by unit tests:
//! it is *not* a distributed algorithm (it reads global quiescence
//! directly) but it lets the engine be tested independently of the real
//! algorithms.

use cagvt_base::ids::{LaneId, NodeId};
use cagvt_base::metrics::{
    EpochMode, MetricsEpoch, MetricsSink, SyncCause, BARRIER_A, BARRIER_B, BARRIER_C,
};
use cagvt_base::stats::Welford;
use cagvt_base::time::{VirtualTime, WallNs};
use cagvt_base::trace::{TraceRecord, TraceSink};
use cagvt_net::MsgClass;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::WHITE_TAG;
use crate::stats::SharedStats;

/// Engine-visible GVT state, one per run.
pub struct GvtSharedCore {
    /// Set by workers whose event interval elapsed; cleared by the
    /// algorithm when it starts a round.
    pub round_requested: AtomicBool,
    /// Ordered bits of the latest published GVT (monotone).
    pub published_gvt: AtomicU64,
    /// Number of completed rounds.
    pub published_round: AtomicU64,
    /// Global termination flag (GVT passed the end time).
    pub stop: AtomicBool,
    /// Wall time of the most recent round completion (idle-request pacing).
    pub last_round_wall: AtomicU64,
    /// Per-node outbound MPI queue depth, updated by the MPI pumps; the
    /// occupancy signal of CA-GVT's extended trigger (paper §8 mentions
    /// "the occupancy of the MPI queue is high" as the second condition).
    pub mpi_queue_depth: Vec<AtomicU64>,
    /// Cluster statistics (efficiency for CA-GVT decisions, disparity
    /// sampling).
    pub stats: Arc<SharedStats>,
    /// Observation hook shared by every instrumented layer (`None`: no
    /// tracing; hot paths pay a single `Option` check).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Per-GVT-epoch metrics hook (`None`: no metering; consulted once per
    /// round, never on the event path).
    pub metrics: Option<Arc<dyn MetricsSink>>,
    /// Cumulative counter totals at the previous epoch publication — the
    /// subtraction base for the windowed deltas. Metrics-private; only
    /// touched from [`GvtSharedCore::publish_epoch`].
    epoch_base: Mutex<EpochBase>,
    pub total_workers: u32,
    pub nodes: u16,
    pub workers_per_node: u16,
}

/// Counter totals at the last published epoch (see
/// [`GvtSharedCore::publish_epoch`]).
#[derive(Clone, Copy, Debug, Default)]
struct EpochBase {
    committed: u64,
    processed: u64,
    rolled_back: u64,
    msgs_sent: u64,
    msgs_received: u64,
    rollbacks: u64,
    antis_sent: u64,
    annihilated: u64,
}

impl GvtSharedCore {
    pub fn new(stats: Arc<SharedStats>, nodes: u16, workers_per_node: u16) -> Self {
        Self::with_observers(stats, nodes, workers_per_node, None, None)
    }

    pub fn with_trace(
        stats: Arc<SharedStats>,
        nodes: u16,
        workers_per_node: u16,
        trace: Option<Arc<dyn TraceSink>>,
    ) -> Self {
        Self::with_observers(stats, nodes, workers_per_node, trace, None)
    }

    pub fn with_observers(
        stats: Arc<SharedStats>,
        nodes: u16,
        workers_per_node: u16,
        trace: Option<Arc<dyn TraceSink>>,
        metrics: Option<Arc<dyn MetricsSink>>,
    ) -> Self {
        GvtSharedCore {
            round_requested: AtomicBool::new(false),
            published_gvt: AtomicU64::new(VirtualTime::ZERO.to_ordered_bits()),
            published_round: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            last_round_wall: AtomicU64::new(0),
            mpi_queue_depth: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            stats,
            trace,
            metrics,
            epoch_base: Mutex::new(EpochBase::default()),
            total_workers: nodes as u32 * workers_per_node as u32,
            nodes,
            workers_per_node,
        }
    }

    /// Whether an enabled metrics sink is installed. Workers gate their
    /// per-round cell deposits on this so un-metered runs skip even the
    /// round-boundary stores.
    #[inline]
    pub fn metrics_on(&self) -> bool {
        matches!(&self.metrics, Some(m) if m.enabled())
    }

    /// Assemble and emit the [`MetricsEpoch`] for the round just
    /// published. Called by worker 0 in its round-completion branch —
    /// after the round's fossil pass, before the termination check, so the
    /// final round is included.
    ///
    /// Read-only with respect to engine state (the only mutation is the
    /// metrics-private `epoch_base`) and charges no virtual time, which is
    /// what keeps metered runs bit-identical (`metrics_never_perturb`).
    pub fn publish_epoch(&self, t: WallNs) {
        let Some(sink) = self.metrics.as_deref() else { return };
        if !sink.enabled() {
            return;
        }
        let round = self.published_round();
        let gvt = self.published_gvt();
        let gvt_f = gvt.as_f64();
        let stats = &self.stats;

        // Cluster totals: live atomics plus the round-refreshed cells.
        let cells = stats.merged_cells();
        let committed = stats.committed.load(Ordering::Relaxed);
        let processed = stats.processed.load(Ordering::Relaxed);
        let rolled_back = stats.rolled_back.load(Ordering::Relaxed);
        let msgs_sent = stats.msgs_sent.load(Ordering::Relaxed);
        let msgs_received = stats.msgs_received.load(Ordering::Relaxed);

        let mut base = self.epoch_base.lock();
        let dc = committed - base.committed;
        let dr = rolled_back - base.rolled_back;
        let epoch_deltas = (
            processed - base.processed,
            msgs_sent - base.msgs_sent,
            msgs_received - base.msgs_received,
            cells.rollbacks - base.rollbacks,
            cells.antis_sent - base.antis_sent,
            cells.annihilated - base.annihilated,
        );
        *base = EpochBase {
            committed,
            processed,
            rolled_back,
            msgs_sent,
            msgs_received,
            rollbacks: cells.rollbacks,
            antis_sent: cells.antis_sent,
            annihilated: cells.annihilated,
        };
        drop(base);

        // Horizon: per-worker LVT lag vs the freshly published GVT.
        let mut lags = Vec::with_capacity(stats.worker_lvts.len());
        let mut w = Welford::new();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for lvt in &stats.worker_lvts {
            let lvt = VirtualTime::from_ordered_bits(lvt.load(Ordering::Relaxed));
            if lvt.is_finite() {
                let lag = lvt.as_f64() - gvt_f;
                lags.push(lag);
                w.push(lag);
                min = min.min(lag);
                max = max.max(lag);
            } else {
                lags.push(f64::NAN);
            }
        }

        let depths: Vec<u64> =
            self.mpi_queue_depth.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        let mpi_queue_max = depths.iter().copied().max().unwrap_or(0);

        // Controller decision for *this* round, if a controller ran one
        // (only CA-GVT appends to gvt_trace; Barrier/Mattern epochs are
        // "uncontrolled").
        let (mode, cause, barriers) = {
            let tr = stats.gvt_trace.lock();
            match tr.last() {
                Some(r) if r.round == round => {
                    if r.synchronous {
                        (EpochMode::Sync, r.cause, BARRIER_A | BARRIER_B | BARRIER_C)
                    } else {
                        (EpochMode::Async, SyncCause::None, 0)
                    }
                }
                _ => (EpochMode::Uncontrolled, SyncCause::None, 0),
            }
        };

        let epoch = MetricsEpoch {
            round,
            t,
            gvt: gvt_f,
            committed_delta: dc,
            processed_delta: epoch_deltas.0,
            rolled_back_delta: dr,
            rollbacks_delta: epoch_deltas.3,
            antis_sent_delta: epoch_deltas.4,
            annihilated_delta: epoch_deltas.5,
            msgs_sent_delta: epoch_deltas.1,
            msgs_received_delta: epoch_deltas.2,
            efficiency_window: if dc + dr == 0 { 1.0 } else { dc as f64 / (dc + dr) as f64 },
            efficiency_cum: stats.efficiency(),
            worker_lag: lags,
            horizon_width: if max >= min { max - min } else { 0.0 },
            horizon_roughness: w.std_dev(),
            mean_lag: if w.count() > 0 { w.mean() } else { 0.0 },
            mpi_queue_depths: depths,
            mpi_queue_max,
            mode,
            barriers,
            cause,
        };
        sink.on_epoch(t, &epoch);
    }

    /// Record one trace observation. The record is constructed lazily, so
    /// with no sink (or a disabled one) the cost is a branch or a branch
    /// plus one virtual call.
    #[inline]
    pub fn emit(&self, t: WallNs, rec: impl FnOnce() -> TraceRecord) {
        if let Some(tr) = &self.trace {
            if tr.enabled() {
                tr.record(t, &rec());
            }
        }
    }

    /// Whether an enabled trace sink is installed (lets call sites batch
    /// several records without re-checking).
    #[inline]
    pub fn tracing(&self) -> Option<&dyn TraceSink> {
        match &self.trace {
            Some(tr) if tr.enabled() => Some(&**tr),
            _ => None,
        }
    }

    #[inline]
    pub fn request_round(&self) {
        self.round_requested.store(true, Ordering::Release);
    }

    #[inline]
    pub fn round_requested(&self) -> bool {
        self.round_requested.load(Ordering::Acquire)
    }

    #[inline]
    pub fn published_gvt(&self) -> VirtualTime {
        VirtualTime::from_ordered_bits(self.published_gvt.load(Ordering::Acquire))
    }

    #[inline]
    pub fn published_round(&self) -> u64 {
        self.published_round.load(Ordering::Acquire)
    }

    /// Publish the result of a completed round. GVT must be monotone; a
    /// regression indicates an algorithm bug, so it panics.
    ///
    /// Also clears the round-request flag: every worker participates in
    /// the completing round and resets its event counter, so any request
    /// raised *during* the round is stale — honoring it would echo a
    /// spurious extra round after every legitimate one.
    pub fn publish(&self, gvt: VirtualTime, round: u64) {
        let prev = self.published_gvt.swap(gvt.to_ordered_bits(), Ordering::AcqRel);
        assert!(
            VirtualTime::from_ordered_bits(prev) <= gvt,
            "GVT regressed: {} -> {}",
            VirtualTime::from_ordered_bits(prev),
            gvt
        );
        self.round_requested.store(false, Ordering::Release);
        self.published_round.store(round, Ordering::Release);
    }

    /// Largest outbound MPI queue depth currently reported by any node.
    pub fn max_mpi_queue_depth(&self) -> u64 {
        self.mpi_queue_depth.iter().map(|d| d.load(Ordering::Relaxed)).max().unwrap_or(0)
    }

    #[inline]
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    #[inline]
    pub fn signal_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

/// Per-step context handed by the worker to its GVT half.
#[derive(Clone, Copy, Debug)]
pub struct WorkerGvtCtx {
    pub now: WallNs,
    /// The worker's GVT contribution: minimum pending event time (in-flight
    /// messages are covered by the algorithms' message accounting).
    pub lvt: VirtualTime,
    /// Dense global worker index.
    pub worker_index: u32,
}

/// What the worker should do after a GVT step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkerGvtOutcome {
    /// No round in progress and none starting.
    Quiet,
    /// A round is in progress; the worker keeps processing events
    /// (asynchronous style). Cost is the bookkeeping charge.
    Working(WallNs),
    /// The worker is held at a synchronization point; it must not process
    /// events this step (synchronous style).
    Blocked(WallNs),
    /// The round completed; `gvt` is the new value. The worker fossil
    /// collects and resets its interval counter.
    Completed { gvt: VirtualTime, cost: WallNs },
}

/// Worker-side half of a GVT algorithm.
pub trait WorkerGvt: Send {
    /// Called for every message (event or anti) leaving this worker for
    /// another worker (regional or remote), with the message's receive
    /// time (Mattern's red phase accumulates the minimum). Returns the
    /// color tag to stamp on the message and performs send accounting.
    fn on_send(&mut self, class: MsgClass, recv_time: VirtualTime) -> u64;

    /// Called for every tagged message drained by this worker.
    fn on_recv(&mut self, tag: u64, class: MsgClass);

    /// Advance the round state machine; called once per worker loop
    /// iteration.
    fn step(&mut self, ctx: &WorkerGvtCtx) -> WorkerGvtOutcome;

    /// Does this algorithm require acknowledgement traffic (Samadi)? When
    /// true, the worker acks every channel message it receives and routes
    /// incoming acks to [`Self::on_ack`].
    fn wants_acks(&self) -> bool {
        false
    }

    /// Record an outgoing channel message for acknowledgement tracking
    /// (only called when [`Self::wants_acks`]).
    fn on_send_tracked(&mut self, _id: cagvt_base::EventId, _recv_time: VirtualTime, _anti: bool) {}

    /// Should acknowledgements sent right now be marked? (Samadi's
    /// reporting window.)
    fn mark_acks(&self) -> bool {
        false
    }

    /// An acknowledgement arrived for a message this worker sent.
    fn on_ack(
        &mut self,
        _id: cagvt_base::EventId,
        _recv_time: VirtualTime,
        _anti: bool,
        _marked: bool,
    ) {
    }
}

/// Node-side (MPI) half of a GVT algorithm. Returns the wall-clock charge
/// of whatever it did this step.
pub trait MpiGvt: Send {
    fn step(&mut self, now: WallNs) -> WallNs;
}

/// Constructs the two halves for every actor of a run.
pub trait GvtBundle: Send + Sync {
    fn name(&self) -> &'static str;
    fn worker_gvt(&self, node: NodeId, lane: LaneId, worker_index: u32) -> Box<dyn WorkerGvt>;
    fn mpi_gvt(&self, node: NodeId) -> Box<dyn MpiGvt>;
}

// ---------------------------------------------------------------------------
// Test oracle
// ---------------------------------------------------------------------------

/// Shared-memory GVT oracle for engine tests.
///
/// At instants when no message is in flight (`msgs_sent == msgs_received`
/// — a momentary global condition the sequential virtual scheduler makes
/// observable), the minimum over the workers' published contributions *is*
/// the exact minimum unprocessed event time, and that quantity is monotone
/// across such instants (every new event is later than its processed
/// parent; rollback re-enqueues stay above the straggler that caused
/// them). The oracle ratchets this value as the published GVT, which keeps
/// fossil collection and the optimism throttle working without any
/// distributed algorithm. Test-only: no real cluster could read these
/// globals.
pub struct OracleBundle {
    pub shared: Arc<GvtSharedCore>,
    pub end_time: VirtualTime,
}

impl GvtBundle for OracleBundle {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn worker_gvt(&self, _node: NodeId, _lane: LaneId, _worker_index: u32) -> Box<dyn WorkerGvt> {
        Box::new(OracleGvt {
            shared: Arc::clone(&self.shared),
            end_time: self.end_time,
            last_gvt: VirtualTime::ZERO,
            finished: false,
        })
    }

    fn mpi_gvt(&self, _node: NodeId) -> Box<dyn MpiGvt> {
        Box::new(NullMpiGvt)
    }
}

/// Worker half of [`OracleBundle`].
pub struct OracleGvt {
    shared: Arc<GvtSharedCore>,
    end_time: VirtualTime,
    last_gvt: VirtualTime,
    finished: bool,
}

impl WorkerGvt for OracleGvt {
    fn on_send(&mut self, _class: MsgClass, _recv_time: VirtualTime) -> u64 {
        WHITE_TAG
    }

    fn on_recv(&mut self, _tag: u64, _class: MsgClass) {}

    fn step(&mut self, _ctx: &WorkerGvtCtx) -> WorkerGvtOutcome {
        if self.finished {
            return WorkerGvtOutcome::Quiet;
        }
        let stats = &self.shared.stats;
        // Receive counts only grow; reading sent after received can only
        // under-detect quiescence, never falsely claim it.
        let received = stats.msgs_received.load(Ordering::Acquire);
        let sent = stats.msgs_sent.load(Ordering::Acquire);
        if sent != received {
            return WorkerGvtOutcome::Quiet;
        }
        let gvt = stats
            .worker_contrib
            .iter()
            .map(|c| VirtualTime::from_ordered_bits(c.load(Ordering::Acquire)))
            .min()
            .unwrap_or(VirtualTime::INFINITY);
        if gvt <= self.last_gvt {
            return WorkerGvtOutcome::Quiet;
        }
        self.last_gvt = gvt;
        if gvt >= self.end_time {
            self.finished = true;
        }
        // Monotone ratchet on the shared value; rounds count ratchets.
        if self.shared.published_gvt() < gvt {
            let round = self.shared.published_round() + 1;
            self.shared.publish(gvt, round);
        }
        WorkerGvtOutcome::Completed { gvt, cost: WallNs(100) }
    }
}

/// MPI half that does nothing (the oracle needs no cluster communication).
pub struct NullMpiGvt;

impl MpiGvt for NullMpiGvt {
    fn step(&mut self, _now: WallNs) -> WallNs {
        WallNs::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_with(workers: u32) -> Arc<GvtSharedCore> {
        let stats = Arc::new(SharedStats::new(workers));
        Arc::new(GvtSharedCore::new(stats, 1, workers as u16))
    }

    #[test]
    fn publish_is_monotone_and_visible() {
        let core = core_with(2);
        assert_eq!(core.published_gvt(), VirtualTime::ZERO);
        core.publish(VirtualTime::new(5.0), 1);
        assert_eq!(core.published_gvt(), VirtualTime::new(5.0));
        assert_eq!(core.published_round(), 1);
        core.publish(VirtualTime::new(9.0), 2);
        assert_eq!(core.published_gvt(), VirtualTime::new(9.0));
    }

    #[test]
    #[should_panic]
    fn gvt_regression_panics() {
        let core = core_with(1);
        core.publish(VirtualTime::new(5.0), 1);
        core.publish(VirtualTime::new(4.0), 2);
    }

    #[test]
    fn round_request_flag() {
        let core = core_with(1);
        assert!(!core.round_requested());
        core.request_round();
        assert!(core.round_requested());
    }

    #[test]
    fn publish_epoch_emits_windowed_deltas() {
        use crate::stats::GvtRoundRecord;
        use cagvt_base::metrics::MetricsSink;

        struct Capture(Mutex<Vec<MetricsEpoch>>);
        impl MetricsSink for Capture {
            fn on_epoch(&self, _t: WallNs, e: &MetricsEpoch) {
                self.0.lock().push(e.clone());
            }
        }

        let stats = Arc::new(SharedStats::new(2));
        let sink = Arc::new(Capture(Mutex::new(Vec::new())));
        let core = GvtSharedCore::with_observers(
            Arc::clone(&stats),
            1,
            2,
            None,
            Some(sink.clone() as Arc<dyn MetricsSink>),
        );
        assert!(core.metrics_on());

        stats.committed.store(80, Ordering::Relaxed);
        stats.rolled_back.store(20, Ordering::Relaxed);
        stats.worker_lvts[0].store(VirtualTime::new(6.0).to_ordered_bits(), Ordering::Relaxed);
        stats.worker_lvts[1].store(VirtualTime::new(4.0).to_ordered_bits(), Ordering::Relaxed);
        core.publish(VirtualTime::new(3.0), 1);
        core.publish_epoch(WallNs(1_000));

        // Second round: +40 committed, +60 rolled back, with a CA-GVT
        // controller record for the round.
        stats.committed.store(120, Ordering::Relaxed);
        stats.rolled_back.store(80, Ordering::Relaxed);
        core.publish(VirtualTime::new(5.0), 2);
        stats.gvt_trace.lock().push(GvtRoundRecord {
            round: 2,
            gvt: 5.0,
            synchronous: true,
            efficiency: 0.6,
            committed_delta: 40,
            rolled_back_delta: 60,
            efficiency_window: 0.4,
            cause: SyncCause::Efficiency,
        });
        core.publish_epoch(WallNs(2_000));

        let epochs = sink.0.lock();
        assert_eq!(epochs.len(), 2);
        let first = &epochs[0];
        assert_eq!(first.round, 1);
        assert_eq!(first.committed_delta, 80);
        assert_eq!(first.rolled_back_delta, 20);
        assert!((first.efficiency_window - 0.8).abs() < 1e-12);
        assert_eq!(first.mode, EpochMode::Uncontrolled);
        // Lags vs gvt=3: {3, 1} -> width 2, mean 2.
        assert!((first.horizon_width - 2.0).abs() < 1e-12);
        assert!((first.mean_lag - 2.0).abs() < 1e-12);

        let second = &epochs[1];
        assert_eq!(second.committed_delta, 40);
        assert_eq!(second.rolled_back_delta, 60);
        assert!((second.efficiency_window - 0.4).abs() < 1e-12);
        assert_eq!(second.mode, EpochMode::Sync);
        assert_eq!(second.cause, SyncCause::Efficiency);
        assert_eq!(second.barriers, BARRIER_A | BARRIER_B | BARRIER_C);
    }

    #[test]
    fn oracle_completes_only_at_quiescence() {
        let core = core_with(2);
        let end = VirtualTime::new(10.0);
        let bundle = OracleBundle { shared: Arc::clone(&core), end_time: end };
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let ctx = WorkerGvtCtx { now: WallNs(0), lvt: end, worker_index: 0 };

        // Contributions still at zero: not quiescent.
        assert_eq!(w.step(&ctx), WorkerGvtOutcome::Quiet);

        for c in &core.stats.worker_contrib {
            c.store(end.to_ordered_bits(), Ordering::Relaxed);
        }
        // In-flight message blocks completion.
        core.stats.msgs_sent.store(5, Ordering::Relaxed);
        core.stats.msgs_received.store(4, Ordering::Relaxed);
        assert_eq!(w.step(&ctx), WorkerGvtOutcome::Quiet);

        core.stats.msgs_received.store(5, Ordering::Relaxed);
        match w.step(&ctx) {
            WorkerGvtOutcome::Completed { gvt, .. } => assert_eq!(gvt, end),
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(core.published_gvt(), end);
        // Idempotent afterwards.
        assert_eq!(w.step(&ctx), WorkerGvtOutcome::Quiet);
    }
}
