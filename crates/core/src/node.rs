//! Shared state: per-node wiring and the cluster-wide engine handle.

use cagvt_base::ids::{LaneId, LpId, NodeId};
use cagvt_net::{CtrlPlane, Mailbox, MpiFabric, VirtualMutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::SimConfig;
use crate::event::{RemoteEnv, TaggedMsg};
use crate::gvt::GvtSharedCore;
use crate::model::Model;
use crate::stats::SharedStats;

/// Per-node shared structures.
pub struct NodeShared<P> {
    pub node: NodeId,
    /// One inbound queue per worker lane; carries regional messages from
    /// peers on the same node and remote messages routed by the MPI pump.
    pub lane_queues: Vec<Mailbox<TaggedMsg<P>>>,
    /// Outbound remote messages awaiting the MPI pump.
    pub outbox: Mailbox<RemoteEnv<P>>,
    /// High-water mark of the outbox depth (saturation signal).
    pub outbox_hwm: AtomicU64,
    /// The node's MPI library lock (contended in `PerWorker` mode).
    pub mpi_lock: VirtualMutex,
}

impl<P> NodeShared<P> {
    pub fn new(node: NodeId, workers: u16) -> Self {
        NodeShared {
            node,
            lane_queues: (0..workers).map(|_| Mailbox::new()).collect(),
            outbox: Mailbox::new(),
            outbox_hwm: AtomicU64::new(0),
            mpi_lock: VirtualMutex::new(),
        }
    }

    /// Record the current outbox depth into the high-water mark.
    pub fn note_outbox_depth(&self) {
        let depth = self.outbox.len() as u64;
        self.outbox_hwm.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Cluster-wide engine handle: everything workers and MPI pumps share.
pub struct EngineShared<M: Model> {
    pub cfg: SimConfig,
    pub model: Arc<M>,
    pub fabric: Arc<MpiFabric<RemoteEnv<M::Payload>>>,
    pub ctrl: Arc<CtrlPlane>,
    pub nodes: Vec<Arc<NodeShared<M::Payload>>>,
    pub gvt_core: Arc<GvtSharedCore>,
    pub stats: Arc<SharedStats>,
    /// Fault injector shared with the fabric and scheduler; consulted by
    /// the MPI pumps for stall windows and folded into the run report.
    pub faults: Option<Arc<dyn cagvt_base::fault::FaultInjector>>,
}

impl<M: Model> EngineShared<M> {
    /// Static LP placement: LPs are dense, block-partitioned node-major
    /// then lane-major.
    #[inline]
    pub fn locate(&self, lp: LpId) -> (NodeId, LaneId) {
        let per_node = self.cfg.lps_per_node();
        let per_worker = self.cfg.lps_per_worker;
        let node = lp.0 / per_node;
        let lane = (lp.0 % per_node) / per_worker;
        (NodeId(node as u16), LaneId(lane as u16))
    }

    /// First LP owned by `(node, lane)`.
    #[inline]
    pub fn first_lp(&self, node: NodeId, lane: LaneId) -> LpId {
        LpId(node.0 as u32 * self.cfg.lps_per_node() + lane.0 as u32 * self.cfg.lps_per_worker)
    }

    /// Dense global worker index of `(node, lane)`.
    #[inline]
    pub fn worker_index(&self, node: NodeId, lane: LaneId) -> u32 {
        node.0 as u32 * self.cfg.spec.workers_per_node as u32 + lane.0 as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gvt::GvtSharedCore;
    use crate::model::{Emitter, EventCtx};
    use cagvt_base::rng::Pcg32;
    use cagvt_net::fabric_pair;

    /// Minimal model for wiring tests.
    struct Noop;
    impl Model for Noop {
        type State = ();
        type Payload = ();
        fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) {}
        fn initial_events(&self, _lp: LpId, _s: &mut (), _rng: &mut Pcg32, _e: &mut Emitter<()>) {}
        fn handle(
            &self,
            _c: &EventCtx,
            _s: &mut (),
            _p: &(),
            _r: &mut Pcg32,
            _e: &mut Emitter<()>,
        ) -> u64 {
            0
        }
    }

    fn shared(nodes: u16, workers: u16, lps_per_worker: u32) -> EngineShared<Noop> {
        let mut cfg = SimConfig::small(nodes, workers);
        cfg.lps_per_worker = lps_per_worker;
        let stats = Arc::new(SharedStats::new(cfg.spec.total_workers()));
        let (fabric, ctrl) = fabric_pair(nodes);
        EngineShared {
            cfg,
            model: Arc::new(Noop),
            fabric,
            ctrl,
            nodes: (0..nodes).map(|n| Arc::new(NodeShared::new(NodeId(n), workers))).collect(),
            gvt_core: Arc::new(GvtSharedCore::new(Arc::clone(&stats), nodes, workers)),
            stats,
            faults: None,
        }
    }

    #[test]
    fn lp_placement_is_block_partitioned() {
        let s = shared(2, 3, 4); // 2 nodes x 3 workers x 4 LPs
        assert_eq!(s.locate(LpId(0)), (NodeId(0), LaneId(0)));
        assert_eq!(s.locate(LpId(3)), (NodeId(0), LaneId(0)));
        assert_eq!(s.locate(LpId(4)), (NodeId(0), LaneId(1)));
        assert_eq!(s.locate(LpId(11)), (NodeId(0), LaneId(2)));
        assert_eq!(s.locate(LpId(12)), (NodeId(1), LaneId(0)));
        assert_eq!(s.locate(LpId(23)), (NodeId(1), LaneId(2)));
    }

    #[test]
    fn first_lp_and_worker_index_invert_locate() {
        let s = shared(2, 3, 4);
        for node in 0..2u16 {
            for lane in 0..3u16 {
                let first = s.first_lp(NodeId(node), LaneId(lane));
                assert_eq!(s.locate(first), (NodeId(node), LaneId(lane)));
                let widx = s.worker_index(NodeId(node), LaneId(lane));
                assert_eq!(widx, node as u32 * 3 + lane as u32);
            }
        }
    }

    #[test]
    fn outbox_hwm_tracks_max_depth() {
        let ns: NodeShared<()> = NodeShared::new(NodeId(0), 2);
        ns.note_outbox_depth();
        assert_eq!(ns.outbox_hwm.load(Ordering::Relaxed), 0);
        ns.outbox.push(
            cagvt_base::WallNs::ZERO,
            RemoteEnv {
                dst_node: NodeId(0),
                dst_lane: LaneId(0),
                tagged: TaggedMsg {
                    msg: crate::event::EventMsg::Anti(crate::event::AntiMsg {
                        recv_time: cagvt_base::VirtualTime::ZERO,
                        dst: LpId(0),
                        id: cagvt_base::EventId::new(LpId(0), 0),
                    }),
                    tag: 0,
                },
            },
        );
        ns.note_outbox_depth();
        assert_eq!(ns.outbox_hwm.load(Ordering::Relaxed), 1);
    }
}
