//! The model interface: what a simulation application implements.

use cagvt_base::ids::LpId;
use cagvt_base::rng::Pcg32;
use cagvt_base::time::VirtualTime;

/// Context visible to an event handler.
///
/// Deliberately free of wall-clock state: model behaviour may depend only
/// on virtual time (plus the LP's own state and RNG), which is what makes
/// optimistic execution equivalent to the sequential reference. Models that
/// need execution *phases* (the paper's mixed X-Y workloads) key them off
/// `now / end_time`.
#[derive(Clone, Copy, Debug)]
pub struct EventCtx {
    /// Receive time of the event being processed.
    pub now: VirtualTime,
    /// The LP processing the event.
    pub self_lp: LpId,
    /// Virtual end of the simulation (events at or beyond are never
    /// processed).
    pub end_time: VirtualTime,
    /// Total number of LPs in the run (for choosing destinations).
    pub total_lps: u32,
}

impl EventCtx {
    /// Fraction of the simulated horizon elapsed, in `[0, 1)`.
    #[inline]
    pub fn progress(&self) -> f64 {
        (self.now.as_f64() / self.end_time.as_f64()).min(1.0)
    }
}

/// Collects the events emitted while handling one event.
///
/// Emissions are `(destination, delay, payload)`; the engine stamps the
/// receive time as `now + delay` and assigns the event identity. Delays
/// must be strictly positive — zero-delay self-loops would make virtual
/// time stall.
#[derive(Debug)]
pub struct Emitter<P> {
    out: Vec<(LpId, f64, P)>,
}

impl<P> Emitter<P> {
    pub fn new() -> Self {
        Emitter { out: Vec::new() }
    }

    /// Schedule `payload` for `dst`, `delay` after the current event.
    #[inline]
    pub fn emit(&mut self, dst: LpId, delay: f64, payload: P) {
        assert!(delay > 0.0 && delay.is_finite(), "event delay must be positive, got {delay}");
        self.out.push((dst, delay, payload));
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Drain the collected emissions (engine-internal).
    pub fn take(&mut self) -> std::vec::Drain<'_, (LpId, f64, P)> {
        self.out.drain(..)
    }
}

impl<P> Default for Emitter<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// A discrete event simulation model.
///
/// Implementations must be deterministic functions of `(state, event
/// payload, RNG)` — all randomness through the provided generator, no
/// global state — so that rollback/replay and the sequential reference
/// produce identical trajectories.
pub trait Model: Send + Sync + 'static {
    /// Per-LP state. Cloned into the processed-event history for rollback,
    /// so keep it small (the paper's models carry counters and RNG state).
    type State: Clone + Send + 'static;
    /// Event payload.
    type Payload: Clone + Send + 'static;

    /// Initial state of `lp`.
    fn init_state(&self, lp: LpId, rng: &mut Pcg32) -> Self::State;

    /// Events present at time zero (PHOLD seeds one per LP). Delays are
    /// measured from time zero.
    fn initial_events(
        &self,
        lp: LpId,
        state: &mut Self::State,
        rng: &mut Pcg32,
        emit: &mut Emitter<Self::Payload>,
    );

    /// Process one event: update state, emit follow-on events, and return
    /// the event processing granularity (EPG) in work units (~1 FLOP each),
    /// which the substrate converts to wall-clock cost.
    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut Self::State,
        payload: &Self::Payload,
        rng: &mut Pcg32,
        emit: &mut Emitter<Self::Payload>,
    ) -> u64;

    /// Order-insensitive-free fingerprint of a final LP state, used by the
    /// equivalence tests (optimistic run vs sequential reference). The
    /// default covers models that don't participate in those tests.
    fn state_fingerprint(&self, _state: &Self::State) -> u64 {
        0
    }

    /// Does this model implement [`Self::reverse`]? When true, the engine
    /// rolls back by *reverse computation* (ROSS's mechanism): instead of
    /// snapshotting the LP state before every event, it undoes events by
    /// calling `reverse` in exact LIFO order, storing only the 24 bytes of
    /// RNG + sequence state per event. For models with non-trivial state
    /// this is the memory- and copy-cost winner; the engine verifies both
    /// strategies commit identical results.
    fn supports_reverse(&self) -> bool {
        false
    }

    /// Undo one [`Self::handle`] call. Called in exact LIFO order with the
    /// same `ctx` and `payload`; `rng` arrives restored to its pre-event
    /// state (a scratch copy — the LP's own generator is restored by the
    /// engine), so the reversal can re-derive the event's random draws to
    /// learn what the forward pass did. Must leave `state` exactly as it
    /// was before the forward call.
    fn reverse(
        &self,
        _ctx: &EventCtx,
        _state: &mut Self::State,
        _payload: &Self::Payload,
        _rng: &mut Pcg32,
    ) {
        unimplemented!("model declared supports_reverse() without implementing reverse()")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_and_drains() {
        let mut em: Emitter<u32> = Emitter::new();
        assert!(em.is_empty());
        em.emit(LpId(1), 0.5, 10);
        em.emit(LpId(2), 1.5, 20);
        assert_eq!(em.len(), 2);
        let got: Vec<_> = em.take().collect();
        assert_eq!(got, vec![(LpId(1), 0.5, 10), (LpId(2), 1.5, 20)]);
        assert!(em.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_delay_rejected() {
        let mut em: Emitter<()> = Emitter::new();
        em.emit(LpId(0), 0.0, ());
    }

    #[test]
    #[should_panic]
    fn non_finite_delay_rejected() {
        let mut em: Emitter<()> = Emitter::new();
        em.emit(LpId(0), f64::INFINITY, ());
    }

    #[test]
    fn ctx_progress_is_bounded() {
        let ctx = EventCtx {
            now: VirtualTime::new(50.0),
            self_lp: LpId(0),
            end_time: VirtualTime::new(200.0),
            total_lps: 4,
        };
        assert!((ctx.progress() - 0.25).abs() < 1e-12);
    }
}
