//! Events, anti-messages, and the wire envelopes they travel in.

use cagvt_base::ids::{EventId, LaneId, LpId, NodeId};
use cagvt_base::time::VirtualTime;

/// Tag value meaning "sent while the sender was white" (Mattern coloring).
/// Non-zero tags carry the GVT round in which the sender was red.
pub const WHITE_TAG: u64 = 0;

/// A positive event message.
#[derive(Clone, Debug)]
pub struct Event<P> {
    pub recv_time: VirtualTime,
    pub dst: LpId,
    /// Globally unique identity: (sending LP, sender's send sequence).
    pub id: EventId,
    pub payload: P,
}

impl<P> Event<P> {
    #[inline]
    pub fn key(&self) -> EventKey {
        EventKey { t: self.recv_time, id: self.id }
    }
}

/// The engine's total order over events: receive time, then sender, then
/// sequence. Shared with the sequential reference simulator so both process
/// each LP's events in the identical order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    pub t: VirtualTime,
    pub id: EventId,
}

impl EventKey {
    /// A key strictly below every real event key.
    pub const MIN: EventKey =
        EventKey { t: VirtualTime::ZERO, id: EventId { src: LpId(0), seq: 0 } };
}

/// An anti-message: cancels the positive message with the same `id`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AntiMsg {
    pub recv_time: VirtualTime,
    pub dst: LpId,
    pub id: EventId,
}

/// An acknowledgement (Samadi's GVT algorithm): confirms receipt of the
/// event or anti-message `id`, addressed back to the sending LP. `marked`
/// acks are sent by receivers inside their GVT reporting window (Samadi's
/// fix for the simultaneous reporting problem).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckMsg {
    /// Identity of the acknowledged message.
    pub id: EventId,
    /// Receive time of the acknowledged message.
    pub recv_time: VirtualTime,
    /// Acknowledging an anti-message (events and their antis share ids).
    pub anti: bool,
    pub marked: bool,
}

impl AntiMsg {
    #[inline]
    pub fn key(&self) -> EventKey {
        EventKey { t: self.recv_time, id: self.id }
    }
}

/// What travels between LPs: a positive event, an anti-message, or an
/// acknowledgement (Samadi only).
#[derive(Clone, Debug)]
pub enum EventMsg<P> {
    Event(Event<P>),
    Anti(AntiMsg),
    Ack(AckMsg),
}

impl<P> EventMsg<P> {
    /// Receive time of the carried message (the timestamp GVT algorithms
    /// account for; for an ack, the acknowledged message's time).
    #[inline]
    pub fn recv_time(&self) -> VirtualTime {
        match self {
            EventMsg::Event(e) => e.recv_time,
            EventMsg::Anti(a) => a.recv_time,
            EventMsg::Ack(a) => a.recv_time,
        }
    }

    /// Destination LP: for acks, the *sender* of the acknowledged message.
    #[inline]
    pub fn dst(&self) -> LpId {
        match self {
            EventMsg::Event(e) => e.dst,
            EventMsg::Anti(a) => a.dst,
            EventMsg::Ack(a) => a.id.src,
        }
    }
}

/// An event message plus its GVT color tag. Everything that leaves the
/// sending worker (regional or remote, positive or anti) is tagged, because
/// every in-flight message must be covered by the GVT computation.
#[derive(Clone, Debug)]
pub struct TaggedMsg<P> {
    pub msg: EventMsg<P>,
    pub tag: u64,
}

/// Envelope for the remote path: worker → node outbox → MPI → destination
/// node, where the MPI layer routes it to the destination worker lane.
#[derive(Clone, Debug)]
pub struct RemoteEnv<P> {
    pub dst_node: NodeId,
    pub dst_lane: LaneId,
    pub tagged: TaggedMsg<P>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, src: u32, seq: u64) -> Event<()> {
        Event {
            recv_time: VirtualTime::new(t),
            dst: LpId(0),
            id: EventId::new(LpId(src), seq),
            payload: (),
        }
    }

    #[test]
    fn key_orders_by_time_then_src_then_seq() {
        let a = ev(1.0, 5, 9).key();
        let b = ev(2.0, 0, 0).key();
        let c = ev(2.0, 0, 1).key();
        let d = ev(2.0, 1, 0).key();
        assert!(a < b && b < c && c < d);
        assert!(EventKey::MIN < a);
    }

    #[test]
    fn anti_key_matches_event_key() {
        let e = ev(3.5, 2, 7);
        let a = AntiMsg { recv_time: e.recv_time, dst: e.dst, id: e.id };
        assert_eq!(a.key(), e.key());
    }

    #[test]
    fn event_msg_accessors() {
        let e = ev(1.0, 1, 1);
        let msg: EventMsg<()> = EventMsg::Event(e.clone());
        assert_eq!(msg.recv_time(), e.recv_time);
        assert_eq!(msg.dst(), e.dst);
        let anti = EventMsg::<()>::Anti(AntiMsg {
            recv_time: VirtualTime::new(9.0),
            dst: LpId(4),
            id: EventId::new(LpId(1), 2),
        });
        assert_eq!(anti.recv_time(), VirtualTime::new(9.0));
        assert_eq!(anti.dst(), LpId(4));
    }
}
