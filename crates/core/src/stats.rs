//! Engine instrumentation: per-worker counters and cluster-shared
//! statistics.

use cagvt_base::metrics::SyncCause;
use cagvt_base::stats::Welford;
use cagvt_base::time::{VirtualTime, WallNs};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters owned (contention-free) by one worker, deposited into
/// [`SharedStats`] when the worker finishes.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerCounters {
    /// Events processed (including re-executions after rollback).
    pub processed: u64,
    /// Events committed by fossil collection.
    pub committed: u64,
    /// Events undone by rollbacks.
    pub rolled_back: u64,
    /// Rollback episodes.
    pub rollbacks: u64,
    /// Rollbacks triggered by straggler events (vs anti-messages).
    pub stragglers: u64,
    pub antis_sent: u64,
    pub antis_received: u64,
    /// Acknowledgement messages (Samadi's GVT only).
    pub acks_sent: u64,
    pub acks_received: u64,
    /// Message pairs annihilated (pending, early, or via rollback-cancel).
    pub annihilated: u64,
    pub sent_local: u64,
    pub sent_regional: u64,
    pub sent_remote: u64,
    pub received_msgs: u64,
    /// GVT rounds this worker completed.
    pub gvt_rounds: u64,
    /// Wall time attributed to the GVT function (blocked barrier time plus
    /// the interleaved bookkeeping of asynchronous algorithms).
    pub gvt_time: WallNs,
    /// Wall time spent processing events (EPG + engine overhead).
    pub busy_time: WallNs,
    /// Steps in which the worker had nothing to do.
    pub idle_polls: u64,
    /// Steps skipped because the optimism throttle was engaged.
    pub throttled: u64,
    /// Round requests issued because the event interval elapsed.
    pub requests_interval: u64,
    /// Round requests issued while unable to make progress (throttled,
    /// drained, or past the end time).
    pub requests_idle: u64,
    /// Wall time spent blocked inside GVT synchronization barriers (a
    /// subset of `gvt_time`; zero for fully asynchronous rounds).
    pub barrier_wait: WallNs,
    /// Deepest rollback cascade observed: the most rollback episodes
    /// triggered within one local anti-message drain.
    pub max_cascade: u64,
}

impl WorkerCounters {
    pub fn merge(&mut self, o: &WorkerCounters) {
        self.processed += o.processed;
        self.committed += o.committed;
        self.rolled_back += o.rolled_back;
        self.rollbacks += o.rollbacks;
        self.stragglers += o.stragglers;
        self.antis_sent += o.antis_sent;
        self.antis_received += o.antis_received;
        self.acks_sent += o.acks_sent;
        self.acks_received += o.acks_received;
        self.annihilated += o.annihilated;
        self.sent_local += o.sent_local;
        self.sent_regional += o.sent_regional;
        self.sent_remote += o.sent_remote;
        self.received_msgs += o.received_msgs;
        self.gvt_rounds += o.gvt_rounds;
        self.gvt_time += o.gvt_time;
        self.busy_time += o.busy_time;
        self.idle_polls += o.idle_polls;
        self.throttled += o.throttled;
        self.requests_interval += o.requests_interval;
        self.requests_idle += o.requests_idle;
        self.barrier_wait += o.barrier_wait;
        self.max_cascade = self.max_cascade.max(o.max_cascade);
    }
}

/// Counters owned by one MPI pump (dedicated actor or inline duty).
#[derive(Clone, Copy, Debug, Default)]
pub struct MpiCounters {
    pub sent: u64,
    pub received: u64,
    pub pump_time: WallNs,
    /// High-water mark of the node's outbound MPI queue.
    pub outbox_hwm: u64,
}

impl MpiCounters {
    pub fn merge(&mut self, o: &MpiCounters) {
        self.sent += o.sent;
        self.received += o.received;
        self.pump_time += o.pump_time;
        self.outbox_hwm = self.outbox_hwm.max(o.outbox_hwm);
    }
}

/// A point on the run's progress curve, sampled at GVT rounds by worker 0;
/// the report derives the steady-state committed rate from these (excluding
/// warm-up and the termination tail).
#[derive(Clone, Copy, Debug)]
pub struct ProgressSample {
    pub gvt: f64,
    pub wall: WallNs,
    pub committed: u64,
}

/// One completed GVT round, for the CA-GVT mode trace (paper §6).
///
/// Carries both views of efficiency: the *windowed* ratio over just this
/// round's committed/rolled-back deltas (the signal the CA-GVT controller
/// actually compares against its threshold) and the cumulative run ratio
/// for reference. Recording-only — the controller's decision logic is
/// unchanged.
#[derive(Clone, Copy, Debug)]
pub struct GvtRoundRecord {
    pub round: u64,
    pub gvt: f64,
    /// Was the round executed with CA-GVT's synchronization enabled?
    pub synchronous: bool,
    /// Cumulative efficiency observed at the end of the round.
    pub efficiency: f64,
    /// Events committed cluster-wide during this round's window.
    pub committed_delta: u64,
    /// Events rolled back cluster-wide during this round's window.
    pub rolled_back_delta: u64,
    /// Windowed efficiency `committed_delta / (committed_delta +
    /// rolled_back_delta)` — falls back to the cumulative ratio when the
    /// window saw no activity (mirroring the controller's own fallback).
    pub efficiency_window: f64,
    /// Why the conditional barriers were armed for this round
    /// (`SyncCause::None` for asynchronous rounds).
    pub cause: SyncCause,
}

/// Lock-free per-worker counter cell, refreshed (not accumulated) with a
/// snapshot of the worker's private [`WorkerCounters`] once per completed
/// GVT round — never on the event hot path. Cache-line aligned so
/// neighboring workers' deposits never share a line.
///
/// Only the counters that are *not* already live in [`SharedStats`]
/// atomics are mirrored here; the epoch assembler sums cells with
/// [`SharedStats::merged_cells`]. A cell may lag its worker's very latest
/// events by at most one round.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct WorkerCell {
    pub rollbacks: AtomicU64,
    pub stragglers: AtomicU64,
    pub antis_sent: AtomicU64,
    pub annihilated: AtomicU64,
}

/// Cluster-wide totals summed over the [`WorkerCell`] deposits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellTotals {
    pub rollbacks: u64,
    pub stragglers: u64,
    pub antis_sent: u64,
    pub annihilated: u64,
}

/// Cluster-shared statistics and live signals.
///
/// The atomics are written on hot paths (event commit/rollback, message
/// send/receive) and read by CA-GVT's efficiency check, the test oracle,
/// and the final report.
pub struct SharedStats {
    pub committed: AtomicU64,
    pub processed: AtomicU64,
    pub rolled_back: AtomicU64,
    /// Regional + remote messages handed to a channel (events and antis).
    pub msgs_sent: AtomicU64,
    /// Regional + remote messages drained by their destination worker.
    pub msgs_received: AtomicU64,
    /// Per-worker published LVT (ordered bits of the last processed event
    /// time) — the paper's disparity metric samples these.
    pub worker_lvts: Vec<AtomicU64>,
    /// Per-worker published GVT contribution (ordered bits of the minimum
    /// pending event time), used by the test oracle.
    pub worker_contrib: Vec<AtomicU64>,
    /// Std-dev of worker LVTs, one sample per GVT round.
    pub disparity: Mutex<Welford>,
    /// Virtual-time-horizon width (max − min finite worker LVT), one
    /// sample per GVT round — the Kolakowska–Novotny width statistic.
    pub horizon_width: Mutex<Welford>,
    /// Final per-worker counters, deposited at shutdown.
    pub worker_deposits: Mutex<Vec<WorkerCounters>>,
    /// Final per-pump counters.
    pub mpi_deposits: Mutex<Vec<MpiCounters>>,
    /// Per-worker metric cells, refreshed at GVT rounds when a metrics
    /// sink is installed (see [`WorkerCell`]).
    pub worker_cells: Vec<WorkerCell>,
    /// CA-GVT round trace.
    pub gvt_trace: Mutex<Vec<GvtRoundRecord>>,
    /// Progress curve samples (one per GVT round, recorded by worker 0).
    pub progress: Mutex<Vec<ProgressSample>>,
    /// XOR-combined fingerprint of all final LP states (workers fold their
    /// LPs in with [`fetch_xor`](AtomicU64::fetch_xor) at shutdown);
    /// compared against the sequential reference by the equivalence tests.
    pub state_fp: AtomicU64,
}

impl SharedStats {
    pub fn new(total_workers: u32) -> Self {
        SharedStats {
            committed: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            rolled_back: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            msgs_received: AtomicU64::new(0),
            worker_lvts: (0..total_workers)
                .map(|_| AtomicU64::new(VirtualTime::ZERO.to_ordered_bits()))
                .collect(),
            worker_contrib: (0..total_workers)
                .map(|_| AtomicU64::new(VirtualTime::ZERO.to_ordered_bits()))
                .collect(),
            disparity: Mutex::new(Welford::new()),
            horizon_width: Mutex::new(Welford::new()),
            worker_deposits: Mutex::new(Vec::new()),
            mpi_deposits: Mutex::new(Vec::new()),
            worker_cells: (0..total_workers).map(|_| WorkerCell::default()).collect(),
            gvt_trace: Mutex::new(Vec::new()),
            progress: Mutex::new(Vec::new()),
            state_fp: AtomicU64::new(0),
        }
    }

    /// Cumulative efficiency: committed / (committed + rolled back), the
    /// paper's committed-over-generated ratio. 1.0 before any activity.
    pub fn efficiency(&self) -> f64 {
        let committed = self.committed.load(Ordering::Relaxed) as f64;
        let rolled = self.rolled_back.load(Ordering::Relaxed) as f64;
        if committed + rolled == 0.0 {
            1.0
        } else {
            committed / (committed + rolled)
        }
    }

    /// Sample the published worker LVTs and record the round's disparity
    /// (population std-dev, the paper's §4 metric) and horizon width
    /// (max − min, Kolakowska–Novotny).
    pub fn sample_disparity(&self) {
        let mut w = Welford::new();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for lvt in &self.worker_lvts {
            let t = VirtualTime::from_ordered_bits(lvt.load(Ordering::Relaxed));
            if t.is_finite() {
                let t = t.as_f64();
                w.push(t);
                min = min.min(t);
                max = max.max(t);
            }
        }
        self.disparity.lock().push(w.std_dev());
        self.horizon_width.lock().push(if max >= min { max - min } else { 0.0 });
    }

    /// Refresh worker `widx`'s metric cell with a snapshot of its private
    /// counters. Relaxed stores: the cell is a monotone snapshot, read
    /// only by the epoch assembler which tolerates one round of skew.
    pub fn publish_worker_cell(&self, widx: u32, c: &WorkerCounters) {
        let cell = &self.worker_cells[widx as usize];
        cell.rollbacks.store(c.rollbacks, Ordering::Relaxed);
        cell.stragglers.store(c.stragglers, Ordering::Relaxed);
        cell.antis_sent.store(c.antis_sent, Ordering::Relaxed);
        cell.annihilated.store(c.annihilated, Ordering::Relaxed);
    }

    /// Sum the per-worker cells into cluster-wide totals.
    pub fn merged_cells(&self) -> CellTotals {
        let mut t = CellTotals::default();
        for cell in &self.worker_cells {
            t.rollbacks += cell.rollbacks.load(Ordering::Relaxed);
            t.stragglers += cell.stragglers.load(Ordering::Relaxed);
            t.antis_sent += cell.antis_sent.load(Ordering::Relaxed);
            t.annihilated += cell.annihilated.load(Ordering::Relaxed);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_starts_at_one_and_tracks_counts() {
        let s = SharedStats::new(2);
        assert_eq!(s.efficiency(), 1.0);
        s.committed.store(90, Ordering::Relaxed);
        s.rolled_back.store(10, Ordering::Relaxed);
        assert!((s.efficiency() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn efficiency_is_zero_when_everything_rolled_back() {
        let s = SharedStats::new(2);
        // A pathological run where no event survived: processed work
        // exists but nothing committed.
        s.processed.store(50, Ordering::Relaxed);
        s.rolled_back.store(50, Ordering::Relaxed);
        assert_eq!(s.efficiency(), 0.0);
    }

    #[test]
    fn efficiency_ignores_processed_only_activity() {
        // Events in flight (processed but not yet committed or rolled
        // back) must not drag efficiency below its optimistic 1.0 start.
        let s = SharedStats::new(1);
        s.processed.store(1000, Ordering::Relaxed);
        assert_eq!(s.efficiency(), 1.0);
    }

    #[test]
    fn disparity_sampling_uses_population_std_dev() {
        let s = SharedStats::new(4);
        for (i, t) in [2.0, 4.0, 4.0, 6.0].iter().enumerate() {
            s.worker_lvts[i].store(VirtualTime::new(*t).to_ordered_bits(), Ordering::Relaxed);
        }
        s.sample_disparity();
        let d = s.disparity.lock();
        assert_eq!(d.count(), 1);
        // mean 4, deviations [-2,0,0,2] -> variance 2 -> std ~1.414
        assert!((d.mean() - 2.0_f64.sqrt()).abs() < 1e-12);
        // Horizon width of {2,4,4,6} is 4.
        let h = s.horizon_width.lock();
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn disparity_sampling_with_no_finite_lvt_records_empty_round() {
        // All workers idle at infinite LVT: the Welford window still gets
        // one sample per round (std-dev of the empty set is 0) and the
        // horizon width collapses to 0 rather than going negative/NaN.
        let s = SharedStats::new(3);
        for lvt in &s.worker_lvts {
            lvt.store(VirtualTime::INFINITY.to_ordered_bits(), Ordering::Relaxed);
        }
        s.sample_disparity();
        let d = s.disparity.lock();
        assert_eq!(d.count(), 1);
        assert_eq!(d.mean(), 0.0);
        let h = s.horizon_width.lock();
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn disparity_sampling_single_worker_has_zero_width() {
        let s = SharedStats::new(1);
        s.worker_lvts[0].store(VirtualTime::new(7.5).to_ordered_bits(), Ordering::Relaxed);
        s.sample_disparity();
        // One finite sample: std-dev 0, width max-min = 0.
        assert_eq!(s.disparity.lock().mean(), 0.0);
        assert_eq!(s.horizon_width.lock().mean(), 0.0);
    }

    #[test]
    fn disparity_sampling_skips_infinite_lvts_in_mixed_rounds() {
        // {2, inf, 6, inf}: only the finite pair contributes, so the width
        // is 4 and the std-dev is that of {2, 6} = 2.
        let s = SharedStats::new(4);
        for (i, t) in [
            VirtualTime::new(2.0),
            VirtualTime::INFINITY,
            VirtualTime::new(6.0),
            VirtualTime::INFINITY,
        ]
        .iter()
        .enumerate()
        {
            s.worker_lvts[i].store(t.to_ordered_bits(), Ordering::Relaxed);
        }
        s.sample_disparity();
        let d = s.disparity.lock();
        assert_eq!(d.count(), 1);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let h = s.horizon_width.lock();
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn worker_cells_snapshot_and_merge() {
        let s = SharedStats::new(2);
        assert_eq!(s.merged_cells(), CellTotals::default());
        let c0 = WorkerCounters { rollbacks: 3, antis_sent: 5, ..Default::default() };
        let c1 =
            WorkerCounters { rollbacks: 1, stragglers: 2, annihilated: 4, ..Default::default() };
        s.publish_worker_cell(0, &c0);
        s.publish_worker_cell(1, &c1);
        assert_eq!(
            s.merged_cells(),
            CellTotals { rollbacks: 4, stragglers: 2, antis_sent: 5, annihilated: 4 }
        );
        // Cells are snapshots, not accumulators: re-publishing replaces.
        s.publish_worker_cell(0, &WorkerCounters { rollbacks: 7, ..Default::default() });
        assert_eq!(s.merged_cells().rollbacks, 8);
        assert_eq!(s.merged_cells().antis_sent, 0);
    }

    #[test]
    fn counters_merge() {
        let mut a = WorkerCounters {
            processed: 10,
            committed: 5,
            gvt_time: WallNs(100),
            ..Default::default()
        };
        let b = WorkerCounters {
            processed: 3,
            rolled_back: 2,
            gvt_time: WallNs(50),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.processed, 13);
        assert_eq!(a.committed, 5);
        assert_eq!(a.rolled_back, 2);
        assert_eq!(a.gvt_time, WallNs(150));

        let mut m = MpiCounters { sent: 1, outbox_hwm: 10, ..Default::default() };
        m.merge(&MpiCounters { sent: 2, outbox_hwm: 7, ..Default::default() });
        assert_eq!(m.sent, 3);
        assert_eq!(m.outbox_hwm, 10);
    }
}
