//! The pending event set of one worker.
//!
//! A priority queue over [`EventKey`] with support for annihilation:
//!
//! * anti-message arrives while the positive event is **pending** — the
//!   event is lazily tombstoned and skipped when it reaches the top;
//! * anti-message arrives **before** its positive event (cannot happen on
//!   the engine's FIFO channels, but kept as a defensive path) — the
//!   cancellation is remembered and the event is annihilated on insertion.
//!
//! Tombstones are keyed by the full [`EventKey`] (receive time *and*
//! identity), not the id alone: after a rollback, a re-executed LP re-sends
//! with the same `(sender, sequence)` id but possibly a different receive
//! time, and an id-keyed tombstone could annihilate the fresh copy while
//! letting the stale one go live.
//!
//! The case where the positive event was already **processed** is handled
//! one level up (rollback in [`crate::lp`]).

use cagvt_base::ids::EventId;
use cagvt_base::time::VirtualTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::event::{Event, EventKey};

/// Result of [`PendingSet::cancel`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelOutcome {
    /// The positive event was pending; both are now annihilated.
    AnnihilatedPending,
    /// The positive event is not pending (defensive path); it will be
    /// annihilated if it ever arrives.
    Deferred,
}

struct HeapEntry<P> {
    key: EventKey,
    /// Insertion order. Bit-identical copies of a cancelled-then-re-sent
    /// message share a key; the stamp distinguishes them, and because
    /// cancellations always target the oldest surviving copy (antis
    /// precede re-sends on FIFO channels), the dead copies of a key are
    /// exactly its lowest-stamped entries.
    stamp: u64,
    event: Event<P>,
}

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.stamp == other.stamp
    }
}
impl<P> Eq for HeapEntry<P> {}
impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.stamp).cmp(&(other.key, other.stamp))
    }
}

/// Priority queue of not-yet-processed events for the LPs of one worker.
pub struct PendingSet<P> {
    heap: BinaryHeap<Reverse<HeapEntry<P>>>,
    /// Receive time of each live (non-cancelled) pending event, by id.
    live: HashMap<EventId, VirtualTime>,
    /// Exact keys tombstoned while still in the heap, with multiplicity:
    /// a rolled-back sender can re-send a bit-identical copy of a message
    /// it already cancelled, so the same key can be dead more than once.
    cancelled: HashMap<EventKey, u32>,
    /// Cancellations that arrived before their positive event (with
    /// multiplicity, for the same reason).
    early_antis: HashMap<EventKey, u32>,
    next_stamp: u64,
}

impl<P> Default for PendingSet<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PendingSet<P> {
    pub fn new() -> Self {
        PendingSet {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            cancelled: HashMap::new(),
            early_antis: HashMap::new(),
            next_stamp: 0,
        }
    }

    /// Insert a positive event. Returns `false` if it was annihilated by a
    /// waiting early anti-message (in which case it is *not* inserted).
    pub fn insert(&mut self, event: Event<P>) -> bool {
        if let Some(n) = self.early_antis.get_mut(&event.key()) {
            *n -= 1;
            if *n == 0 {
                self.early_antis.remove(&event.key());
            }
            return false;
        }
        debug_assert!(
            !self.live.contains_key(&event.id),
            "duplicate pending event id {:?}: live at t={:?}, inserting t={:?}",
            event.id,
            self.live.get(&event.id),
            event.recv_time
        );
        self.live.insert(event.id, event.recv_time);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.heap.push(Reverse(HeapEntry { key: event.key(), stamp, event }));
        true
    }

    /// Cancel the positive event with exactly this key.
    pub fn cancel(&mut self, key: EventKey) -> CancelOutcome {
        if self.live.get(&key.id) == Some(&key.t) {
            self.live.remove(&key.id);
            *self.cancelled.entry(key).or_insert(0) += 1;
            CancelOutcome::AnnihilatedPending
        } else {
            *self.early_antis.entry(key).or_insert(0) += 1;
            CancelOutcome::Deferred
        }
    }

    /// Drop cancelled entries sitting on top of the heap. Entries of one
    /// key pop in stamp order, and the dead copies of a key are exactly
    /// its oldest `cancelled[key]` entries, so decrementing as we pop
    /// consumes precisely the dead ones and leaves a live same-key copy
    /// (which has the highest stamp) in place.
    fn clean_top(&mut self) {
        while let Some(Reverse(top)) = self.heap.peek() {
            let key = top.key;
            match self.cancelled.get_mut(&key) {
                Some(n) => {
                    debug_assert!(*n > 0);
                    *n -= 1;
                    if *n == 0 {
                        self.cancelled.remove(&key);
                    }
                    self.heap.pop();
                }
                None => break,
            }
        }
    }

    /// Remove and return the minimum live event.
    pub fn pop_min(&mut self) -> Option<Event<P>> {
        self.clean_top();
        self.heap.pop().map(|Reverse(entry)| {
            self.live.remove(&entry.event.id);
            entry.event
        })
    }

    /// Key of the minimum live event (the worker's LVT contribution when
    /// present).
    pub fn min_key(&mut self) -> Option<EventKey> {
        self.clean_top();
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    /// Receive time of the minimum live event, or +inf when empty.
    pub fn min_time(&mut self) -> VirtualTime {
        self.min_key().map(|k| k.t).unwrap_or(VirtualTime::INFINITY)
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of early (unmatched) anti-messages currently remembered.
    pub fn early_antis(&self) -> usize {
        self.early_antis.len()
    }

    /// Number of distinct keys tombstoned while still in the heap.
    pub fn cancelled(&self) -> usize {
        self.cancelled.len()
    }

    /// Drop tombstones that can never match again: no event with receive
    /// time below GVT can be inserted or cancelled after GVT is published,
    /// so `early_antis` entries below it are permanently stale (the
    /// re-sent copy they missed carries a different key — see
    /// `early_anti_matches_exact_key_only`). Fossil collection calls this
    /// each round; without it both maps grow without bound on
    /// rollback-heavy runs. Returns `(early_antis, cancelled)` purged.
    pub fn purge_below(&mut self, gvt: VirtualTime) -> (usize, usize) {
        // No live pending event sits below GVT, so every heap entry below
        // it is a dead copy and they occupy the top of the heap
        // contiguously. Drain them (and their `cancelled` counts) first so
        // the map purge below cannot orphan a dead entry still in the
        // heap, which would resurrect it as live.
        self.clean_top();
        let before_e = self.early_antis.len();
        self.early_antis.retain(|k, _| k.t >= gvt);
        let before_c = self.cancelled.len();
        self.cancelled.retain(|k, _| k.t >= gvt);
        (before_e - self.early_antis.len(), before_c - self.cancelled.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::ids::LpId;

    fn ev(t: f64, src: u32, seq: u64) -> Event<u32> {
        Event {
            recv_time: VirtualTime::new(t),
            dst: LpId(0),
            id: EventId::new(LpId(src), seq),
            payload: (t * 10.0) as u32,
        }
    }

    #[test]
    fn pops_in_key_order() {
        let mut ps = PendingSet::new();
        ps.insert(ev(3.0, 0, 0));
        ps.insert(ev(1.0, 2, 5));
        ps.insert(ev(1.0, 1, 9));
        ps.insert(ev(2.0, 0, 1));
        let order: Vec<f64> =
            std::iter::from_fn(|| ps.pop_min()).map(|e| e.recv_time.as_f64()).collect();
        assert_eq!(order, vec![1.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_break_by_sender_then_seq() {
        let mut ps = PendingSet::new();
        ps.insert(ev(1.0, 2, 0));
        ps.insert(ev(1.0, 1, 7));
        ps.insert(ev(1.0, 1, 3));
        let a = ps.pop_min().unwrap();
        let b = ps.pop_min().unwrap();
        let c = ps.pop_min().unwrap();
        assert_eq!(a.id, EventId::new(LpId(1), 3));
        assert_eq!(b.id, EventId::new(LpId(1), 7));
        assert_eq!(c.id, EventId::new(LpId(2), 0));
    }

    #[test]
    fn cancel_pending_annihilates() {
        let mut ps = PendingSet::new();
        let e = ev(1.0, 0, 0);
        let key = e.key();
        ps.insert(e);
        ps.insert(ev(2.0, 0, 1));
        assert_eq!(ps.cancel(key), CancelOutcome::AnnihilatedPending);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.min_time(), VirtualTime::new(2.0));
        let popped = ps.pop_min().unwrap();
        assert_eq!(popped.id, EventId::new(LpId(0), 1));
        assert!(ps.pop_min().is_none());
    }

    #[test]
    fn early_anti_annihilates_on_insert() {
        let mut ps: PendingSet<u32> = PendingSet::new();
        let e = ev(5.0, 3, 4);
        assert_eq!(ps.cancel(e.key()), CancelOutcome::Deferred);
        assert_eq!(ps.early_antis(), 1);
        assert!(!ps.insert(e), "must annihilate against the waiting anti");
        assert!(ps.is_empty());
        assert_eq!(ps.early_antis(), 0);
    }

    #[test]
    fn stale_tombstone_does_not_kill_resent_copy() {
        // A cancelled (id, t=1.0) copy must not annihilate the re-sent
        // (id, t=2.0) copy that shares the id.
        let mut ps = PendingSet::new();
        let old = ev(1.0, 0, 0);
        let old_key = old.key();
        ps.insert(old);
        assert_eq!(ps.cancel(old_key), CancelOutcome::AnnihilatedPending);
        let fresh = ev(2.0, 0, 0);
        assert!(ps.insert(fresh.clone()), "fresh copy must be accepted");
        let popped = ps.pop_min().unwrap();
        assert_eq!(popped.recv_time, fresh.recv_time, "fresh copy must survive");
        assert!(ps.pop_min().is_none());
    }

    #[test]
    fn early_anti_matches_exact_key_only() {
        let mut ps: PendingSet<u32> = PendingSet::new();
        let old = ev(1.0, 0, 0);
        ps.cancel(old.key()); // deferred anti for (id, t=1.0)
        let fresh = ev(2.0, 0, 0); // same id, different time
        assert!(ps.insert(fresh), "anti for the old copy must not hit the new one");
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.early_antis(), 1, "stale deferred anti remains remembered");
    }

    #[test]
    fn purge_below_drops_stale_tombstones_only() {
        let mut ps: PendingSet<u32> = PendingSet::new();
        // Stale deferred anti at t=1.0 (its positive was re-sent at t=2.0).
        ps.cancel(ev(1.0, 0, 0).key());
        assert!(ps.insert(ev(2.0, 0, 0)));
        // Fresh deferred anti above the purge horizon must survive.
        ps.cancel(ev(9.0, 0, 5).key());
        assert_eq!(ps.early_antis(), 2);
        let (ea, ca) = ps.purge_below(VirtualTime::new(3.0));
        assert_eq!((ea, ca), (1, 0));
        assert_eq!(ps.early_antis(), 1, "the t=9 anti must remain");
        // The surviving anti still annihilates its positive on arrival.
        assert!(!ps.insert(ev(9.0, 0, 5)));
        assert_eq!(ps.early_antis(), 0);
        // The live t=2 event was untouched.
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.min_time(), VirtualTime::new(2.0));
    }

    #[test]
    fn purge_below_never_resurrects_dead_heap_entries() {
        // A cancelled-while-pending entry below the purge horizon: its
        // heap copy must be consumed by the purge, not revived by losing
        // its tombstone.
        let mut ps = PendingSet::new();
        let dead = ev(1.0, 0, 0);
        let key = dead.key();
        ps.insert(dead);
        ps.insert(ev(5.0, 0, 1));
        ps.cancel(key);
        assert_eq!(ps.cancelled(), 1);
        ps.purge_below(VirtualTime::new(2.0));
        assert_eq!(ps.cancelled(), 0);
        let popped = ps.pop_min().expect("live event remains");
        assert_eq!(popped.recv_time, VirtualTime::new(5.0), "dead copy must not pop");
        assert!(ps.pop_min().is_none());
    }

    #[test]
    fn tombstone_maps_stay_bounded_on_rollback_heavy_runs() {
        // Regression for the leak documented by
        // `early_anti_matches_exact_key_only`: every round leaves behind
        // one permanently-unmatchable deferred anti (the positive is
        // re-sent with a later receive time) and one cancelled-while-
        // pending tombstone. With the fossil-pass purge both maps stay
        // O(1); without it they grow with the round count.
        let mut ps: PendingSet<u32> = PendingSet::new();
        for round in 0..5_000u64 {
            let t = round as f64 + 1.0;
            // Anti arrives before its positive; the rolled-back sender
            // then re-sends the same id at a different time, so the
            // deferred anti never matches.
            ps.cancel(ev(t, 0, round).key());
            ps.insert(ev(t + 0.25, 0, round));
            // Cancel the re-sent copy while pending: a heap tombstone.
            ps.cancel(ev(t + 0.25, 0, round).key());
            // One live event per round is actually processed.
            ps.insert(ev(t + 0.5, 1, round));
            assert_eq!(ps.pop_min().expect("live event").recv_time, VirtualTime::new(t + 0.5));
            // Fossil pass at the new GVT.
            ps.purge_below(VirtualTime::new(t + 0.75));
            assert!(ps.early_antis() <= 1, "early_antis leaked: {}", ps.early_antis());
            assert!(ps.cancelled() <= 1, "cancelled leaked: {}", ps.cancelled());
        }
        assert!(ps.is_empty());
    }

    #[test]
    fn min_time_skips_cancelled_head() {
        let mut ps = PendingSet::new();
        let head = ev(1.0, 0, 0);
        let key = head.key();
        ps.insert(head);
        ps.insert(ev(4.0, 0, 1));
        ps.cancel(key);
        assert_eq!(ps.min_time(), VirtualTime::new(4.0));
    }

    #[test]
    fn empty_set_reports_infinity() {
        let mut ps: PendingSet<u32> = PendingSet::new();
        assert_eq!(ps.min_time(), VirtualTime::INFINITY);
        assert!(ps.min_key().is_none());
        assert!(ps.pop_min().is_none());
    }

    #[test]
    fn reinsert_after_rollback_is_allowed() {
        // Rollback re-enqueues previously processed events: same id enters
        // the set again after having been popped.
        let mut ps = PendingSet::new();
        let e = ev(1.0, 0, 0);
        ps.insert(e);
        let popped = ps.pop_min().unwrap();
        assert!(ps.insert(popped));
        assert_eq!(ps.len(), 1);
    }
}
