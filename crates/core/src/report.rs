//! Assembled results of one simulation run — the quantities the paper
//! reports.

use cagvt_base::time::VirtualTime;
use cagvt_exec::VirtualRunStats;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::model::Model;
use crate::node::EngineShared;
use crate::stats::{MpiCounters, ProgressSample, WorkerCounters};

/// Steady-state measurement window: the report's `steady_rate` measures
/// committed throughput between these fractions of GVT progress, excluding
/// the warm-up ramp below the lower bound and the termination tail above
/// the upper one (which at short horizons would otherwise dominate).
pub const STEADY_WINDOW_LO_FRAC: f64 = 0.15;
/// See [`STEADY_WINDOW_LO_FRAC`].
pub const STEADY_WINDOW_HI_FRAC: f64 = 0.85;
/// The window must span at least this fraction of GVT progress to be
/// trusted; sparser sampling falls back to the whole-run rate.
pub const STEADY_WINDOW_MIN_SPAN_FRAC: f64 = 0.3;
/// The window must contain at least `committed / this` of the run's
/// committed events to be trusted (guards against a window that happens to
/// bracket an idle stretch).
pub const STEADY_WINDOW_MIN_COMMITTED_DIV: u64 = 4;

/// Compute `(steady_rate, window_rounds)` from the progress samples.
///
/// `window_rounds` counts GVT rounds whose sample fell inside
/// `[STEADY_WINDOW_LO_FRAC, STEADY_WINDOW_HI_FRAC) * end`. The rate is the
/// committed-per-second slope between the first in-window sample and the
/// last pre-termination sample, *if* that slope covers enough of the run
/// (see the constants above); otherwise — empty sample sets, short runs
/// with too few rounds, degenerate slopes — it falls back to the honest
/// whole-run rate `committed / sim_seconds`.
pub fn steady_window(
    samples: &[ProgressSample],
    end: f64,
    committed: u64,
    sim_seconds: f64,
) -> (f64, u64) {
    let lo_gvt = STEADY_WINDOW_LO_FRAC * end;
    let hi_gvt = STEADY_WINDOW_HI_FRAC * end;
    let in_window = samples.iter().filter(|s| s.gvt >= lo_gvt && s.gvt < hi_gvt).count() as u64;
    let lo = samples.iter().find(|s| s.gvt >= lo_gvt);
    let hi = samples.iter().rev().find(|s| s.gvt < end).or(samples.last());
    let whole = safe_rate(committed as f64, sim_seconds);
    let rate = match (lo, hi) {
        (Some(a), Some(b))
            if b.wall > a.wall
                && b.committed > a.committed
                // Guard against sparse/degenerate sampling: the window
                // must cover a substantial share of the run or the
                // whole-run rate is the honest number.
                && b.committed - a.committed >= committed / STEADY_WINDOW_MIN_COMMITTED_DIV
                && b.gvt - a.gvt >= STEADY_WINDOW_MIN_SPAN_FRAC * end =>
        {
            (b.committed - a.committed) as f64 / (b.wall - a.wall).as_secs_f64()
        }
        _ => whole,
    };
    (rate, in_window)
}

/// `num / den`, or 0.0 when the denominator is not positive. Every rate
/// column of the report goes through this so a degenerate run (zero
/// makespan, zero committed events) yields 0.0 in the CSVs, never NaN.
#[inline]
pub fn safe_rate(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// The paper's efficiency: committed over (committed + rolled back), with
/// the empty run defined as perfectly efficient.
#[inline]
pub fn efficiency_of(committed: u64, rolled_back: u64) -> f64 {
    if committed + rolled_back == 0 {
        1.0
    } else {
        committed as f64 / (committed + rolled_back) as f64
    }
}

/// Everything measured in one run. The `Default` value is an all-zero
/// record for tests and placeholder rows, not a meaningful run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    pub algorithm: String,
    pub nodes: u16,
    pub workers_per_node: u16,
    pub mpi_mode: &'static str,

    /// Committed events (never rolled back, below the end time).
    pub committed: u64,
    /// Processed events, counting re-executions.
    pub processed: u64,
    /// Events undone by rollbacks.
    pub rolled_back: u64,
    /// Rollback episodes.
    pub rollbacks: u64,
    pub stragglers: u64,
    pub antis_sent: u64,
    /// Acknowledgement traffic (Samadi's GVT only; zero otherwise).
    pub acks_sent: u64,
    pub annihilated: u64,
    /// committed / (committed + rolled back) — the paper's efficiency.
    pub efficiency: f64,

    /// Simulated wall-clock duration of the run (seconds).
    pub sim_seconds: f64,
    /// Committed events per simulated second over the whole run — the
    /// paper's y-axis.
    pub committed_rate: f64,
    /// Committed events per simulated second between 15% and 85% of GVT
    /// progress — excludes warm-up and the termination tail, which at
    /// short horizons would otherwise dominate. Falls back to
    /// `committed_rate` when the run had too few rounds to window.
    pub steady_rate: f64,
    /// Host wall-clock seconds the run took under the scheduler that
    /// produced it (set by the run drivers; 0.0 when not measured). This
    /// is real time on the machine running the simulation, not simulated
    /// cluster time — the quantity the bench trajectory tracks.
    pub host_seconds: f64,

    pub gvt_rounds: u64,
    /// GVT rounds completed inside the steady-state measurement window.
    pub window_rounds: u64,
    /// Mean per-worker wall time attributed to the GVT function (seconds).
    pub gvt_time_mean: f64,
    /// Average over rounds of the std-dev of worker LVTs (the paper's
    /// disparity metric).
    pub lvt_disparity: f64,
    /// Average over rounds of the virtual-time-horizon width (max − min
    /// finite worker LVT, the Kolakowska–Novotny statistic).
    pub horizon_width: f64,
    /// Mean per-worker wall time spent blocked inside GVT barriers
    /// (nanoseconds; zero for fully asynchronous algorithms).
    pub barrier_wait_ns: f64,
    /// Deepest rollback cascade any worker observed (rollback episodes
    /// triggered within one local anti-message drain).
    pub rollback_cascade: u64,
    /// CA-GVT: how many rounds ran synchronously / asynchronously.
    pub sync_rounds: u64,
    pub async_rounds: u64,

    pub sent_local: u64,
    pub sent_regional: u64,
    pub sent_remote: u64,
    pub mpi: MpiCounters,

    /// Final published GVT.
    pub final_gvt: f64,
    /// XOR fingerprint of final LP states (equivalence testing).
    pub state_fingerprint: u64,
    /// Request-cause counters (interval vs stalled-progress).
    pub requests_interval: u64,
    pub requests_idle: u64,
    pub throttled_steps: u64,
    /// Scheduler bookkeeping.
    pub sched_steps: u64,
    pub sched_idle_steps: u64,
    /// False if the scheduler hit a safety valve before completion.
    pub completed: bool,

    /// Fault-injection activity (all zero on a clean run).
    pub faults: cagvt_base::FaultStats,

    /// Health alerts raised by a `HealthMonitor` over the run's epoch
    /// stream (empty when no monitor was attached or nothing fired).
    /// Rendered as a `health:` section by `Display` and counted in the
    /// `health_alerts` CSV column.
    pub health: Vec<String>,
}

impl RunReport {
    /// Fold the deposited per-actor counters into a report.
    pub fn assemble<M: Model>(
        algorithm: &str,
        shared: &Arc<EngineShared<M>>,
        sched: VirtualRunStats,
    ) -> RunReport {
        let stats = &shared.stats;
        let mut w = WorkerCounters::default();
        for c in stats.worker_deposits.lock().iter() {
            w.merge(c);
        }
        let mut mpi = MpiCounters::default();
        for c in stats.mpi_deposits.lock().iter() {
            mpi.merge(c);
        }
        let (sync_rounds, async_rounds) = {
            let trace = stats.gvt_trace.lock();
            let sync = trace.iter().filter(|r| r.synchronous).count() as u64;
            (sync, trace.len() as u64 - sync)
        };
        let total_workers = shared.cfg.spec.total_workers().max(1) as f64;
        let sim_seconds = sched.final_time.as_secs_f64();
        let committed = w.committed;
        let end = shared.cfg.end_time;
        let (steady_rate, window_rounds) =
            steady_window(&stats.progress.lock(), end, committed, sim_seconds);
        let efficiency = efficiency_of(committed, w.rolled_back);
        RunReport {
            algorithm: algorithm.to_string(),
            nodes: shared.cfg.spec.nodes,
            workers_per_node: shared.cfg.spec.workers_per_node,
            mpi_mode: shared.cfg.spec.mpi_mode.label(),
            committed,
            processed: w.processed,
            rolled_back: w.rolled_back,
            rollbacks: w.rollbacks,
            stragglers: w.stragglers,
            antis_sent: w.antis_sent,
            acks_sent: w.acks_sent,
            annihilated: w.annihilated,
            efficiency,
            sim_seconds,
            committed_rate: safe_rate(committed as f64, sim_seconds),
            steady_rate,
            host_seconds: 0.0,
            gvt_rounds: shared.gvt_core.published_round(),
            window_rounds,
            gvt_time_mean: w.gvt_time.as_secs_f64() / total_workers,
            lvt_disparity: stats.disparity.lock().mean(),
            horizon_width: stats.horizon_width.lock().mean(),
            barrier_wait_ns: w.barrier_wait.0 as f64 / total_workers,
            rollback_cascade: w.max_cascade,
            sync_rounds,
            async_rounds,
            sent_local: w.sent_local,
            sent_regional: w.sent_regional,
            sent_remote: w.sent_remote,
            mpi,
            final_gvt: shared.gvt_core.published_gvt().as_f64(),
            state_fingerprint: stats.state_fp.load(Ordering::Acquire),
            requests_interval: w.requests_interval,
            requests_idle: w.requests_idle,
            throttled_steps: w.throttled,
            sched_steps: sched.steps,
            sched_idle_steps: sched.idle_steps,
            completed: sched.completed,
            faults: shared.faults.as_ref().map(|f| f.stats()).unwrap_or_default(),
            health: Vec::new(),
        }
    }

    /// CSV header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "algorithm,nodes,workers,mpi_mode,committed,processed,rolled_back,rollbacks,\
         efficiency,sim_seconds,committed_rate,gvt_rounds,gvt_time_mean,lvt_disparity,\
         sync_rounds,async_rounds,sent_regional,sent_remote,final_gvt,completed,\
         dropped_msgs,retransmits,straggled_steps,stalled_pumps,\
         horizon_width,barrier_wait_ns,rollback_cascade,health_alerts"
    }

    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{:.4},{:.6},{:.1},{},{:.6},{:.4},{},{},{},{},{:.3},{},{},{},{},{},{:.4},{:.0},{},{}",
            self.algorithm,
            self.nodes,
            self.workers_per_node,
            self.mpi_mode,
            self.committed,
            self.processed,
            self.rolled_back,
            self.rollbacks,
            self.efficiency,
            self.sim_seconds,
            self.committed_rate,
            self.gvt_rounds,
            self.gvt_time_mean,
            self.lvt_disparity,
            self.sync_rounds,
            self.async_rounds,
            self.sent_regional,
            self.sent_remote,
            self.final_gvt,
            self.completed,
            self.faults.dropped_msgs,
            self.faults.retransmits,
            self.faults.straggled_steps,
            self.faults.stalled_pumps,
            self.horizon_width,
            self.barrier_wait_ns,
            self.rollback_cascade,
            self.health.len(),
        )
    }

    /// Sanity invariant: every processed event was either committed or
    /// rolled back, and the run finished past its end time.
    pub fn check_conservation(&self, end_time: VirtualTime) {
        assert!(self.completed, "run hit a scheduler safety valve");
        assert_eq!(
            self.processed,
            self.committed + self.rolled_back,
            "processed events must be committed or rolled back"
        );
        assert!(
            self.final_gvt >= end_time.as_f64(),
            "final GVT {} below end time {end_time}",
            self.final_gvt
        );
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{} | {} nodes x {} workers | mpi={}]",
            self.algorithm, self.nodes, self.workers_per_node, self.mpi_mode
        )?;
        writeln!(
            f,
            "  committed {} / processed {} (efficiency {:.2}%)",
            self.committed,
            self.processed,
            self.efficiency * 100.0
        )?;
        writeln!(
            f,
            "  committed rate {:.0} ev/s (steady {:.0}) over {:.4} simulated s",
            self.committed_rate, self.steady_rate, self.sim_seconds
        )?;
        writeln!(
            f,
            "  rollbacks {} ({} events, {} stragglers, {} antis, {} acks)",
            self.rollbacks, self.rolled_back, self.stragglers, self.antis_sent, self.acks_sent
        )?;
        writeln!(
            f,
            "  gvt rounds {} (sync {} / async {}), mean gvt time {:.4}s, disparity {:.4}",
            self.gvt_rounds,
            self.sync_rounds,
            self.async_rounds,
            self.gvt_time_mean,
            self.lvt_disparity
        )?;
        writeln!(
            f,
            "  horizon width {:.4}, barrier wait {:.0} ns/worker, deepest cascade {}",
            self.horizon_width, self.barrier_wait_ns, self.rollback_cascade
        )?;
        write!(
            f,
            "  msgs: local {}, regional {}, remote {} (mpi moved {}/{})",
            self.sent_local, self.sent_regional, self.sent_remote, self.mpi.sent, self.mpi.received
        )?;
        if !self.health.is_empty() {
            write!(f, "\n  health:")?;
            for alert in &self.health {
                write!(f, "\n    ! {alert}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built report that satisfies every conservation invariant.
    fn sound_report() -> RunReport {
        RunReport {
            algorithm: "test".to_string(),
            nodes: 2,
            workers_per_node: 2,
            mpi_mode: "dedicated",
            committed: 90,
            processed: 100,
            rolled_back: 10,
            rollbacks: 3,
            stragglers: 2,
            antis_sent: 1,
            acks_sent: 0,
            annihilated: 1,
            efficiency: 0.9,
            sim_seconds: 1.0,
            committed_rate: 90.0,
            steady_rate: 90.0,
            host_seconds: 0.5,
            gvt_rounds: 5,
            window_rounds: 3,
            gvt_time_mean: 0.01,
            lvt_disparity: 0.1,
            horizon_width: 0.5,
            barrier_wait_ns: 1_000.0,
            rollback_cascade: 2,
            sync_rounds: 0,
            async_rounds: 5,
            sent_local: 50,
            sent_regional: 30,
            sent_remote: 20,
            mpi: MpiCounters::default(),
            final_gvt: 10.0,
            state_fingerprint: 0xDEAD_BEEF,
            requests_interval: 4,
            requests_idle: 1,
            throttled_steps: 0,
            sched_steps: 1000,
            sched_idle_steps: 10,
            completed: true,
            faults: cagvt_base::FaultStats::default(),
            health: Vec::new(),
        }
    }

    #[test]
    fn conservation_accepts_a_sound_report() {
        sound_report().check_conservation(VirtualTime::new(10.0));
        // Finishing exactly at the end time is also acceptable: the
        // invariant is `final_gvt >= end`, not strictly greater.
        let mut r = sound_report();
        r.final_gvt = 10.0;
        r.check_conservation(VirtualTime::new(10.0));
    }

    #[test]
    #[should_panic(expected = "committed or rolled back")]
    fn conservation_rejects_leaked_events() {
        let mut r = sound_report();
        // One processed event is neither committed nor rolled back.
        r.processed += 1;
        r.check_conservation(VirtualTime::new(10.0));
    }

    #[test]
    #[should_panic(expected = "safety valve")]
    fn conservation_rejects_incomplete_runs() {
        let mut r = sound_report();
        r.completed = false;
        r.check_conservation(VirtualTime::new(10.0));
    }

    #[test]
    #[should_panic(expected = "below end time")]
    fn conservation_rejects_early_termination() {
        let mut r = sound_report();
        r.final_gvt = 9.5;
        r.check_conservation(VirtualTime::new(10.0));
    }

    #[test]
    fn csv_row_matches_header_field_count() {
        let fields = RunReport::csv_header().split(',').count();
        let row = sound_report().csv_row();
        assert_eq!(row.split(',').count(), fields);
    }

    fn sample(gvt: f64, wall_ns: u64, committed: u64) -> ProgressSample {
        ProgressSample { gvt, wall: cagvt_base::WallNs(wall_ns), committed }
    }

    #[test]
    fn steady_window_empty_samples_fall_back_to_whole_run_rate() {
        // No progress samples at all (a run that never completed a GVT
        // round): zero window rounds, rate = committed / sim_seconds.
        let (rate, rounds) = steady_window(&[], 10.0, 100, 2.0);
        assert_eq!(rounds, 0);
        assert_eq!(rate, 50.0);
        // ...and the degenerate zero-makespan corner stays finite.
        let (rate, _) = steady_window(&[], 10.0, 0, 0.0);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn steady_window_short_runs_fall_back_to_whole_run_rate() {
        // All samples inside the warm-up region (gvt < lo-frac * end): the
        // window span guard rejects the slope.
        let end = 10.0;
        let samples = [sample(0.5, 1_000, 5), sample(1.0, 2_000, 10)];
        let (rate, rounds) = steady_window(&samples, end, 100, 4.0);
        assert_eq!(rounds, 0, "no sample reached the window");
        assert_eq!(rate, 25.0, "whole-run fallback");
        // A single in-window sample can't form a slope either (lo == hi).
        let samples = [sample(5.0, 1_000, 50)];
        let (rate, rounds) = steady_window(&samples, end, 100, 4.0);
        assert_eq!(rounds, 1);
        assert_eq!(rate, 25.0, "single sample forces the fallback");
    }

    #[test]
    fn steady_window_measures_the_interior_slope() {
        let end = 10.0;
        // Warm-up, two interior samples 1 simulated second apart with 60
        // committed events between them, and a termination-tail sample.
        let samples = [
            sample(0.5, 500_000_000, 5),
            sample(2.0, 1_000_000_000, 20),
            sample(8.0, 2_000_000_000, 80),
            sample(10.5, 3_000_000_000, 100),
        ];
        let (rate, rounds) = steady_window(&samples, end, 100, 3.0);
        // Window [1.5, 8.5): the gvt=2 and gvt=8 samples.
        assert_eq!(rounds, 2);
        // Slope from gvt=2 (the first sample at/after lo) to gvt=8 (the
        // last sample below end): 60 events over 1 s.
        assert_eq!(rate, 60.0);
    }

    #[test]
    fn steady_window_rejects_slopes_covering_too_little_of_the_run() {
        let end = 10.0;
        // Both in-window samples exist but the committed share between
        // them is below committed / STEADY_WINDOW_MIN_COMMITTED_DIV.
        let samples = [sample(2.0, 1_000_000_000, 2), sample(8.0, 2_000_000_000, 10)];
        let (rate, _) = steady_window(&samples, end, 1000, 4.0);
        assert_eq!(rate, 250.0, "sparse window falls back to whole-run rate");
    }

    #[test]
    fn steady_window_constants_are_a_sane_window() {
        const {
            assert!(STEADY_WINDOW_LO_FRAC < STEADY_WINDOW_HI_FRAC);
            assert!(STEADY_WINDOW_HI_FRAC < 1.0);
            assert!(STEADY_WINDOW_MIN_SPAN_FRAC < STEADY_WINDOW_HI_FRAC - STEADY_WINDOW_LO_FRAC);
            assert!(STEADY_WINDOW_MIN_COMMITTED_DIV > 0);
        }
    }

    #[test]
    fn health_alerts_render_and_count() {
        let mut r = sound_report();
        assert!(!format!("{r}").contains("health:"), "quiet run shows no health section");
        r.health.push("straggler: worker 3".to_string());
        r.health.push("efficiency-collapse".to_string());
        let shown = format!("{r}");
        assert!(shown.contains("health:") && shown.contains("! straggler: worker 3"), "{shown}");
        assert!(r.csv_row().ends_with(",2"), "health_alerts column counts alerts");
    }

    #[test]
    fn safe_rate_guards_zero_denominators() {
        assert_eq!(safe_rate(90.0, 2.0), 45.0);
        assert_eq!(safe_rate(90.0, 0.0), 0.0, "zero-makespan run");
        assert_eq!(safe_rate(0.0, 0.0), 0.0, "zero-committed, zero-makespan run");
        assert_eq!(safe_rate(1.0, -1.0), 0.0, "negative denominators are degenerate too");
    }

    #[test]
    fn efficiency_of_guards_empty_runs() {
        assert_eq!(efficiency_of(90, 10), 0.9);
        assert_eq!(efficiency_of(0, 0), 1.0, "empty run is perfectly efficient");
        assert_eq!(efficiency_of(0, 10), 0.0, "all-rolled-back run");
    }

    /// A run that committed nothing in zero simulated time (the degenerate
    /// corner a mis-scaled config can produce) must never leak NaN into a
    /// figure CSV through any rate column.
    #[test]
    fn zero_makespan_report_has_no_nan_columns() {
        let mut r = sound_report();
        r.committed = 0;
        r.processed = 0;
        r.rolled_back = 0;
        r.sim_seconds = 0.0;
        r.committed_rate = safe_rate(r.committed as f64, r.sim_seconds);
        r.steady_rate = r.committed_rate;
        r.efficiency = efficiency_of(r.committed, r.rolled_back);
        assert_eq!(r.committed_rate, 0.0);
        assert_eq!(r.steady_rate, 0.0);
        assert_eq!(r.efficiency, 1.0);
        let row = r.csv_row();
        assert!(!row.contains("NaN") && !row.contains("inf"), "degenerate row leaked: {row}");
        for field in row.split(',') {
            if let Ok(v) = field.parse::<f64>() {
                assert!(v.is_finite(), "non-finite field {field:?} in {row}");
            }
        }
    }

    /// Zero committed events over a positive makespan: rates are zero,
    /// efficiency reflects the rolled-back share, nothing is NaN.
    #[test]
    fn zero_committed_report_has_finite_rates() {
        let mut r = sound_report();
        r.committed = 0;
        r.processed = 10;
        r.rolled_back = 10;
        r.committed_rate = safe_rate(r.committed as f64, r.sim_seconds);
        r.steady_rate = r.committed_rate;
        r.efficiency = efficiency_of(r.committed, r.rolled_back);
        assert_eq!(r.committed_rate, 0.0);
        assert_eq!(r.efficiency, 0.0);
        let row = r.csv_row();
        assert!(!row.contains("NaN"), "degenerate row leaked: {row}");
    }
}
