//! Minimal PHOLD-style model for engine and algorithm tests.
//!
//! Public (not `cfg(test)`) because downstream crates' test suites reuse it
//! to exercise the engine against the sequential reference without pulling
//! in the full model zoo from `cagvt-models`.

use cagvt_base::ids::LpId;
use cagvt_base::rng::Pcg32;

use crate::model::{Emitter, EventCtx, Model};

/// Each event re-sends one event to a random LP after `lookahead + Exp(1)`;
/// a configurable fraction of destinations is drawn cluster-wide (remote
/// pressure), the rest within a window near the sender (regional/local
/// pressure). State tracks an order-sensitive checksum, so any processing
/// divergence from the reference changes the fingerprint.
#[derive(Clone, Copy, Debug)]
pub struct MiniHold {
    /// Minimum timestamp increment (keeps virtual time advancing).
    pub lookahead: f64,
    /// Probability that a destination is drawn uniformly cluster-wide.
    pub far_fraction: f64,
    /// Destination window (in LP ids) for near sends.
    pub near_window: u32,
    /// EPG work units reported per event.
    pub epg: u64,
}

impl Default for MiniHold {
    fn default() -> Self {
        MiniHold { lookahead: 0.1, far_fraction: 0.2, near_window: 4, epg: 1_000 }
    }
}

impl Model for MiniHold {
    type State = MiniHoldState;
    type Payload = u32;

    fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) -> MiniHoldState {
        MiniHoldState { count: 0, checksum: 0 }
    }

    fn initial_events(
        &self,
        lp: LpId,
        _state: &mut MiniHoldState,
        rng: &mut Pcg32,
        emit: &mut Emitter<u32>,
    ) {
        emit.emit(lp, self.lookahead + rng.next_exp(1.0), lp.0);
    }

    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut MiniHoldState,
        payload: &u32,
        rng: &mut Pcg32,
        emit: &mut Emitter<u32>,
    ) -> u64 {
        state.count += 1;
        state.checksum = state
            .checksum
            .wrapping_mul(0x100000001B3)
            .wrapping_add(*payload as u64)
            .wrapping_add(ctx.now.as_f64().to_bits());
        let dst = if rng.next_f64() < self.far_fraction {
            LpId(rng.next_bounded(ctx.total_lps))
        } else {
            let window = self.near_window.min(ctx.total_lps);
            let base = ctx.self_lp.0;
            LpId((base + rng.next_bounded(window)) % ctx.total_lps)
        };
        emit.emit(dst, self.lookahead + rng.next_exp(1.0), payload.wrapping_add(1));
        self.epg
    }

    fn state_fingerprint(&self, state: &MiniHoldState) -> u64 {
        state.count.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ state.checksum
    }
}

/// State of a [`MiniHold`] LP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MiniHoldState {
    pub count: u64,
    pub checksum: u64,
}
