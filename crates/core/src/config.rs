//! Run configuration.

use cagvt_base::time::VirtualTime;
use cagvt_net::{ClusterSpec, CostModel};

/// Everything that defines one simulation run apart from the model and the
/// GVT algorithm.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    pub spec: ClusterSpec,
    pub cost: CostModel,
    /// LPs statically assigned to each worker (the paper uses 128 per
    /// hardware thread).
    pub lps_per_worker: u32,
    /// Virtual end time; events at or beyond are never processed.
    pub end_time: f64,
    /// GVT interval, counted in events processed per worker since the last
    /// round (as in ROSS and the paper).
    pub gvt_interval: u64,
    /// Optimism throttle: a worker stops processing (but keeps
    /// communicating and participating in GVT) once it holds this many
    /// uncommitted processed events. Plays the role of ROSS's bounded
    /// event-memory pool.
    pub max_outstanding: usize,
    /// Master seed; per-LP streams derive from it.
    pub seed: u64,
    /// Max messages a worker drains from its queue per step.
    pub recv_batch: usize,
    /// Max messages an MPI pump moves per direction per step.
    pub mpi_batch: usize,
    /// Minimum wall time between round requests from a worker that cannot
    /// make progress (throttled or out of sub-horizon events). Unpaced
    /// idle requests convoy the cluster at the end of a run: each
    /// synchronous round blocks the still-busy workers, which staggers
    /// completion further and triggers yet more rounds.
    pub idle_request_backoff: cagvt_base::WallNs,
    /// Use state snapshots even for models that implement reverse
    /// computation (ablation knob).
    pub force_snapshot: bool,
    /// Use periodic state saving with this snapshot period instead of the
    /// automatic per-event strategy (works with every model; overrides
    /// `force_snapshot`).
    pub periodic_snapshot: Option<u32>,
}

impl SimConfig {
    /// A small, fast configuration for tests and examples.
    pub fn small(nodes: u16, workers: u16) -> Self {
        SimConfig {
            spec: ClusterSpec::new(nodes, workers, cagvt_net::MpiMode::Dedicated),
            cost: CostModel::knl_cluster(),
            lps_per_worker: 8,
            end_time: 60.0,
            gvt_interval: 25,
            max_outstanding: 512,
            seed: 0xC0FFEE,
            recv_batch: 32,
            mpi_batch: 16,
            idle_request_backoff: cagvt_base::WallNs(400_000),
            force_snapshot: false,
            periodic_snapshot: None,
        }
    }

    /// The paper's configuration shape: 60 workers and 128 LPs per worker
    /// per node (scaled runs change `spec.nodes`).
    pub fn paper(nodes: u16) -> Self {
        SimConfig {
            spec: ClusterSpec::paper(nodes),
            cost: CostModel::knl_cluster(),
            lps_per_worker: 128,
            end_time: 200.0,
            gvt_interval: 25,
            max_outstanding: 512,
            seed: 0x1CC_2019,
            recv_batch: 32,
            mpi_batch: 16,
            idle_request_backoff: cagvt_base::WallNs(400_000),
            force_snapshot: false,
            periodic_snapshot: None,
        }
    }

    /// The rollback strategy this configuration selects for `model`.
    pub fn rollback_strategy(&self, model_supports_reverse: bool) -> crate::lp::RollbackStrategy {
        use crate::lp::RollbackStrategy::*;
        match self.periodic_snapshot {
            Some(k) => PeriodicSnapshot(k),
            None if model_supports_reverse && !self.force_snapshot => Reverse,
            None => Snapshot,
        }
    }

    #[inline]
    pub fn total_lps(&self) -> u32 {
        self.spec.total_workers() * self.lps_per_worker
    }

    #[inline]
    pub fn lps_per_node(&self) -> u32 {
        self.spec.workers_per_node as u32 * self.lps_per_worker
    }

    #[inline]
    pub fn end_vt(&self) -> VirtualTime {
        VirtualTime::new(self.end_time)
    }

    /// Validate internal consistency; called by the builder.
    pub fn validate(&self) {
        assert!(self.lps_per_worker >= 1, "need at least one LP per worker");
        assert!(self.end_time > 0.0, "end time must be positive");
        assert!(self.gvt_interval >= 1, "GVT interval must be >= 1");
        assert!(
            self.max_outstanding >= self.gvt_interval as usize,
            "throttle below the GVT interval would deadlock rounds"
        );
        assert!(self.recv_batch >= 1 && self.mpi_batch >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply_out() {
        let cfg = SimConfig::paper(8);
        assert_eq!(cfg.total_lps(), 8 * 60 * 128);
        assert_eq!(cfg.lps_per_node(), 60 * 128);
        assert_eq!(cfg.end_vt(), VirtualTime::new(200.0));
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn throttle_below_interval_is_rejected() {
        let mut cfg = SimConfig::small(1, 2);
        cfg.max_outstanding = 10;
        cfg.gvt_interval = 50;
        cfg.validate();
    }
}
