//! Sequential reference simulator.
//!
//! Processes the global event stream in the engine's total order
//! `(recv_time, sender, sequence)` with no optimism, no rollback and no
//! communication — the ground truth the optimistic engine must agree with.
//! It reuses [`LpRuntime`] (with immediate fossil collection), so state
//! initialization, RNG streams and sequence-number assignment are
//! *identical by construction* to the parallel engine's.

use cagvt_base::ids::{EventId, LpId};
use cagvt_base::time::VirtualTime;
use std::sync::Arc;

use crate::config::SimConfig;
use crate::event::Event;
use crate::lp::{LpRuntime, SentRecord};
use crate::model::{Emitter, EventCtx, Model};
use crate::queue::PendingSet;

/// Result of a sequential run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeqOutcome {
    /// Events processed (all with `recv_time < end_time`).
    pub processed: u64,
    /// XOR-combined per-LP state fingerprint (see [`fingerprint_mix`]).
    pub fingerprint: u64,
}

/// Scramble one LP's state fingerprint into a position-independent
/// contribution; the total is the XOR over all LPs, so any partitioning of
/// LPs across workers folds to the same value.
pub fn fingerprint_mix(lp: LpId, fp: u64) -> u64 {
    let mut z = (lp.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ fp;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The reference simulator.
pub struct SequentialSim<M: Model> {
    model: Arc<M>,
    cfg: SimConfig,
}

impl<M: Model> SequentialSim<M> {
    /// The cluster topology in `cfg` only determines the LP count and seed
    /// derivation; no cluster is simulated.
    pub fn new(model: Arc<M>, cfg: SimConfig) -> Self {
        cfg.validate();
        SequentialSim { model, cfg }
    }

    /// Run to the configured end time.
    pub fn run(&self) -> SeqOutcome {
        let total = self.cfg.total_lps();
        let end = self.cfg.end_vt();
        let strategy = self.cfg.rollback_strategy(self.model.supports_reverse());
        let mut lps: Vec<LpRuntime<M>> = (0..total)
            .map(|i| {
                LpRuntime::with_strategy(LpId(i), &*self.model, self.cfg.seed, strategy, end, total)
            })
            .collect();

        let mut pending: PendingSet<M::Payload> = PendingSet::new();
        let mut emit: Emitter<M::Payload> = Emitter::new();

        // Time-zero seeding, identical to the cluster builder.
        for i in 0..total {
            let lp = &mut lps[i as usize];
            lp.seed_initial(&*self.model, &mut emit);
            let seeds: Vec<(LpId, f64, M::Payload)> = emit.take().collect();
            for (dst, delay, payload) in seeds {
                let id = EventId::new(LpId(i), lps[i as usize].next_seq());
                pending.insert(Event { recv_time: VirtualTime::ZERO + delay, dst, id, payload });
            }
        }

        let mut processed = 0u64;
        while let Some(key) = pending.min_key() {
            if key.t >= end {
                break;
            }
            let event = pending.pop_min().expect("min_key was Some");
            let idx = event.dst.index();
            let ctx = EventCtx {
                now: event.recv_time,
                self_lp: event.dst,
                end_time: end,
                total_lps: total,
            };
            let base = event.recv_time;
            let _epg = lps[idx].process(&*self.model, &ctx, event, &mut emit);
            let sends: Vec<(LpId, f64, M::Payload)> = emit.take().collect();
            let mut records = Vec::with_capacity(sends.len());
            for (dst, delay, payload) in sends {
                let lp_id = lps[idx].id;
                let id = EventId::new(lp_id, lps[idx].next_seq());
                let recv_time = base + delay;
                records.push(SentRecord { dst, recv_time, id });
                pending.insert(Event { recv_time, dst, id, payload });
            }
            lps[idx].record_sends(records);
            // No rollback can ever happen: commit immediately.
            lps[idx].fossil_collect_final(VirtualTime::INFINITY);
            processed += 1;
        }

        let mut fingerprint = 0u64;
        for lp in &lps {
            fingerprint ^= fingerprint_mix(lp.id, self.model.state_fingerprint(&lp.state));
        }
        SeqOutcome { processed, fingerprint }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::rng::Pcg32;

    /// Tiny PHOLD-like model: each event re-sends to a random LP after an
    /// exponential delay; state counts received events and sums a hash.
    struct MiniHold;

    impl Model for MiniHold {
        type State = (u64, u64); // (count, checksum)
        type Payload = u32;

        fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) -> Self::State {
            (0, 0)
        }

        fn initial_events(
            &self,
            lp: LpId,
            _state: &mut Self::State,
            rng: &mut Pcg32,
            emit: &mut Emitter<u32>,
        ) {
            emit.emit(lp, 0.01 + rng.next_exp(1.0), 1);
        }

        fn handle(
            &self,
            ctx: &EventCtx,
            state: &mut Self::State,
            payload: &u32,
            rng: &mut Pcg32,
            emit: &mut Emitter<u32>,
        ) -> u64 {
            state.0 += 1;
            state.1 = state.1.wrapping_mul(31).wrapping_add(*payload as u64);
            let dst = LpId(rng.next_bounded(ctx.total_lps));
            emit.emit(dst, 0.01 + rng.next_exp(1.0), payload.wrapping_add(1));
            100
        }

        fn state_fingerprint(&self, state: &Self::State) -> u64 {
            state.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ state.1
        }
    }

    #[test]
    fn sequential_run_is_deterministic() {
        let cfg = SimConfig::small(1, 2);
        let a = SequentialSim::new(Arc::new(MiniHold), cfg).run();
        let b = SequentialSim::new(Arc::new(MiniHold), cfg).run();
        assert_eq!(a, b);
        assert!(a.processed > 0, "something must happen before t=60");
    }

    #[test]
    fn seed_changes_the_trajectory() {
        let cfg1 = SimConfig::small(1, 2);
        let mut cfg2 = cfg1;
        cfg2.seed ^= 0xDEAD_BEEF;
        let a = SequentialSim::new(Arc::new(MiniHold), cfg1).run();
        let b = SequentialSim::new(Arc::new(MiniHold), cfg2).run();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn event_population_is_conserved() {
        // Each processed event emits exactly one event, and each LP starts
        // with one: the number processed before a horizon scales with the
        // horizon, and the simulator never runs dry.
        let mut cfg = SimConfig::small(1, 1);
        cfg.lps_per_worker = 4;
        cfg.end_time = 30.0;
        let short = SequentialSim::new(Arc::new(MiniHold), cfg).run();
        cfg.end_time = 60.0;
        let long = SequentialSim::new(Arc::new(MiniHold), cfg).run();
        assert!(long.processed > short.processed);
        // ~1 event per LP per unit time with mean increment ~1.01.
        let expected = 4.0 * 30.0 / 1.01;
        let ratio = short.processed as f64 / expected;
        assert!((0.5..2.0).contains(&ratio), "rate far off: {}", short.processed);
    }

    #[test]
    fn fingerprint_mix_is_lp_sensitive() {
        assert_ne!(fingerprint_mix(LpId(0), 5), fingerprint_mix(LpId(1), 5));
        assert_ne!(fingerprint_mix(LpId(0), 5), fingerprint_mix(LpId(0), 6));
    }
}
