//! Logical process runtime: optimistic processing, rollback, fossil
//! collection.
//!
//! Two rollback strategies, selected per model:
//!
//! * **State saving** (default): every processed event keeps a snapshot of
//!   the LP's `(state, rng, send_seq)` *before* the event plus the
//!   identities of the messages it sent; undoing restores the earliest
//!   snapshot.
//! * **Reverse computation** (ROSS's mechanism, for models that implement
//!   [`Model::reverse`]): only `(rng, send_seq)` — 24 bytes — are stored
//!   per event; undoing calls the model's inverse handler in exact LIFO
//!   order.
//!
//! In both strategies, restoring `send_seq` (not just state and RNG) makes
//! committed re-executions assign identical event ids, which keeps the
//! optimistic run bit-identical to the sequential reference even under
//! rollbacks.

use cagvt_base::ids::{EventId, LpId};
use cagvt_base::rng::Pcg32;
use cagvt_base::time::VirtualTime;
use std::collections::{HashSet, VecDeque};

use crate::event::{AntiMsg, Event, EventKey};
use crate::model::{Emitter, EventCtx, Model};

/// Record of one optimistic send, kept for anti-message generation.
#[derive(Clone, Copy, Debug)]
pub struct SentRecord {
    pub dst: LpId,
    pub recv_time: VirtualTime,
    pub id: EventId,
}

/// How an LP undoes processed events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RollbackStrategy {
    /// Snapshot `(state, rng, seq)` before every event.
    Snapshot,
    /// Reverse computation (requires [`Model::reverse`]): store 24 bytes
    /// per event, undo by running the model's inverse handler in LIFO
    /// order.
    Reverse,
    /// Periodic state saving: snapshot every `k`-th event, store nothing
    /// for the rest; roll back by restoring the nearest snapshot and
    /// *coasting forward* — re-executing the surviving events with their
    /// emissions suppressed (they were already sent and stay valid).
    PeriodicSnapshot(u32),
}

/// What one history entry remembers about the pre-event LP.
enum Prior<M: Model> {
    /// Full state snapshot.
    Snapshot { state: M::State, rng: Pcg32, seq: u64 },
    /// Reverse computation: the model's inverse handler reconstructs the
    /// state; only the generator and sequence positions are stored.
    Reverse { rng: Pcg32, seq: u64 },
    /// Between periodic snapshots: reconstructed by coast-forward replay.
    Coast,
}

/// One entry of the processed-event history.
pub struct ProcessedEvent<M: Model> {
    pub event: Event<M::Payload>,
    prior: Prior<M>,
    pub sent: Vec<SentRecord>,
}

/// Result of a rollback: what the worker must do next.
pub struct Rollback<P> {
    /// Undone events to put back into the pending set (already excludes a
    /// cancelled event, if the rollback was anti-message induced).
    pub reenqueue: Vec<Event<P>>,
    /// Anti-messages for every optimistic send of the undone events.
    pub antis: Vec<AntiMsg>,
    /// Number of events undone (including a cancelled one).
    pub undone: u64,
}

/// A logical process under optimistic execution.
pub struct LpRuntime<M: Model> {
    pub id: LpId,
    pub state: M::State,
    pub rng: Pcg32,
    send_seq: u64,
    /// Key of the most recent processed (uncommitted or committed) event;
    /// `EventKey::MIN` before any processing. The LP's LVT is `last_key.t`.
    last_key: EventKey,
    processed: VecDeque<ProcessedEvent<M>>,
    processed_ids: HashSet<EventId>,
    /// Absolute index (see `hist_base`) of every history entry whose
    /// `prior` is a full snapshot, ascending. Maintained on every history
    /// push/pop so periodic-snapshot fossil collection finds the newest
    /// snapshot below GVT by bisection instead of scanning the deque.
    snap_idx: VecDeque<u64>,
    /// Absolute index of `processed[0]`: the count of entries ever popped
    /// from the front. Keeps `snap_idx` valid across fossil collection
    /// without renumbering.
    hist_base: u64,
    strategy: RollbackStrategy,
    /// Events processed since the last periodic snapshot.
    since_snapshot: u32,
    /// Run constants needed to rebuild an [`EventCtx`] for reverse and
    /// coast-forward calls.
    end_time: VirtualTime,
    total_lps: u32,
}

impl<M: Model> LpRuntime<M> {
    /// Snapshot-strategy LP (models that don't implement `reverse`, and
    /// unit tests).
    pub fn new(id: LpId, model: &M, seed: u64) -> Self {
        Self::with_strategy(id, model, seed, RollbackStrategy::Snapshot, VirtualTime::INFINITY, 0)
    }

    /// LP with an explicit rollback strategy and the run constants the
    /// reverse/coast handlers see in their context.
    pub fn with_strategy(
        id: LpId,
        model: &M,
        seed: u64,
        strategy: RollbackStrategy,
        end_time: VirtualTime,
        total_lps: u32,
    ) -> Self {
        if let RollbackStrategy::PeriodicSnapshot(k) = strategy {
            assert!(k >= 1, "snapshot period must be at least 1");
        }
        let mut rng = Pcg32::new(seed, id.0 as u64);
        let state = model.init_state(id, &mut rng);
        LpRuntime {
            id,
            state,
            rng,
            send_seq: 0,
            last_key: EventKey::MIN,
            processed: VecDeque::new(),
            processed_ids: HashSet::new(),
            snap_idx: VecDeque::new(),
            hist_base: 0,
            strategy,
            since_snapshot: 0,
            end_time,
            total_lps,
        }
    }

    /// This LP's rollback strategy.
    #[inline]
    pub fn strategy(&self) -> RollbackStrategy {
        self.strategy
    }

    fn ctx_for(&self, event: &Event<M::Payload>) -> EventCtx {
        EventCtx {
            now: event.recv_time,
            self_lp: self.id,
            end_time: self.end_time,
            total_lps: self.total_lps,
        }
    }

    /// Append a history entry, indexing it if it carries a snapshot.
    fn hist_push_back(&mut self, entry: ProcessedEvent<M>) {
        if matches!(entry.prior, Prior::Snapshot { .. }) {
            self.snap_idx.push_back(self.hist_base + self.processed.len() as u64);
        }
        self.processed.push_back(entry);
    }

    /// Pop the newest history entry (rollback), unindexing a snapshot.
    fn hist_pop_back(&mut self) -> Option<ProcessedEvent<M>> {
        let entry = self.processed.pop_back()?;
        if self.snap_idx.back() == Some(&(self.hist_base + self.processed.len() as u64)) {
            self.snap_idx.pop_back();
        }
        Some(entry)
    }

    /// Pop the oldest history entry (fossil collection).
    fn hist_pop_front(&mut self) -> Option<ProcessedEvent<M>> {
        let entry = self.processed.pop_front()?;
        if self.snap_idx.front() == Some(&self.hist_base) {
            self.snap_idx.pop_front();
        }
        self.hist_base += 1;
        Some(entry)
    }

    /// Allocate the next send sequence number.
    #[inline]
    pub fn next_seq(&mut self) -> u64 {
        let s = self.send_seq;
        self.send_seq += 1;
        s
    }

    #[inline]
    pub fn lvt(&self) -> VirtualTime {
        self.last_key.t
    }

    #[inline]
    pub fn last_key(&self) -> EventKey {
        self.last_key
    }

    /// Uncommitted history length (the memory the optimism throttle
    /// bounds).
    #[inline]
    pub fn history_len(&self) -> usize {
        self.processed.len()
    }

    #[inline]
    pub fn has_processed(&self, id: EventId) -> bool {
        self.processed_ids.contains(&id)
    }

    /// Run the model's initial-event hook (time-zero seeding). Sends are
    /// assigned sequence numbers but not recorded in history: nothing can
    /// roll back past time zero.
    pub fn seed_initial(&mut self, model: &M, emit: &mut Emitter<M::Payload>) {
        model.initial_events(self.id, &mut self.state, &mut self.rng, emit);
    }

    /// Optimistically process `event`, which must be `>` the last processed
    /// key (the worker rolls back first otherwise). Emitted events are left
    /// in `emit` for the worker to stamp and route; their `SentRecord`s are
    /// appended by [`Self::record_sends`].
    ///
    /// Returns the model-reported EPG units.
    pub fn process(
        &mut self,
        model: &M,
        ctx: &EventCtx,
        event: Event<M::Payload>,
        emit: &mut Emitter<M::Payload>,
    ) -> u64 {
        debug_assert!(event.key() > self.last_key, "processing out of order");
        debug_assert!(emit.is_empty());
        let prior = match self.strategy {
            RollbackStrategy::Reverse => Prior::Reverse { rng: self.rng, seq: self.send_seq },
            RollbackStrategy::Snapshot => {
                Prior::Snapshot { state: self.state.clone(), rng: self.rng, seq: self.send_seq }
            }
            RollbackStrategy::PeriodicSnapshot(k) => {
                if self.since_snapshot == 0 || self.since_snapshot >= k {
                    self.since_snapshot = 1;
                    Prior::Snapshot { state: self.state.clone(), rng: self.rng, seq: self.send_seq }
                } else {
                    self.since_snapshot += 1;
                    Prior::Coast
                }
            }
        };
        let epg = model.handle(ctx, &mut self.state, &event.payload, &mut self.rng, emit);
        self.last_key = event.key();
        self.processed_ids.insert(event.id);
        self.hist_push_back(ProcessedEvent { event, prior, sent: Vec::new() });
        epg
    }

    /// Attach the sent-message records of the most recently processed
    /// event (the worker calls this after routing the emissions).
    pub fn record_sends(&mut self, sends: Vec<SentRecord>) {
        let entry = self.processed.back_mut().expect("record_sends after process");
        debug_assert!(entry.sent.is_empty());
        entry.sent = sends;
    }

    /// Roll back every processed event with key `> to_key` (straggler with
    /// key `to_key` about to be processed). All undone events are
    /// re-enqueued.
    pub fn rollback_to(&mut self, model: &M, to_key: EventKey) -> Rollback<M::Payload> {
        self.rollback_inner(model, to_key, None)
    }

    /// Roll back every processed event with key `>= cancel_key`, where
    /// `cancel_key` belongs to processed event `cancel_id` (anti-message
    /// induced). The cancelled event is discarded instead of re-enqueued.
    pub fn rollback_cancel(
        &mut self,
        model: &M,
        cancel_id: EventId,
        cancel_key: EventKey,
    ) -> Rollback<M::Payload> {
        debug_assert!(self.has_processed(cancel_id));
        self.rollback_inner(model, cancel_key, Some(cancel_id))
    }

    fn rollback_inner(
        &mut self,
        model: &M,
        to_key: EventKey,
        cancel: Option<EventId>,
    ) -> Rollback<M::Payload> {
        let mut reenqueue = Vec::new();
        let mut antis = Vec::new();
        let mut undone = 0u64;
        while let Some(back) = self.processed.back() {
            let boundary = if cancel.is_some() {
                back.event.key() >= to_key
            } else {
                back.event.key() > to_key
            };
            if !boundary {
                break;
            }
            let entry = self.hist_pop_back().expect("back() was Some");
            self.processed_ids.remove(&entry.event.id);
            undone += 1;
            for s in &entry.sent {
                antis.push(AntiMsg { recv_time: s.recv_time, dst: s.dst, id: s.id });
            }
            // Undo this event (strict LIFO): restore its snapshot, run the
            // model's inverse handler, or (periodic mode) defer to the
            // coast-forward pass below.
            match entry.prior {
                Prior::Snapshot { state, rng, seq } => {
                    self.state = state;
                    self.rng = rng;
                    self.send_seq = seq;
                }
                Prior::Reverse { rng, seq } => {
                    self.rng = rng;
                    self.send_seq = seq;
                    let ctx = self.ctx_for(&entry.event);
                    // Scratch generator at the pre-event position, so the
                    // reversal can re-derive the forward pass's draws.
                    let mut scratch = rng;
                    model.reverse(&ctx, &mut self.state, &entry.event.payload, &mut scratch);
                }
                Prior::Coast => {} // reconstructed below
            }
            if cancel != Some(entry.event.id) {
                reenqueue.push(entry.event);
            }
        }
        if undone > 0 && matches!(self.strategy, RollbackStrategy::PeriodicSnapshot(_)) {
            self.coast_forward(model);
        }
        self.last_key = self.processed.back().map(|e| e.event.key()).unwrap_or(EventKey::MIN);
        Rollback { reenqueue, antis, undone }
    }

    /// Periodic-snapshot restoration: the undone entries are already
    /// popped, but the LP state may be anywhere. Pop surviving entries
    /// back to the nearest snapshot (the oldest retained entry is always
    /// one — see [`Self::fossil_collect`]), restore it, then re-execute
    /// the popped survivors with their emissions suppressed: they were
    /// already sent and remain valid ("coasting forward").
    fn coast_forward(&mut self, model: &M) {
        let mut replay: Vec<ProcessedEvent<M>> = Vec::new();
        while let Some(e) = self.hist_pop_back() {
            let is_snapshot = matches!(e.prior, Prior::Snapshot { .. });
            replay.push(e);
            if is_snapshot {
                break;
            }
        }
        if replay.is_empty() {
            // The rollback undid the whole history; its earliest entry was
            // a snapshot (the first entry always is), so phase one already
            // restored the state directly.
            self.since_snapshot = 0;
            return;
        }
        // Restore from the snapshot entry (the last pushed).
        let snap = replay.last().expect("non-empty");
        match &snap.prior {
            Prior::Snapshot { state, rng, seq } => {
                self.state = state.clone();
                self.rng = *rng;
                self.send_seq = *seq;
            }
            _ => unreachable!("coast_forward stops at a snapshot"),
        }
        // Re-execute survivors oldest-first, dropping their emissions and
        // re-advancing the sequence counter by what they originally sent.
        let mut sink: Emitter<M::Payload> = Emitter::new();
        for e in replay.into_iter().rev() {
            let ctx = self.ctx_for(&e.event);
            let _epg =
                model.handle(&ctx, &mut self.state, &e.event.payload, &mut self.rng, &mut sink);
            sink.take().for_each(drop);
            self.send_seq += e.sent.len() as u64;
            self.hist_push_back(e);
        }
        // The snapshot cadence counter restarts from the replayed suffix.
        self.since_snapshot = 0;
        let mut n = 0;
        for e in self.processed.iter().rev() {
            n += 1;
            if matches!(e.prior, Prior::Snapshot { .. }) {
                self.since_snapshot = n;
                break;
            }
        }
    }

    /// Free history below `gvt`; returns the number of events committed.
    ///
    /// Under [`RollbackStrategy::PeriodicSnapshot`], the newest snapshot
    /// entry below `gvt` (and everything after it) is retained so that a
    /// later rollback always finds a restoration point; commit accounting
    /// for the retained suffix is deferred to a later pass. Use
    /// [`Self::fossil_collect_final`] at shutdown, when no rollback can
    /// follow.
    pub fn fossil_collect(&mut self, gvt: VirtualTime) -> u64 {
        let limit = match self.strategy {
            RollbackStrategy::PeriodicSnapshot(_) => {
                // Index of the newest snapshot entry with t < gvt; nothing
                // at or beyond it may be popped. History times are
                // non-decreasing, so bisect the snapshot index instead of
                // scanning the deque: the cost is O(log snapshots) plus
                // the entries actually freed, not O(history).
                let (snaps, processed, base) = (&self.snap_idx, &self.processed, self.hist_base);
                let n = snaps
                    .partition_point(|&abs| processed[(abs - base) as usize].event.recv_time < gvt);
                match n {
                    0 => return 0,
                    n => (snaps[n - 1] - base) as usize,
                }
            }
            _ => usize::MAX,
        };
        let mut committed = 0u64;
        while let Some(front) = self.processed.front() {
            if front.event.recv_time < gvt && (committed as usize) < limit {
                let entry = self.hist_pop_front().expect("front() was Some");
                self.processed_ids.remove(&entry.event.id);
                committed += 1;
            } else {
                break;
            }
        }
        committed
    }

    /// Fossil collection at shutdown: GVT has passed the end time, no
    /// rollback can follow, so retention is unnecessary and everything
    /// below `gvt` commits regardless of strategy.
    pub fn fossil_collect_final(&mut self, gvt: VirtualTime) -> u64 {
        let mut committed = 0u64;
        while let Some(front) = self.processed.front() {
            if front.event.recv_time < gvt {
                let entry = self.hist_pop_front().expect("front() was Some");
                self.processed_ids.remove(&entry.event.id);
                committed += 1;
            } else {
                break;
            }
        }
        committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::ids::LaneId;
    use cagvt_base::ids::NodeId;

    /// Counter model: state is (value, log of processed payloads); each
    /// event adds its payload and emits one follow-on to self.
    struct CounterModel;

    impl Model for CounterModel {
        type State = (u64, Vec<u32>);
        type Payload = u32;

        fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) -> Self::State {
            (0, Vec::new())
        }

        fn initial_events(
            &self,
            lp: LpId,
            _state: &mut Self::State,
            _rng: &mut Pcg32,
            emit: &mut Emitter<u32>,
        ) {
            emit.emit(lp, 1.0, 1);
        }

        fn handle(
            &self,
            _ctx: &EventCtx,
            state: &mut Self::State,
            payload: &u32,
            rng: &mut Pcg32,
            emit: &mut Emitter<u32>,
        ) -> u64 {
            state.0 += *payload as u64;
            state.1.push(*payload);
            let _ = rng.next_u32(); // consume randomness so rollback must restore it
            emit.emit(LpId(0), 1.0, payload + 1);
            100
        }
    }

    // Unused in lp tests, but keeps the imports exercised symmetric with
    // the worker layer.
    #[allow(dead_code)]
    fn _topology_types(_n: NodeId, _l: LaneId) {}

    fn ctx(t: f64) -> EventCtx {
        EventCtx {
            now: VirtualTime::new(t),
            self_lp: LpId(0),
            end_time: VirtualTime::new(1e9),
            total_lps: 1,
        }
    }

    fn ev(t: f64, seq: u64, payload: u32) -> Event<u32> {
        Event {
            recv_time: VirtualTime::new(t),
            dst: LpId(0),
            id: EventId::new(LpId(9), seq),
            payload,
        }
    }

    fn process_one(lp: &mut LpRuntime<CounterModel>, e: Event<u32>) {
        let mut em = Emitter::new();
        let t = e.recv_time.as_f64();
        lp.process(&CounterModel, &ctx(t), e, &mut em);
        // Stamp the emissions as the worker would, recording the sends.
        let sends: Vec<(LpId, f64)> = em.take().map(|(dst, delay, _p)| (dst, delay)).collect();
        let mut records = Vec::new();
        for (dst, delay) in sends {
            records.push(SentRecord {
                dst,
                recv_time: VirtualTime::new(t + delay),
                id: EventId::new(LpId(0), lp.next_seq()),
            });
        }
        lp.record_sends(records);
    }

    #[test]
    fn process_advances_lvt_and_history() {
        let mut lp = LpRuntime::new(LpId(0), &CounterModel, 1);
        assert_eq!(lp.lvt(), VirtualTime::ZERO);
        process_one(&mut lp, ev(1.0, 0, 5));
        process_one(&mut lp, ev(2.0, 1, 7));
        assert_eq!(lp.lvt(), VirtualTime::new(2.0));
        assert_eq!(lp.history_len(), 2);
        assert_eq!(lp.state.0, 12);
        assert!(lp.has_processed(EventId::new(LpId(9), 0)));
    }

    #[test]
    fn rollback_restores_state_rng_and_seq() {
        let mut lp = LpRuntime::new(LpId(0), &CounterModel, 1);
        process_one(&mut lp, ev(1.0, 0, 5));
        let rng_after_first = lp.rng;
        let state_after_first = lp.state.clone();

        process_one(&mut lp, ev(2.0, 1, 7));
        process_one(&mut lp, ev(3.0, 2, 9));

        // Straggler at t=1.5 undoes the t=2 and t=3 events.
        let straggler_key = EventKey { t: VirtualTime::new(1.5), id: EventId::new(LpId(9), 10) };
        let rb = lp.rollback_to(&CounterModel, straggler_key);
        assert_eq!(rb.undone, 2);
        assert_eq!(rb.reenqueue.len(), 2);
        assert_eq!(rb.antis.len(), 2, "one optimistic send per undone event");
        assert_eq!(lp.state, state_after_first);
        assert_eq!(lp.rng, rng_after_first);
        assert_eq!(lp.lvt(), VirtualTime::new(1.0));
        assert_eq!(lp.history_len(), 1);
        assert!(!lp.has_processed(EventId::new(LpId(9), 2)));
    }

    #[test]
    fn reexecution_after_rollback_replays_identically() {
        let mut lp = LpRuntime::new(LpId(0), &CounterModel, 7);
        process_one(&mut lp, ev(1.0, 0, 5));
        process_one(&mut lp, ev(2.0, 1, 7));
        let final_state = lp.state.clone();
        let final_rng = lp.rng;

        let rb = lp.rollback_to(
            &CounterModel,
            EventKey { t: VirtualTime::new(0.5), id: EventId::new(LpId(9), 99) },
        );
        assert_eq!(rb.undone, 2);
        // Replay both in order.
        let mut events = rb.reenqueue;
        events.sort_by_key(|e| e.key());
        for e in events {
            process_one(&mut lp, e);
        }
        assert_eq!(lp.state, final_state);
        assert_eq!(lp.rng, final_rng);
    }

    #[test]
    fn rollback_cancel_discards_the_cancelled_event() {
        let mut lp = LpRuntime::new(LpId(0), &CounterModel, 1);
        let target = ev(2.0, 1, 7);
        let target_id = target.id;
        let target_key = target.key();
        process_one(&mut lp, ev(1.0, 0, 5));
        process_one(&mut lp, target);
        process_one(&mut lp, ev(3.0, 2, 9));

        let rb = lp.rollback_cancel(&CounterModel, target_id, target_key);
        assert_eq!(rb.undone, 2, "t=2 (cancelled) and t=3");
        assert_eq!(rb.reenqueue.len(), 1, "only t=3 comes back");
        assert_eq!(rb.reenqueue[0].recv_time, VirtualTime::new(3.0));
        assert_eq!(lp.lvt(), VirtualTime::new(1.0));
    }

    #[test]
    fn fossil_commits_strictly_below_gvt() {
        let mut lp = LpRuntime::new(LpId(0), &CounterModel, 1);
        process_one(&mut lp, ev(1.0, 0, 1));
        process_one(&mut lp, ev(2.0, 1, 1));
        process_one(&mut lp, ev(3.0, 2, 1));
        assert_eq!(lp.fossil_collect(VirtualTime::new(2.0)), 1, "only t=1 < gvt");
        assert_eq!(lp.history_len(), 2);
        assert_eq!(lp.fossil_collect(VirtualTime::new(10.0)), 2);
        assert_eq!(lp.history_len(), 0);
        // LVT is unaffected by fossil collection.
        assert_eq!(lp.lvt(), VirtualTime::new(3.0));
    }

    #[test]
    fn periodic_fossil_keeps_newest_snapshot_below_gvt() {
        let mut lp = LpRuntime::with_strategy(
            LpId(0),
            &CounterModel,
            1,
            RollbackStrategy::PeriodicSnapshot(2),
            VirtualTime::new(1e9),
            1,
        );
        // Entries at t=1..=5; snapshots land on t=1, t=3, t=5.
        for (i, t) in [1.0, 2.0, 3.0, 4.0, 5.0].iter().enumerate() {
            process_one(&mut lp, ev(*t, i as u64, 1));
        }
        // Newest snapshot below 4.5 is t=3: everything before it commits.
        assert_eq!(lp.fossil_collect(VirtualTime::new(4.5)), 2);
        assert_eq!(lp.history_len(), 3);
        // No snapshot strictly below 3.0 remains: nothing frees.
        assert_eq!(lp.fossil_collect(VirtualTime::new(3.0)), 0);
        // The t=5 snapshot unlocks the t=3 and t=4 entries.
        assert_eq!(lp.fossil_collect(VirtualTime::new(5.5)), 2);
        assert_eq!(lp.history_len(), 1);
        assert_eq!(lp.fossil_collect_final(VirtualTime::new(10.0)), 1);
        assert_eq!(lp.history_len(), 0);
    }

    #[test]
    fn rollback_below_everything_resets_to_initial() {
        let mut lp = LpRuntime::new(LpId(0), &CounterModel, 1);
        let init_state = lp.state.clone();
        let init_rng = lp.rng;
        process_one(&mut lp, ev(1.0, 0, 2));
        let rb = lp.rollback_to(&CounterModel, EventKey::MIN);
        assert_eq!(rb.undone, 1);
        assert_eq!(lp.state, init_state);
        assert_eq!(lp.rng, init_rng);
        assert_eq!(lp.last_key(), EventKey::MIN);
    }
}
