//! Paper-vs-measured summary: reads the CSVs produced by the `figures`
//! binary and prints the headline comparison table from EXPERIMENTS.md,
//! computed fresh from the data.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// One parsed row of a figure CSV (the fields the summary needs).
#[derive(Clone, Debug)]
pub struct FigRow {
    pub series: String,
    pub nodes: u16,
    pub steady_rate: f64,
    pub committed_rate: f64,
    pub efficiency: f64,
}

/// Parse one `results/<figure>.csv` file.
pub fn parse_figure_csv(content: &str) -> Result<Vec<FigRow>, String> {
    let mut lines = content.lines();
    let header = lines.next().ok_or("empty csv")?;
    let cols: Vec<&str> = header.split(',').map(|s| s.trim()).collect();
    let idx = |name: &str| {
        cols.iter().position(|c| *c == name).ok_or_else(|| format!("missing column {name}"))
    };
    let (i_series, i_nodes, i_steady, i_committed, i_eff) = (
        idx("series")?,
        idx("nodes")?,
        idx("steady_rate")?,
        idx("committed_rate")?,
        idx("efficiency")?,
    );
    let mut rows = Vec::new();
    for (n, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        let field = |i: usize| f.get(i).copied().unwrap_or("").trim();
        let parse_f = |i: usize| -> Result<f64, String> {
            field(i).parse().map_err(|_| format!("line {}: bad number {:?}", n + 2, field(i)))
        };
        rows.push(FigRow {
            series: field(i_series).to_string(),
            nodes: field(i_nodes).parse().map_err(|_| format!("line {}: bad nodes", n + 2))?,
            steady_rate: parse_f(i_steady)?,
            committed_rate: parse_f(i_committed)?,
            efficiency: parse_f(i_eff)?,
        });
    }
    Ok(rows)
}

fn at(rows: &[FigRow], series: &str, nodes: u16) -> Option<FigRow> {
    rows.iter().find(|r| r.series == series && r.nodes == nodes).cloned()
}

/// A headline claim: measured ratio (a over b, percent) vs the paper's.
struct Claim {
    label: &'static str,
    figure: &'static str,
    over: &'static str,
    under: &'static str,
    paper_pct: f64,
    /// Compare on whole-run committed rate instead of the steady window
    /// (used for the unstable inline baselines).
    whole_run: bool,
}

const CLAIMS: &[Claim] = &[
    Claim {
        label: "dedicated over inline, COMP (Mattern)",
        figure: "fig3",
        over: "mattern-dedicated",
        under: "mattern-inline",
        paper_pct: 51.0,
        whole_run: false,
    },
    Claim {
        label: "dedicated over inline, COMP (Barrier)",
        figure: "fig3",
        over: "barrier-dedicated",
        under: "barrier-inline",
        paper_pct: 17.0,
        whole_run: false,
    },
    Claim {
        label: "dedicated over inline, COMM (Mattern)",
        figure: "fig4",
        over: "mattern-dedicated",
        under: "mattern-inline",
        paper_pct: 1359.0,
        whole_run: true,
    },
    Claim {
        label: "dedicated over inline, COMM (Barrier)",
        figure: "fig4",
        over: "barrier-dedicated",
        under: "barrier-inline",
        paper_pct: 329.0,
        whole_run: true,
    },
    Claim {
        label: "Mattern over Barrier, COMP",
        figure: "fig5",
        over: "mattern",
        under: "barrier",
        paper_pct: 27.9,
        whole_run: false,
    },
    Claim {
        label: "Barrier over Mattern, COMM",
        figure: "fig6",
        over: "barrier",
        under: "mattern",
        paper_pct: 14.5,
        whole_run: false,
    },
    Claim {
        label: "CA-GVT over Barrier, COMP",
        figure: "fig8",
        over: "ca-gvt",
        under: "barrier",
        paper_pct: 19.0,
        whole_run: false,
    },
    Claim {
        label: "CA-GVT over Mattern, COMM",
        figure: "fig9",
        over: "ca-gvt",
        under: "mattern",
        paper_pct: 13.0,
        whole_run: false,
    },
    Claim {
        label: "CA-GVT over Barrier, mixed 10-15",
        figure: "fig10",
        over: "ca-gvt",
        under: "barrier",
        paper_pct: 6.4,
        whole_run: false,
    },
    Claim {
        label: "CA-GVT over Barrier, mixed 15-10",
        figure: "fig11",
        over: "ca-gvt",
        under: "barrier",
        paper_pct: 12.7,
        whole_run: false,
    },
    Claim {
        label: "CA-GVT over Barrier, mixed 5-5",
        figure: "fig12",
        over: "ca-gvt",
        under: "barrier",
        paper_pct: 8.3,
        whole_run: false,
    },
];

/// Render the headline table from a directory of figure CSVs. Missing
/// figures are reported, not fatal.
pub fn summarize(dir: &Path) -> Result<String, String> {
    let mut figures: HashMap<String, Vec<FigRow>> = HashMap::new();
    for claim in CLAIMS {
        if figures.contains_key(claim.figure) {
            continue;
        }
        let path = dir.join(format!("{}.csv", claim.figure));
        match std::fs::read_to_string(&path) {
            Ok(content) => {
                figures.insert(claim.figure.to_string(), parse_figure_csv(&content)?);
            }
            Err(_) => continue,
        }
    }

    let mut out = String::new();
    writeln!(out, "{:<44} {:>10} {:>10}  verdict", "claim (8 nodes)", "paper", "measured").unwrap();
    writeln!(out, "{}", "-".repeat(78)).unwrap();
    for claim in CLAIMS {
        let Some(rows) = figures.get(claim.figure) else {
            writeln!(out, "{:<44} {:>9.1}% {:>10}", claim.label, claim.paper_pct, "missing")
                .unwrap();
            continue;
        };
        let (Some(a), Some(b)) = (at(rows, claim.over, 8), at(rows, claim.under, 8)) else {
            writeln!(out, "{:<44} {:>9.1}% {:>10}", claim.label, claim.paper_pct, "no-data")
                .unwrap();
            continue;
        };
        let (ra, rb) = if claim.whole_run {
            (a.committed_rate, b.committed_rate)
        } else {
            (a.steady_rate, b.steady_rate)
        };
        let measured_pct = (ra / rb - 1.0) * 100.0;
        let verdict = if measured_pct > 0.0 {
            "direction ok"
        } else if measured_pct > -5.0 {
            "ties"
        } else {
            "MISMATCH"
        };
        writeln!(
            out,
            "{:<44} {:>9.1}% {:>9.1}%  {}",
            claim.label, claim.paper_pct, measured_pct, verdict
        )
        .unwrap();
    }

    // Efficiency corner: the paper's COMM efficiencies.
    if let Some(rows) = figures.get("fig9") {
        writeln!(
            out,
            "\nCOMM efficiencies at 8 nodes (paper: Mattern 36.2%, Barrier 85.3%, CA 80.0%):"
        )
        .unwrap();
        for s in ["mattern", "barrier", "ca-gvt"] {
            if let Some(r) = at(rows, s, 8) {
                writeln!(out, "  {:<8} {:>6.1}%", s, r.efficiency * 100.0).unwrap();
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
figure,series,nodes,steady_rate,committed_rate,efficiency,committed
fig5,mattern,1,5.0,4.0,0.99,100
fig5,mattern,8,40.0,38.0,0.99,800
fig5,barrier,8,30.0,29.0,0.99,800
";

    #[test]
    fn parses_figure_csv() {
        let rows = parse_figure_csv(SAMPLE).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].series, "mattern");
        assert_eq!(rows[1].nodes, 8);
        assert_eq!(rows[1].steady_rate, 40.0);
        assert_eq!(rows[2].efficiency, 0.99);
    }

    #[test]
    fn rejects_missing_columns() {
        let err = parse_figure_csv("a,b,c\n1,2,3\n").unwrap_err();
        assert!(err.contains("missing column"));
    }

    #[test]
    fn at_finds_the_right_row() {
        let rows = parse_figure_csv(SAMPLE).unwrap();
        assert!(at(&rows, "mattern", 8).is_some());
        assert!(at(&rows, "mattern", 4).is_none());
        assert!(at(&rows, "ca-gvt", 8).is_none());
    }

    #[test]
    fn summarize_reads_a_directory() {
        let dir = std::env::temp_dir().join(format!("cagvt-summary-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("fig5.csv"), SAMPLE).unwrap();
        let text = summarize(&dir).unwrap();
        assert!(text.contains("Mattern over Barrier, COMP"));
        assert!(text.contains("33.3%"), "40 over 30 is +33.3%:\n{text}");
        assert!(text.contains("missing"), "other figures are absent");
        std::fs::remove_dir_all(&dir).ok();
    }
}
