//! Machine-readable bench trajectory: `BENCH_summary.json`.
//!
//! Every `figures` invocation appends one summary file to its output
//! directory: per-figure wall-clock, runs-per-second and total committed
//! events, plus the sweep thread count that produced them. A serial
//! invocation (`CAGVT_SWEEP_THREADS=1`) additionally records a *baseline*
//! file; later parallel invocations read that baseline back and report
//! per-figure speedup, so the bench trajectory (serial cost, parallel
//! cost, speedup) is tracked across invocations without any external
//! tooling.
//!
//! The JSON is written with plain formatting (the offline `serde_json`
//! shim has no derive support) and read back through the shim's `Value`
//! tree, which is all the consumers (CI, plots) need.

use crate::Row;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Schema tag of the summary document.
pub const SUMMARY_SCHEMA: &str = "cagvt-bench-summary/v1";
/// Schema tag of the serial-baseline document.
pub const BASELINE_SCHEMA: &str = "cagvt-bench-baseline/v1";
/// Environment override pointing at a baseline file to compare against.
pub const BASELINE_ENV: &str = "CAGVT_BENCH_BASELINE";
/// File names written next to the figure CSVs.
pub const SUMMARY_FILE: &str = "BENCH_summary.json";
pub const BASELINE_FILE: &str = "BENCH_serial_baseline.json";

/// One figure's cost in a `figures` invocation.
#[derive(Clone, Debug)]
pub struct FigureBench {
    pub name: String,
    /// Rows (= runs) the figure produced.
    pub runs: usize,
    /// Wall-clock of the whole figure (all runs, whatever the threading).
    pub wall_s: f64,
    /// Committed events summed over the figure's runs.
    pub committed: u64,
    /// Sum of per-run host seconds (the work actually done; with N sweep
    /// threads this exceeds `wall_s` by up to a factor of N).
    pub run_host_s: f64,
}

impl FigureBench {
    /// Measure one figure from its rows and observed wall-clock.
    pub fn from_rows(name: &str, wall_s: f64, rows: &[Row]) -> Self {
        FigureBench {
            name: name.to_string(),
            runs: rows.len(),
            wall_s,
            committed: rows.iter().map(|r| r.report.committed).sum(),
            run_host_s: rows.iter().map(|r| r.report.host_seconds).sum(),
        }
    }

    fn runs_per_sec(&self) -> f64 {
        cagvt_core::report::safe_rate(self.runs as f64, self.wall_s)
    }
}

/// The whole invocation's trajectory record.
#[derive(Clone, Debug, Default)]
pub struct BenchSummary {
    pub scale: String,
    pub threads: usize,
    pub figures: Vec<FigureBench>,
    /// Serial per-figure wall-clock to compute speedups against, when a
    /// baseline file was found.
    pub baseline: Option<BTreeMap<String, f64>>,
}

impl BenchSummary {
    pub fn new(scale: &str, threads: usize) -> Self {
        BenchSummary { scale: scale.to_string(), threads, figures: Vec::new(), baseline: None }
    }

    pub fn push(&mut self, fig: FigureBench) {
        self.figures.push(fig);
    }

    pub fn total_wall_s(&self) -> f64 {
        self.figures.iter().map(|f| f.wall_s).sum()
    }

    pub fn total_committed(&self) -> u64 {
        self.figures.iter().map(|f| f.committed).sum()
    }

    /// Serialize the summary document. Figures appear in run order;
    /// `speedup_vs_serial` is present only for figures with a recorded
    /// baseline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SUMMARY_SCHEMA}\",");
        let _ = writeln!(out, "  \"scale\": \"{}\",", escape(&self.scale));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"total_wall_s\": {:.6},", self.total_wall_s());
        let _ = writeln!(out, "  \"total_committed\": {},", self.total_committed());
        out.push_str("  \"figures\": [\n");
        for (i, f) in self.figures.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"runs\": {}, \"wall_s\": {:.6}, \
                 \"runs_per_sec\": {:.3}, \"committed\": {}, \"run_host_s\": {:.6}",
                escape(&f.name),
                f.runs,
                f.wall_s,
                f.runs_per_sec(),
                f.committed,
                f.run_host_s,
            );
            if let Some(serial) = self.baseline.as_ref().and_then(|b| b.get(&f.name)) {
                let _ = write!(
                    out,
                    ", \"serial_wall_s\": {:.6}, \"speedup_vs_serial\": {:.3}",
                    serial,
                    cagvt_core::report::safe_rate(*serial, f.wall_s),
                );
            }
            out.push('}');
            out.push_str(if i + 1 < self.figures.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serialize the serial-baseline document (per-figure wall-clock only).
    pub fn baseline_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
        let _ = writeln!(out, "  \"scale\": \"{}\",", escape(&self.scale));
        out.push_str("  \"figures\": {\n");
        for (i, f) in self.figures.iter().enumerate() {
            let _ = write!(out, "    \"{}\": {:.6}", escape(&f.name), f.wall_s);
            out.push_str(if i + 1 < self.figures.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Attach a baseline for speedup reporting: the `CAGVT_BENCH_BASELINE`
    /// file when the variable is set, else `<dir>/BENCH_serial_baseline.json`
    /// if present. A missing or malformed file just means no speedup column.
    pub fn load_baseline(&mut self, dir: &Path) {
        let path = match std::env::var(BASELINE_ENV) {
            Ok(p) => std::path::PathBuf::from(p),
            Err(_) => dir.join(BASELINE_FILE),
        };
        self.baseline = read_baseline(&path);
    }
}

/// Per-figure wall-clock growth factor above which [`gate`] warns
/// (1.25 = 25% slower than the recorded serial baseline).
pub const GATE_TOLERANCE: f64 = 1.25;

/// Compare a `BENCH_summary.json` against a `BENCH_serial_baseline.json`,
/// returning one warning line per figure whose wall-clock regressed past
/// `tolerance`. Figures present on only one side are skipped: the gate
/// tracks drift of the figures both invocations ran. `Err` is reserved
/// for unreadable/malformed inputs — the gate *warns* on regressions, it
/// never fails a build by itself (CI prints the warnings and moves on).
pub fn gate(
    summary_path: &Path,
    baseline_path: &Path,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(summary_path)
        .map_err(|e| format!("read {}: {e}", summary_path.display()))?;
    let doc = serde_json::from_str(&text)
        .map_err(|e| format!("parse {}: {e:?}", summary_path.display()))?;
    if doc["schema"].as_str() != Some(SUMMARY_SCHEMA) {
        return Err(format!("{} is not a {SUMMARY_SCHEMA} document", summary_path.display()));
    }
    let baseline = read_baseline(baseline_path)
        .ok_or_else(|| format!("no usable baseline at {}", baseline_path.display()))?;
    let figures = doc["figures"].as_array().ok_or("summary carries no figures array")?;
    let mut warnings = Vec::new();
    for f in figures {
        let name = f["name"].as_str().ok_or("figure entry without a name")?;
        let wall = f["wall_s"].as_f64().ok_or("figure entry without wall_s")?;
        let Some(serial) = baseline.get(name) else { continue };
        if *serial > 0.0 && wall > serial * tolerance {
            warnings.push(format!(
                "{name}: {wall:.3}s wall vs {serial:.3}s serial baseline \
                 (+{:.0}% > {:.0}% tolerance)",
                (wall / serial - 1.0) * 100.0,
                (tolerance - 1.0) * 100.0,
            ));
        }
    }
    Ok(warnings)
}

/// Parse a baseline file into `{figure -> serial wall seconds}`.
pub fn read_baseline(path: &Path) -> Option<BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc = serde_json::from_str(&text).ok()?;
    if doc["schema"].as_str() != Some(BASELINE_SCHEMA) {
        return None;
    }
    let figures = doc["figures"].as_object()?;
    let mut map = BTreeMap::new();
    for (name, v) in figures {
        map.insert(name.clone(), v.as_f64()?);
    }
    Some(map)
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_core::RunReport;

    fn fig(name: &str, wall: f64, committed: u64) -> FigureBench {
        FigureBench { name: name.into(), runs: 8, wall_s: wall, committed, run_host_s: wall * 3.0 }
    }

    fn summary() -> BenchSummary {
        let mut s = BenchSummary::new("bench", 4);
        s.push(fig("fig5", 0.5, 1000));
        s.push(fig("fig6", 1.5, 2000));
        s
    }

    #[test]
    fn summary_json_parses_and_carries_totals() {
        let doc = serde_json::from_str(&summary().to_json()).expect("valid JSON");
        assert_eq!(doc["schema"].as_str(), Some(SUMMARY_SCHEMA));
        assert_eq!(doc["threads"].as_u64(), Some(4));
        assert_eq!(doc["total_committed"].as_u64(), Some(3000));
        assert!((doc["total_wall_s"].as_f64().unwrap() - 2.0).abs() < 1e-9);
        let figs = doc["figures"].as_array().unwrap();
        assert_eq!(figs.len(), 2);
        assert_eq!(figs[0]["name"].as_str(), Some("fig5"));
        assert_eq!(figs[0]["runs"].as_u64(), Some(8));
        assert_eq!(figs[1]["committed"].as_u64(), Some(2000));
        assert!(figs[0]["speedup_vs_serial"].is_null(), "no baseline attached");
    }

    #[test]
    fn baseline_roundtrip_enables_speedup() {
        let dir = std::env::temp_dir().join(format!("cagvt-bench-sum-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let serial = summary();
        std::fs::write(dir.join(BASELINE_FILE), serial.baseline_json()).unwrap();

        let mut parallel = summary();
        parallel.figures[0].wall_s = 0.25; // 2x faster than the baseline
        parallel.baseline = read_baseline(&dir.join(BASELINE_FILE));
        assert!(parallel.baseline.is_some());
        let doc = serde_json::from_str(&parallel.to_json()).unwrap();
        let figs = doc["figures"].as_array().unwrap();
        assert!((figs[0]["speedup_vs_serial"].as_f64().unwrap() - 2.0).abs() < 1e-9);
        assert!((figs[1]["speedup_vs_serial"].as_f64().unwrap() - 1.0).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_baseline_is_ignored() {
        let dir = std::env::temp_dir().join(format!("cagvt-bench-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(BASELINE_FILE);
        std::fs::write(&p, "{not json").unwrap();
        assert!(read_baseline(&p).is_none());
        std::fs::write(&p, "{\"schema\": \"other/v9\", \"figures\": {}}").unwrap();
        assert!(read_baseline(&p).is_none(), "wrong schema tag rejected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_warns_only_on_regressions_past_tolerance() {
        let dir = std::env::temp_dir().join(format!("cagvt-bench-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let serial = summary(); // fig5 0.5s, fig6 1.5s
        std::fs::write(dir.join(BASELINE_FILE), serial.baseline_json()).unwrap();

        let mut current = summary();
        current.figures[0].wall_s = 0.55; // +10%: inside tolerance
        current.figures[1].wall_s = 2.25; // +50%: regression
        current.push(fig("fig9", 9.0, 100)); // absent from baseline: skipped
        std::fs::write(dir.join(SUMMARY_FILE), current.to_json()).unwrap();

        let warnings =
            gate(&dir.join(SUMMARY_FILE), &dir.join(BASELINE_FILE), GATE_TOLERANCE).unwrap();
        assert_eq!(warnings.len(), 1, "warnings: {warnings:?}");
        assert!(warnings[0].starts_with("fig6:"), "warning: {}", warnings[0]);
        assert!(warnings[0].contains("+50%"), "warning: {}", warnings[0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_rejects_missing_or_malformed_inputs() {
        let dir = std::env::temp_dir().join(format!("cagvt-bench-gate2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let summary_path = dir.join(SUMMARY_FILE);
        let baseline_path = dir.join(BASELINE_FILE);
        assert!(gate(&summary_path, &baseline_path, GATE_TOLERANCE).is_err(), "missing summary");
        std::fs::write(&summary_path, summary().to_json()).unwrap();
        assert!(gate(&summary_path, &baseline_path, GATE_TOLERANCE).is_err(), "missing baseline");
        std::fs::write(&summary_path, "{}").unwrap();
        std::fs::write(&baseline_path, summary().baseline_json()).unwrap();
        assert!(gate(&summary_path, &baseline_path, GATE_TOLERANCE).is_err(), "wrong schema");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_rows_sums_committed_and_host_seconds() {
        let report = RunReport { committed: 10, host_seconds: 0.5, ..Default::default() };
        let rows = vec![
            Row { figure: "f", series: "a".into(), nodes: 1, report: report.clone() },
            Row { figure: "f", series: "b".into(), nodes: 2, report },
        ];
        let f = FigureBench::from_rows("f", 2.0, &rows);
        assert_eq!(f.runs, 2);
        assert_eq!(f.committed, 20);
        assert!((f.run_host_s - 1.0).abs() < 1e-12);
        assert!((f.runs_per_sec() - 1.0).abs() < 1e-12);
    }
}
