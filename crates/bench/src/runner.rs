//! Parallel sweep runner.
//!
//! Every figure of the harness is a grid of fully independent,
//! deterministic virtual-cluster runs: each run builds its own engine,
//! shares no mutable state with its neighbours, and produces the same
//! [`RunReport`] regardless of when or where it executes. The runner
//! exploits that: a figure's grid is lifted into a list of [`RunSpec`]s,
//! executed by a scoped pool of OS threads pulling from a work queue, with
//! results collected **by spec index** so the emitted rows — and therefore
//! the figure CSVs — are byte-identical to the serial execution order.
//!
//! Thread count: the `CAGVT_SWEEP_THREADS` environment variable when set
//! (`1` forces the serial path), otherwise one thread per host core.

use crate::Row;
use cagvt_core::RunReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment knob selecting the sweep thread count.
pub const THREADS_ENV: &str = "CAGVT_SWEEP_THREADS";

/// Sweep thread count: `CAGVT_SWEEP_THREADS` if set (must be >= 1),
/// otherwise the host's available parallelism.
pub fn sweep_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("{THREADS_ENV} must be a positive integer, got {v:?}"),
        },
        Err(_) => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// One cell of a figure's run grid: the row labels plus a closure that
/// performs the (deterministic, self-contained) run.
pub struct RunSpec {
    pub figure: &'static str,
    pub series: String,
    pub nodes: u16,
    job: Box<dyn FnOnce() -> RunReport + Send>,
}

impl RunSpec {
    pub fn new(
        figure: &'static str,
        series: String,
        nodes: u16,
        job: impl FnOnce() -> RunReport + Send + 'static,
    ) -> Self {
        RunSpec { figure, series, nodes, job: Box::new(job) }
    }
}

/// Run `jobs` across `threads` OS threads (scoped; a panicking job aborts
/// the sweep), returning results **in input order** regardless of the
/// completion order. `threads <= 1` degenerates to an in-place serial loop
/// with no thread machinery at all.
pub fn par_map<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>, threads: usize) -> Vec<T> {
    type JobSlot<T> = Mutex<Option<Box<dyn FnOnce() -> T + Send>>>;
    let n = jobs.len();
    let threads = threads.min(n).max(1);
    if threads <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    // Work queue over spec indices: each worker claims the next unclaimed
    // index, takes the job out of its slot, and deposits the result in the
    // matching result slot. Index-addressed slots (not a shared Vec push)
    // are what make the output order independent of scheduling.
    let slots: Vec<JobSlot<T>> = jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each index is claimed exactly once");
                let out = job();
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("every claimed job deposits"))
        .collect()
}

/// Execute a figure's run grid with [`sweep_threads`] workers.
pub fn execute(specs: Vec<RunSpec>) -> Vec<Row> {
    execute_with(specs, sweep_threads())
}

/// [`execute`] with an explicit thread count. Row order always equals spec
/// order; with `threads == 1` this *is* the serial runner.
pub fn execute_with(specs: Vec<RunSpec>, threads: usize) -> Vec<Row> {
    let mut labels = Vec::with_capacity(specs.len());
    let mut jobs: Vec<Box<dyn FnOnce() -> RunReport + Send>> = Vec::with_capacity(specs.len());
    for spec in specs {
        labels.push((spec.figure, spec.series, spec.nodes));
        jobs.push(spec.job);
    }
    let reports = par_map(jobs, threads);
    labels
        .into_iter()
        .zip(reports)
        .map(|((figure, series, nodes), report)| Row { figure, series, nodes, report })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        // Jobs finish in reverse spawn order (later jobs are cheaper), yet
        // results come back by index.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_micros((32 - i) as u64 * 50));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let out = par_map(jobs, 8);
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_serial_path_matches() {
        let mk = || -> Vec<Box<dyn FnOnce() -> u64 + Send>> {
            (0..10u64).map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>).collect()
        };
        assert_eq!(par_map(mk(), 1), par_map(mk(), 4));
    }

    #[test]
    fn par_map_handles_more_threads_than_jobs() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = vec![Box::new(|| 1u8), Box::new(|| 2u8)];
        assert_eq!(par_map(jobs, 64), vec![1, 2]);
    }

    #[test]
    fn par_map_empty_is_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(par_map(jobs, 4).is_empty());
    }
}
