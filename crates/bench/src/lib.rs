//! Benchmark harness: every experiment of the paper's evaluation section
//! as a callable function.
//!
//! Each `figN` function regenerates the series of the corresponding paper
//! figure (committed event rate vs node count); the `stats`, `epg_sweep`,
//! `ca_trace` and sweep functions cover the in-text tables and the
//! ablations listed in DESIGN.md. The `figures` binary formats these as
//! CSV; the Criterion benches under `benches/` time scaled-down instances
//! of the same configurations.
//!
//! Scale: [`Scale::paper`] is the paper's geometry (60 workers and 128 LPs
//! per worker per node); [`Scale::default`] keeps the 60-workers-per-MPI
//! -thread ratio that drives the saturation effects but trims LP count and
//! horizon so a full figure regenerates in seconds under the virtual
//! scheduler.

pub mod bench_summary;
pub mod runner;
pub mod summary;

pub use runner::{execute, execute_with, sweep_threads, RunSpec, THREADS_ENV};

use cagvt_base::metrics::{EpochMode, MetricsEpoch, MetricsSink};
use cagvt_base::{FaultInjector, NodeId, TraceSink, WallNs};
use cagvt_core::cluster::run_virtual_with;
use cagvt_core::{RunReport, SimConfig};
use cagvt_exec::VirtualConfig;
use cagvt_fault::{FaultPlan, FaultRuntime, FaultSpec, FaultTopology, Perturbation};
use cagvt_gvt::{make_bundle, GvtKind};
use cagvt_metrics::{HealthMonitor, MetricsRegistry};
use cagvt_models::phold::{PhaseSchedule, PholdModel, PholdParams};
use cagvt_models::presets::{comm_dominated, comp_dominated, mixed_model, Workload};
use cagvt_net::MpiMode;
use cagvt_trace::{chrome_trace, csv_trace, HorizonStats, TraceMeta, TraceRecorder};
use std::sync::Arc;

/// Run geometry knobs.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub workers_per_node: u16,
    pub lps_per_worker: u32,
    pub end_time: f64,
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        // The paper's full per-node geometry (60 workers x 128 LPs — the
        // LP density per worker controls how far a worker advances in
        // virtual time per wall second, which is what makes remote latency
        // benign or catastrophic). Only the horizon is shortened.
        Scale { workers_per_node: 60, lps_per_worker: 128, end_time: 12.0, seed: 0x1CC_2019 }
    }
}

impl Scale {
    /// The paper's geometry with a long horizon (slow: millions of events
    /// per run).
    pub fn paper() -> Self {
        Scale { workers_per_node: 60, lps_per_worker: 128, end_time: 60.0, seed: 0x1CC_2019 }
    }

    /// A tiny geometry for Criterion benches and smoke tests.
    pub fn bench() -> Self {
        Scale { workers_per_node: 12, lps_per_worker: 32, end_time: 4.0, seed: 0x1CC_2019 }
    }
}

/// The node counts of every figure's x-axis.
pub const NODE_COUNTS: [u16; 4] = [1, 2, 4, 8];

/// Assemble a [`SimConfig`] for one run.
pub fn base_config(nodes: u16, mode: MpiMode, gvt_interval: u64, scale: &Scale) -> SimConfig {
    let mut cfg = SimConfig::paper(nodes);
    cfg.spec = cagvt_net::ClusterSpec::new(nodes, scale.workers_per_node, mode);
    cfg.lps_per_worker = scale.lps_per_worker;
    cfg.end_time = scale.end_time;
    cfg.gvt_interval = gvt_interval;
    cfg.max_outstanding = (gvt_interval as usize * 24).max(240);
    cfg.seed = scale.seed;
    cfg
}

fn scheduler_valves() -> VirtualConfig {
    VirtualConfig {
        max_steps: Some(3_000_000_000),
        horizon: Some(cagvt_base::WallNs(900_000_000_000)),
        ..Default::default()
    }
}

/// Run one `(algorithm, workload, topology)` combination.
pub fn run_one(kind: GvtKind, workload: &Workload, cfg: SimConfig) -> RunReport {
    run_one_faulted(kind, workload, cfg, None)
}

/// [`run_one`] on a perturbed cluster: the injector shapes actor costs,
/// link traffic and MPI pumps across every layer of the run.
pub fn run_one_faulted(
    kind: GvtKind,
    workload: &Workload,
    cfg: SimConfig,
    faults: Option<Arc<dyn FaultInjector>>,
) -> RunReport {
    let model = Arc::new(workload.model.clone());
    let vcfg = VirtualConfig { faults, ..scheduler_valves() };
    run_virtual_with(model, cfg, vcfg, |shared| make_bundle(kind, shared))
}

/// [`run_one`] with a trace sink observing every instrumented layer
/// (workers, GVT algorithms, the MPI fabric and the scheduler).
pub fn run_one_traced(
    kind: GvtKind,
    workload: &Workload,
    cfg: SimConfig,
    trace: Arc<dyn TraceSink>,
) -> RunReport {
    let model = Arc::new(workload.model.clone());
    let vcfg = VirtualConfig { trace: Some(trace), ..scheduler_valves() };
    run_virtual_with(model, cfg, vcfg, |shared| make_bundle(kind, shared))
}

/// [`run_one`] with a metrics sink receiving one [`MetricsEpoch`] per GVT
/// round, optionally on a perturbed cluster (the health experiment runs
/// both arms of that cross).
pub fn run_one_observed(
    kind: GvtKind,
    workload: &Workload,
    cfg: SimConfig,
    faults: Option<Arc<dyn FaultInjector>>,
    metrics: Arc<dyn MetricsSink>,
) -> RunReport {
    let model = Arc::new(workload.model.clone());
    let vcfg = VirtualConfig { faults, metrics: Some(metrics), ..scheduler_valves() };
    run_virtual_with(model, cfg, vcfg, |shared| make_bundle(kind, shared))
}

/// One data point of a figure.
#[derive(Clone, Debug)]
pub struct Row {
    pub figure: &'static str,
    pub series: String,
    pub nodes: u16,
    pub report: RunReport,
}

impl Row {
    pub fn csv_header() -> &'static str {
        "figure,series,nodes,steady_rate,committed_rate,efficiency,committed,rollbacks,rolled_back,\
         gvt_rounds,gvt_time_mean,lvt_disparity,sync_rounds,async_rounds,sim_seconds,\
         dropped_msgs,retransmits,straggled_steps,stalled_pumps,\
         horizon_width,barrier_wait_ns,rollback_cascade,health_alerts"
    }

    pub fn csv(&self) -> String {
        let r = &self.report;
        format!(
            "{},{},{},{:.1},{:.1},{:.4},{},{},{},{},{:.6},{:.4},{},{},{:.6},{},{},{},{},\
             {:.4},{:.0},{},{}",
            self.figure,
            self.series,
            self.nodes,
            r.steady_rate,
            r.committed_rate,
            r.efficiency,
            r.committed,
            r.rollbacks,
            r.rolled_back,
            r.gvt_rounds,
            r.gvt_time_mean,
            r.lvt_disparity,
            r.sync_rounds,
            r.async_rounds,
            r.sim_seconds,
            r.faults.dropped_msgs,
            r.faults.retransmits,
            r.faults.straggled_steps,
            r.faults.stalled_pumps,
            r.horizon_width,
            r.barrier_wait_ns,
            r.rollback_cascade,
            r.health.len(),
        )
    }
}

type WorkloadFn = fn(&SimConfig) -> Workload;

fn sweep(
    figure: &'static str,
    make_workload: WorkloadFn,
    combos: &[(GvtKind, MpiMode, &str)],
    gvt_interval: u64,
    scale: &Scale,
) -> Vec<Row> {
    let mut specs = Vec::new();
    for &(kind, mode, series) in combos {
        for &nodes in &NODE_COUNTS {
            let scale = *scale;
            specs.push(RunSpec::new(figure, series.to_string(), nodes, move || {
                let cfg = base_config(nodes, mode, gvt_interval, &scale);
                run_one(kind, &make_workload(&cfg), cfg)
            }));
        }
    }
    runner::execute(specs)
}

/// Figures 3-4 run the inline-MPI baseline, whose pathology (the paper's
/// point) inflates simulated *and* host time; a shorter horizon shows the
/// same steady-state ratios at tolerable cost.
fn dedicated_scale(scale: &Scale) -> Scale {
    Scale { end_time: scale.end_time.min(5.0), ..*scale }
}

/// Figure 3: dedicated vs inline MPI thread, computation-dominated.
pub fn fig3(scale: &Scale) -> Vec<Row> {
    let scale = dedicated_scale(scale);
    sweep(
        "fig3",
        comp_dominated,
        &[
            (GvtKind::Mattern, MpiMode::Dedicated, "mattern-dedicated"),
            (GvtKind::Mattern, MpiMode::InlineWorker, "mattern-inline"),
            (GvtKind::Barrier, MpiMode::Dedicated, "barrier-dedicated"),
            (GvtKind::Barrier, MpiMode::InlineWorker, "barrier-inline"),
        ],
        50,
        &scale,
    )
}

/// Figure 4: dedicated vs inline MPI thread, communication-dominated.
pub fn fig4(scale: &Scale) -> Vec<Row> {
    let scale = dedicated_scale(scale);
    sweep(
        "fig4",
        comm_dominated,
        &[
            (GvtKind::Mattern, MpiMode::Dedicated, "mattern-dedicated"),
            (GvtKind::Mattern, MpiMode::InlineWorker, "mattern-inline"),
            (GvtKind::Barrier, MpiMode::Dedicated, "barrier-dedicated"),
            (GvtKind::Barrier, MpiMode::InlineWorker, "barrier-inline"),
        ],
        50,
        &scale,
    )
}

/// Figure 5: Mattern vs Barrier, computation-dominated.
pub fn fig5(scale: &Scale) -> Vec<Row> {
    sweep(
        "fig5",
        comp_dominated,
        &[
            (GvtKind::Mattern, MpiMode::Dedicated, "mattern"),
            (GvtKind::Barrier, MpiMode::Dedicated, "barrier"),
        ],
        25,
        scale,
    )
}

/// Figure 6: Mattern vs Barrier, communication-dominated.
pub fn fig6(scale: &Scale) -> Vec<Row> {
    sweep(
        "fig6",
        comm_dominated,
        &[
            (GvtKind::Mattern, MpiMode::Dedicated, "mattern"),
            (GvtKind::Barrier, MpiMode::Dedicated, "barrier"),
        ],
        25,
        scale,
    )
}

/// CA-GVT threshold used by the harness: the paper's 0.80 is tuned to
/// their efficiency distribution (COMP ~93%, COMM ~36%); this substrate's
/// distribution is compressed upward (COMP ~99.7%, COMM ~70-85%), so the
/// equivalent separating threshold is higher. `figures threshold-sweep`
/// shows the sensitivity.
pub const CA_HARNESS: GvtKind = GvtKind::CaGvt { threshold: 0.93 };

const THREE_ALGORITHMS: [(GvtKind, MpiMode, &str); 3] = [
    (GvtKind::Mattern, MpiMode::Dedicated, "mattern"),
    (GvtKind::Barrier, MpiMode::Dedicated, "barrier"),
    (CA_HARNESS, MpiMode::Dedicated, "ca-gvt"),
];

/// Figure 8: all three algorithms, computation-dominated.
pub fn fig8(scale: &Scale) -> Vec<Row> {
    sweep("fig8", comp_dominated, &THREE_ALGORITHMS, 25, scale)
}

/// Figure 9: all three algorithms, communication-dominated.
pub fn fig9(scale: &Scale) -> Vec<Row> {
    sweep("fig9", comm_dominated, &THREE_ALGORITHMS, 25, scale)
}

fn fig_mixed(figure: &'static str, x: f64, y: f64, scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    for &(kind, mode, series) in &THREE_ALGORITHMS {
        for &nodes in &NODE_COUNTS {
            let scale = *scale;
            specs.push(RunSpec::new(figure, series.to_string(), nodes, move || {
                let cfg = base_config(nodes, mode, 25, &scale);
                run_one(kind, &mixed_model(&cfg, x, y), cfg)
            }));
        }
    }
    runner::execute(specs)
}

/// Figure 10: 10-15 mixed model.
pub fn fig10(scale: &Scale) -> Vec<Row> {
    fig_mixed("fig10", 10.0, 15.0, scale)
}

/// Figure 11: 15-10 mixed model.
pub fn fig11(scale: &Scale) -> Vec<Row> {
    fig_mixed("fig11", 15.0, 10.0, scale)
}

/// Figure 12: 5-5 mixed model.
pub fn fig12(scale: &Scale) -> Vec<Row> {
    fig_mixed("fig12", 5.0, 5.0, scale)
}

/// In-text stats table (§4): per algorithm and workload at the maximum
/// node count: efficiency, rollbacks, disparity, GVT-function time.
pub fn stats_table(scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    for (make, wname) in [(comp_dominated as WorkloadFn, "comp"), (comm_dominated, "comm")] {
        for &(kind, mode, series) in &THREE_ALGORITHMS {
            let nodes = *NODE_COUNTS.last().expect("non-empty");
            let scale = *scale;
            specs.push(RunSpec::new("stats", format!("{wname}-{series}"), nodes, move || {
                let cfg = base_config(nodes, mode, 25, &scale);
                run_one(kind, &make(&cfg), cfg)
            }));
        }
    }
    runner::execute(specs)
}

/// EPG sweep (§4 text): time spent in the Barrier GVT function as EPG
/// grows from 10K to 40K.
pub fn epg_sweep(scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    for epg in [10_000u64, 20_000, 30_000, 40_000] {
        let nodes = *NODE_COUNTS.last().expect("non-empty");
        let scale = *scale;
        specs.push(RunSpec::new("epg-sweep", format!("epg-{epg}"), nodes, move || {
            let cfg = base_config(nodes, MpiMode::Dedicated, 25, &scale);
            let params = PholdParams::new(0.10, 0.01, epg);
            let workload = Workload {
                name: format!("epg-{epg}"),
                model: PholdModel::new(
                    cagvt_models::phold::Topology {
                        lps_per_worker: cfg.lps_per_worker,
                        workers_per_node: cfg.spec.workers_per_node,
                        nodes: cfg.spec.nodes,
                    },
                    PhaseSchedule::constant(params),
                ),
                gvt_interval: 25,
            };
            run_one(GvtKind::Barrier, &workload, cfg)
        }));
    }
    runner::execute(specs)
}

/// CA-GVT threshold ablation on the 10-15 mixed model.
pub fn threshold_sweep(scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    for threshold in [0.50, 0.60, 0.70, 0.80, 0.90, 0.95] {
        let nodes = *NODE_COUNTS.last().expect("non-empty");
        let scale = *scale;
        specs.push(RunSpec::new(
            "threshold-sweep",
            format!("thr-{threshold:.2}"),
            nodes,
            move || {
                let cfg = base_config(nodes, MpiMode::Dedicated, 25, &scale);
                run_one(GvtKind::CaGvt { threshold }, &mixed_model(&cfg, 10.0, 15.0), cfg)
            },
        ));
    }
    runner::execute(specs)
}

/// GVT interval ablation.
pub fn interval_sweep(scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    for (make, wname) in [(comp_dominated as WorkloadFn, "comp"), (comm_dominated, "comm")] {
        for interval in [10u64, 25, 50, 100] {
            for (kind, series) in [(GvtKind::Mattern, "mattern"), (GvtKind::Barrier, "barrier")] {
                let nodes = *NODE_COUNTS.last().expect("non-empty");
                let scale = *scale;
                specs.push(RunSpec::new(
                    "interval-sweep",
                    format!("{wname}-{series}-i{interval}"),
                    nodes,
                    move || {
                        let cfg = base_config(nodes, MpiMode::Dedicated, interval, &scale);
                        run_one(kind, &make(&cfg), cfg)
                    },
                ));
            }
        }
    }
    runner::execute(specs)
}

/// CA-GVT trigger ablation: efficiency-only vs efficiency-or-queue
/// occupancy (the extended trigger from the paper's concluding remarks)
/// on the communication-dominated workload, where saturation shows in the
/// queue before it shows in cumulative efficiency.
pub fn ca_queue(scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    let nodes = *NODE_COUNTS.last().expect("non-empty");
    for (kind, series) in [
        (CA_HARNESS, "ca-efficiency"),
        (GvtKind::CaGvtQueue { threshold: 0.93, queue_threshold: 200 }, "ca-queue-200"),
        (GvtKind::CaGvtQueue { threshold: 0.93, queue_threshold: 50 }, "ca-queue-50"),
    ] {
        let scale = *scale;
        specs.push(RunSpec::new("ca-queue", series.to_string(), nodes, move || {
            let cfg = base_config(nodes, MpiMode::Dedicated, 25, &scale);
            run_one(kind, &comm_dominated(&cfg), cfg)
        }));
    }
    runner::execute(specs)
}

/// Samadi's acknowledgement-based GVT (paper §7 related work) against
/// Mattern: same committed events, roughly double the channel traffic.
pub fn samadi(scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    for (make, wname) in [(comp_dominated as WorkloadFn, "comp"), (comm_dominated, "comm")] {
        for (kind, series) in [(GvtKind::Mattern, "mattern"), (GvtKind::Samadi, "samadi")] {
            for &nodes in &NODE_COUNTS {
                let scale = *scale;
                specs.push(RunSpec::new("samadi", format!("{wname}-{series}"), nodes, move || {
                    let cfg = base_config(nodes, MpiMode::Dedicated, 25, &scale);
                    run_one(kind, &make(&cfg), cfg)
                }));
            }
        }
    }
    runner::execute(specs)
}

/// Fault severities swept by the resilience experiment (severity 0 is the
/// clean baseline every curve is normalized against).
pub const FAULT_SEVERITIES: [f64; 5] = [0.0, 0.25, 0.50, 0.75, 1.0];

/// Build the injector for one `(severity, topology, span)` point; `None`
/// at severity 0 keeps the baseline byte-identical to an unfaulted run.
pub fn make_faults(
    severity: f64,
    topology: FaultTopology,
    seed: u64,
    span: WallNs,
) -> Option<Arc<dyn FaultInjector>> {
    if severity <= 0.0 {
        return None;
    }
    let spec = FaultSpec::new(severity, seed, span);
    let plan = FaultPlan::generate(&topology, &spec);
    Some(Arc::new(FaultRuntime::new(topology, &plan, spec.seed)))
}

/// Resilience curves: Mattern vs Barrier vs CA-GVT on a mid-size cluster
/// under increasing fault severity — straggling nodes, degraded links,
/// stalled MPI pumps and message drops, all from one seeded plan per
/// severity. The x-axis here is severity (the `series` column carries it),
/// not node count.
pub fn fault_sweep(scale: &Scale) -> Vec<Row> {
    let nodes = 4;
    let mut rows = Vec::new();
    // Anchor the perturbation windows on the clean Mattern makespan so
    // they actually overlap each run; one shared span keeps every
    // algorithm facing the identical plan at each severity.
    let cfg0 = base_config(nodes, MpiMode::Dedicated, 25, scale);
    let clean = run_one(GvtKind::Mattern, &comm_dominated(&cfg0), cfg0);
    let span = WallNs(((clean.sim_seconds * 1e9) as u64).max(1_000_000));
    let topology = FaultTopology::from(&cfg0.spec);
    let mut specs = Vec::new();
    for &(kind, mode, series) in &THREE_ALGORITHMS {
        for &severity in &FAULT_SEVERITIES {
            let scale = *scale;
            specs.push(RunSpec::new(
                "faults",
                format!("{series}-s{severity:.2}"),
                nodes,
                move || {
                    let cfg = base_config(nodes, mode, 25, &scale);
                    let faults = make_faults(severity, topology, scale.seed ^ 0xFA17, span);
                    run_one_faulted(kind, &comm_dominated(&cfg), cfg, faults)
                },
            ));
        }
    }
    rows.extend(runner::execute(specs));
    rows
}

/// `figures trace`: COMM-PHOLD on 4 virtual nodes under each of the three
/// GVT algorithms with a ring-buffer recorder attached. Per algorithm this
/// writes a Perfetto-loadable Chrome trace (`trace-<algo>.json`) and a tidy
/// record CSV (`trace-records-<algo>.csv`); a combined
/// `trace-horizon.csv` carries the per-round virtual-time-horizon series
/// (width, roughness, utilization) with an `algorithm` column so the three
/// algorithms' horizon behaviour can be compared directly.
pub fn trace_experiment(scale: &Scale, out_dir: Option<&std::path::Path>) -> Vec<Row> {
    let nodes = 4u16;
    // Each job returns the raw run artifacts; all reporting (stderr lines,
    // the horizon CSV, per-algorithm trace files) happens serially after
    // collection so the output stream and files are deterministic and
    // identical whatever the thread count.
    type TraceRun = (RunReport, Vec<cagvt_trace::TraceEvent>, u64, u64, u16);
    let mut jobs: Vec<Box<dyn FnOnce() -> TraceRun + Send>> = Vec::new();
    for &(kind, mode, _series) in &THREE_ALGORITHMS {
        let scale = *scale;
        jobs.push(Box::new(move || {
            let cfg = base_config(nodes, mode, 25, &scale);
            let workload = comm_dominated(&cfg);
            let recorder = TraceRecorder::new();
            let report = run_one_traced(kind, &workload, cfg, recorder.clone());
            let events = recorder.snapshot();
            (report, events, recorder.recorded(), recorder.dropped(), cfg.spec.workers_per_node)
        }));
    }
    let runs = runner::par_map(jobs, sweep_threads());

    let mut rows = Vec::new();
    let mut horizon =
        String::from("algorithm,round,t_ns,gvt,mean_lvt,width,roughness,utilization,samples\n");
    for (&(_, _, series), (report, events, recorded, dropped, workers_per_node)) in
        THREE_ALGORITHMS.iter().zip(runs)
    {
        let stats = HorizonStats::compute(&events);
        eprintln!(
            "# trace {series}: {recorded} records ({dropped} dropped), {} horizon rounds, \
             mean width {:.3}, mean utilization {:.3}",
            stats.rounds.len(),
            stats.mean_width,
            stats.mean_utilization,
        );
        for r in &stats.rounds {
            let util = r.utilization.map(|u| format!("{u:.6}")).unwrap_or_default();
            horizon.push_str(&format!(
                "{series},{},{},{},{},{},{},{},{}\n",
                r.round, r.t_ns, r.gvt, r.mean_lvt, r.width, r.roughness, util, r.samples
            ));
        }
        if let Some(dir) = out_dir {
            let meta = TraceMeta { nodes, workers_per_node };
            std::fs::write(dir.join(format!("trace-{series}.json")), chrome_trace(&meta, &events))
                .expect("write chrome trace");
            std::fs::write(dir.join(format!("trace-records-{series}.csv")), csv_trace(&events))
                .expect("write trace record csv");
        }
        rows.push(Row { figure: "trace", series: series.to_string(), nodes, report });
    }
    if let Some(dir) = out_dir {
        std::fs::write(dir.join("trace-horizon.csv"), horizon).expect("write horizon csv");
    }
    rows
}

/// Slowdown multiplier of the health experiment's straggling node, as a
/// rational over [`cagvt_fault::plan::SCALE_DEN`] (96/16 = 6x slower).
const HEALTH_STRAGGLE_NUM: u32 = 6 * cagvt_fault::plan::SCALE_DEN;

/// The health experiment's injector: node 1 runs 6x slow from t=0 across
/// (four times) the clean makespan, i.e. effectively the whole run. A
/// hand-built single-perturbation plan — not a generated severity mix — so
/// the alert stream has exactly one known cause to detect.
fn health_straggle_injector(topology: FaultTopology, span: WallNs) -> Arc<dyn FaultInjector> {
    let plan = FaultPlan {
        perturbations: vec![Perturbation::NodeStraggle {
            node: NodeId(1),
            from: WallNs::ZERO,
            until: WallNs(span.0.saturating_mul(4)),
            num: HEALTH_STRAGGLE_NUM,
            den: cagvt_fault::plan::SCALE_DEN,
        }],
    };
    Arc::new(FaultRuntime::new(topology, &plan, 0x4EA1))
}

/// `figures health`: COMM-PHOLD on 4 virtual nodes under each of the
/// three GVT algorithms, clean and with a deterministic node-straggle
/// plan, with a [`MetricsRegistry`] attached. Per series this writes the
/// per-epoch telemetry as tidy CSV (`metrics-<series>.csv`), JSON-lines
/// (`.jsonl`) and a Prometheus text-exposition snapshot of the final
/// epoch (`.prom`); the recorded stream is then replayed through
/// [`HealthMonitor`], whose alerts land in the report's `health` section
/// (and the `health_alerts` CSV column). The paired arms demonstrate the
/// monitor's contract: quiet on the clean runs, straggler/efficiency
/// alerts on the perturbed ones, annotated with the fault signature.
pub fn health_experiment(scale: &Scale, out_dir: Option<&std::path::Path>) -> Vec<Row> {
    let nodes = 4u16;
    // Anchor the straggle window on the clean Mattern makespan (same
    // discipline as `fault_sweep`) so one plan covers every algorithm.
    let cfg0 = base_config(nodes, MpiMode::Dedicated, 25, scale);
    let clean = run_one(GvtKind::Mattern, &comm_dominated(&cfg0), cfg0);
    let span = WallNs(((clean.sim_seconds * 1e9) as u64).max(1_000_000));
    let topology = FaultTopology::from(&cfg0.spec);

    type HealthRun = (RunReport, Vec<MetricsEpoch>);
    let mut labels: Vec<(String, bool)> = Vec::new();
    let mut jobs: Vec<Box<dyn FnOnce() -> HealthRun + Send>> = Vec::new();
    for &(kind, mode, series) in &THREE_ALGORITHMS {
        for straggled in [false, true] {
            let scale = *scale;
            let out = out_dir.map(std::path::Path::to_path_buf);
            let tag = format!("{series}-{}", if straggled { "straggle" } else { "clean" });
            labels.push((tag.clone(), straggled));
            jobs.push(Box::new(move || {
                let cfg = base_config(nodes, mode, 25, &scale);
                let workload = comm_dominated(&cfg);
                let mut registry = MetricsRegistry::new()
                    .with_label("algorithm", series)
                    .with_label("series", tag.clone())
                    .with_label("workload", workload.name.clone())
                    .with_label("nodes", nodes.to_string())
                    .with_label("workers", cfg.spec.total_workers().to_string());
                if let Some(dir) = &out {
                    registry = registry
                        .with_csv(dir.join(format!("metrics-{tag}.csv")))
                        .expect("create metrics csv")
                        .with_jsonl(dir.join(format!("metrics-{tag}.jsonl")))
                        .expect("create metrics jsonl")
                        .with_prometheus(dir.join(format!("metrics-{tag}.prom")));
                }
                let registry = Arc::new(registry);
                let faults = straggled.then(|| health_straggle_injector(topology, span));
                let report = run_one_observed(kind, &workload, cfg, faults, registry.clone());
                let epochs = registry.epochs();
                (report, epochs)
            }));
        }
    }
    let runs = runner::par_map(jobs, sweep_threads());

    // All reporting happens serially after collection (same discipline as
    // `trace_experiment`): deterministic output whatever the thread count.
    let mut rows = Vec::new();
    for ((tag, straggled), (mut report, epochs)) in labels.into_iter().zip(runs) {
        let mut monitor = HealthMonitor::default();
        if straggled {
            monitor.set_fault_context(format!(
                "node-straggle node=1 x{}",
                HEALTH_STRAGGLE_NUM / cagvt_fault::plan::SCALE_DEN
            ));
        }
        monitor.observe_all(&epochs);
        report.health = monitor.report_lines();
        let sync_epochs = epochs.iter().filter(|e| e.mode == EpochMode::Sync).count();
        eprintln!(
            "# health {tag}: {} epochs ({sync_epochs} sync), {} alerts",
            epochs.len(),
            report.health.len(),
        );
        for alert in &report.health {
            eprintln!("#   ! {alert}");
        }
        rows.push(Row { figure: "health", series: tag, nodes, report });
    }
    rows
}

/// MPI-mode ablation including the `PerWorker` pathology that motivates
/// the dedicated MPI thread.
pub fn mpi_modes(scale: &Scale) -> Vec<Row> {
    let mut specs = Vec::new();
    for (make, wname) in [(comp_dominated as WorkloadFn, "comp"), (comm_dominated, "comm")] {
        for mode in [MpiMode::Dedicated, MpiMode::InlineWorker, MpiMode::PerWorker] {
            let nodes = *NODE_COUNTS.last().expect("non-empty");
            let scale = *scale;
            specs.push(RunSpec::new(
                "mpi-modes",
                format!("{wname}-{}", mode.label()),
                nodes,
                move || {
                    let cfg = base_config(nodes, mode, 25, &scale);
                    run_one(GvtKind::Mattern, &make(&cfg), cfg)
                },
            ));
        }
    }
    runner::execute(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_respects_scale() {
        let scale = Scale::bench();
        let cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
        assert_eq!(cfg.spec.nodes, 2);
        assert_eq!(cfg.spec.workers_per_node, 12);
        assert_eq!(cfg.lps_per_worker, 32);
        assert_eq!(cfg.gvt_interval, 25);
        cfg.validate();
    }

    #[test]
    fn row_csv_is_well_formed() {
        let scale = Scale::bench();
        let cfg = base_config(1, MpiMode::Dedicated, 25, &scale);
        let workload = comp_dominated(&cfg);
        let report = run_one(GvtKind::Mattern, &workload, cfg);
        let row = Row { figure: "test", series: "s".into(), nodes: 1, report };
        let fields = row.csv().split(',').count();
        assert_eq!(fields, Row::csv_header().split(',').count());
    }
}
