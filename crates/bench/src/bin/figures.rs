//! Regenerate the paper's figures and tables as CSV.
//!
//! ```text
//! figures [all | fig3 fig4 fig5 fig6 fig8 fig9 fig10 fig11 fig12
//!          stats epg-sweep ca-trace threshold-sweep interval-sweep
//!          mpi-modes] [--paper] [--bench-scale] [--out DIR]
//! ```
//!
//! Default scale keeps the paper's 60-workers-per-node shape with a
//! reduced LP count and horizon; `--paper` runs the full 128-LPs-per-worker
//! geometry (slow). Rows print to stdout; with `--out DIR` each figure is
//! additionally written to `DIR/<figure>.csv`.

use cagvt_bench::{
    base_config, ca_queue, epg_sweep, fig10, fig11, fig12, fig3, fig4, fig5, fig6, fig8, fig9,
    interval_sweep, mpi_modes, run_one, samadi, stats_table, threshold_sweep, Row, Scale,
};
use cagvt_models::presets::comm_dominated;
use cagvt_net::MpiMode;
use std::io::Write;

fn ca_trace(scale: &Scale) -> Vec<Row> {
    // §6 text: CA-GVT's sync/async mode trace on the communication-
    // dominated workload.
    let nodes = 8;
    let cfg = base_config(nodes, MpiMode::Dedicated, 25, scale);
    let workload = comm_dominated(&cfg);
    let report = run_one(cagvt_bench::CA_HARNESS, &workload, cfg);
    eprintln!(
        "# ca-trace: {} rounds total, {} synchronous, {} asynchronous, final efficiency {:.2}%",
        report.gvt_rounds,
        report.sync_rounds,
        report.async_rounds,
        report.efficiency * 100.0
    );
    vec![Row { figure: "ca-trace", series: "ca-gvt".into(), nodes, report }]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    let mut out_dir: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();

    // `figures summarize [DIR]` prints the paper-vs-measured headline
    // table from previously generated CSVs.
    if args.first().map(|s| s.as_str()) == Some("summarize") {
        let dir = args.get(1).cloned().unwrap_or_else(|| "results".to_string());
        match cagvt_bench::summary::summarize(std::path::Path::new(&dir)) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("summarize failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => scale = Scale::paper(),
            "--bench-scale" => scale = Scale::bench(),
            "--out" => {
                out_dir = Some(it.next().expect("--out needs a directory").clone());
            }
            other => selected.push(other.to_string()),
        }
    }
    // "all" expands to every paper experiment (ablations stay opt-in but
    // can be combined with it on the same command line).
    let core_set: Vec<String> = [
        "fig3", "fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12",
        "stats", "epg-sweep", "ca-trace",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if selected.is_empty() {
        selected = core_set;
    } else if selected.iter().any(|s| s == "all") {
        let tail: Vec<String> = selected.iter().filter(|s| *s != "all").cloned().collect();
        selected = core_set;
        for t in tail {
            if !selected.contains(&t) {
                selected.push(t);
            }
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    println!("{}", Row::csv_header());
    for name in &selected {
        let t0 = std::time::Instant::now();
        let rows = match name.as_str() {
            "fig3" => fig3(&scale),
            "fig4" => fig4(&scale),
            "fig5" => fig5(&scale),
            "fig6" => fig6(&scale),
            "fig8" => fig8(&scale),
            "fig9" => fig9(&scale),
            "fig10" => fig10(&scale),
            "fig11" => fig11(&scale),
            "fig12" => fig12(&scale),
            "stats" => stats_table(&scale),
            "epg-sweep" => epg_sweep(&scale),
            "ca-trace" => ca_trace(&scale),
            "threshold-sweep" => threshold_sweep(&scale),
            "ca-queue" => ca_queue(&scale),
            "samadi" => samadi(&scale),
            "interval-sweep" => interval_sweep(&scale),
            "mpi-modes" => mpi_modes(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        for row in &rows {
            println!("{}", row.csv());
        }
        eprintln!("# {name}: {} rows in {:.1}s", rows.len(), t0.elapsed().as_secs_f64());
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{name}.csv");
            let mut f = std::fs::File::create(&path).expect("create figure csv");
            writeln!(f, "{}", Row::csv_header()).unwrap();
            for row in &rows {
                writeln!(f, "{}", row.csv()).unwrap();
            }
        }
    }
}
