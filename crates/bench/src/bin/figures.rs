//! Regenerate the paper's figures and tables as CSV.
//!
//! ```text
//! figures [all | <mode>...] [--paper] [--bench-scale] [--out DIR]
//! figures summarize [DIR]
//! figures gate [DIR | SUMMARY BASELINE]
//! ```
//!
//! Run with an unknown mode name to print the full mode list. Default
//! scale keeps the paper's 60-workers-per-node shape with a reduced LP
//! count and horizon; `--paper` runs the full 128-LPs-per-worker geometry
//! (slow). Rows print to stdout; with `--out DIR` each figure is
//! additionally written to `DIR/<figure>.csv`.
//!
//! Sweeps run on `CAGVT_SWEEP_THREADS` OS threads (default: one per host
//! core; `1` is the serial runner — row order is identical either way).
//! Every invocation writes `BENCH_summary.json` (per-figure wall-clock,
//! runs/sec, committed events) next to the CSVs; a serial invocation also
//! records `BENCH_serial_baseline.json`, against which later parallel
//! invocations report per-figure speedup.

use cagvt_bench::bench_summary::{
    gate, BenchSummary, FigureBench, BASELINE_FILE, GATE_TOLERANCE, SUMMARY_FILE,
};
use cagvt_bench::{
    base_config, ca_queue, epg_sweep, fault_sweep, fig10, fig11, fig12, fig3, fig4, fig5, fig6,
    fig8, fig9, interval_sweep, mpi_modes, run_one, samadi, stats_table, sweep_threads,
    threshold_sweep, Row, Scale,
};
use cagvt_models::presets::comm_dominated;
use cagvt_net::MpiMode;
use std::io::Write;

fn ca_trace(scale: &Scale) -> Vec<Row> {
    // §6 text: CA-GVT's sync/async mode trace on the communication-
    // dominated workload.
    let nodes = 8;
    let cfg = base_config(nodes, MpiMode::Dedicated, 25, scale);
    let workload = comm_dominated(&cfg);
    let report = run_one(cagvt_bench::CA_HARNESS, &workload, cfg);
    eprintln!(
        "# ca-trace: {} rounds total, {} synchronous, {} asynchronous, final efficiency {:.2}%",
        report.gvt_rounds,
        report.sync_rounds,
        report.async_rounds,
        report.efficiency * 100.0
    );
    vec![Row { figure: "ca-trace", series: "ca-gvt".into(), nodes, report }]
}

/// One runnable experiment mode.
struct Mode {
    name: &'static str,
    /// Included in the default run and in `all` (ablations stay opt-in).
    core: bool,
    run: fn(&Scale) -> Vec<Row>,
}

/// The single source of truth for every mode the binary knows: the
/// dispatcher, the `all` expansion and the unknown-mode listing all read
/// this table.
const MODES: &[Mode] = &[
    Mode { name: "fig3", core: true, run: fig3 },
    Mode { name: "fig4", core: true, run: fig4 },
    Mode { name: "fig5", core: true, run: fig5 },
    Mode { name: "fig6", core: true, run: fig6 },
    Mode { name: "fig8", core: true, run: fig8 },
    Mode { name: "fig9", core: true, run: fig9 },
    Mode { name: "fig10", core: true, run: fig10 },
    Mode { name: "fig11", core: true, run: fig11 },
    Mode { name: "fig12", core: true, run: fig12 },
    Mode { name: "stats", core: true, run: stats_table },
    Mode { name: "epg-sweep", core: true, run: epg_sweep },
    Mode { name: "ca-trace", core: true, run: ca_trace },
    Mode { name: "threshold-sweep", core: false, run: threshold_sweep },
    Mode { name: "ca-queue", core: false, run: ca_queue },
    Mode { name: "samadi", core: false, run: samadi },
    Mode { name: "interval-sweep", core: false, run: interval_sweep },
    Mode { name: "mpi-modes", core: false, run: mpi_modes },
    Mode { name: "faults", core: false, run: fault_sweep },
];

fn find_mode(name: &str) -> Option<&'static Mode> {
    MODES.iter().find(|m| m.name == name)
}

fn mode_list() -> String {
    let mut names: Vec<&str> = MODES.iter().map(|m| m.name).collect();
    // `trace` and `health` need the output directory, so they dispatch
    // outside the MODES table (see main) but are first-class modes to the
    // user.
    names.push("trace");
    names.push("health");
    names.join(" ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default();
    let mut out_dir: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();

    // `figures summarize [DIR]` prints the paper-vs-measured headline
    // table from previously generated CSVs.
    if args.first().map(|s| s.as_str()) == Some("summarize") {
        let dir = args.get(1).cloned().unwrap_or_else(|| "results".to_string());
        match cagvt_bench::summary::summarize(std::path::Path::new(&dir)) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("summarize failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // `figures gate [DIR | SUMMARY BASELINE]` compares a bench summary
    // against the recorded serial baseline and prints per-figure
    // wall-clock regressions past the tolerance. Warnings exit 0 — the
    // gate informs, the humans decide; only unusable inputs exit nonzero.
    if args.first().map(|s| s.as_str()) == Some("gate") {
        let (summary_path, baseline_path) = match (args.get(1), args.get(2)) {
            (Some(s), Some(b)) => (std::path::PathBuf::from(s), std::path::PathBuf::from(b)),
            _ => {
                let dir =
                    std::path::PathBuf::from(args.get(1).cloned().unwrap_or_else(|| ".".into()));
                (dir.join(SUMMARY_FILE), dir.join(BASELINE_FILE))
            }
        };
        match gate(&summary_path, &baseline_path, GATE_TOLERANCE) {
            Ok(warnings) if warnings.is_empty() => {
                eprintln!("# bench gate: no figure regressed past {GATE_TOLERANCE:.2}x");
            }
            Ok(warnings) => {
                for w in &warnings {
                    println!("::warning::bench regression {w}");
                }
                eprintln!("# bench gate: {} figure(s) regressed (warning only)", warnings.len());
            }
            Err(e) => {
                eprintln!("gate failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut scale_label = "default";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" => {
                scale = Scale::paper();
                scale_label = "paper";
            }
            "--bench-scale" => {
                scale = Scale::bench();
                scale_label = "bench";
            }
            "--out" => {
                out_dir = Some(it.next().expect("--out needs a directory").clone());
            }
            other => selected.push(other.to_string()),
        }
    }
    // "all" expands to every paper experiment (ablations stay opt-in but
    // can be combined with it on the same command line).
    let core_set: Vec<String> =
        MODES.iter().filter(|m| m.core).map(|m| m.name.to_string()).collect();
    if selected.is_empty() {
        selected = core_set;
    } else if selected.iter().any(|s| s == "all") {
        let tail: Vec<String> = selected.iter().filter(|s| *s != "all").cloned().collect();
        selected = core_set;
        for t in tail {
            if !selected.contains(&t) {
                selected.push(t);
            }
        }
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    let threads = sweep_threads();
    let summary_dir = out_dir.clone().map(std::path::PathBuf::from).unwrap_or_else(|| ".".into());
    let mut summary = BenchSummary::new(scale_label, threads);
    summary.load_baseline(&summary_dir);
    eprintln!("# sweep threads: {threads}");

    println!("{}", Row::csv_header());
    for name in &selected {
        let t0 = std::time::Instant::now();
        let rows = if name == "trace" {
            // Dispatched outside the MODES table: the exporters write
            // per-algorithm Chrome traces and the horizon CSV to --out.
            cagvt_bench::trace_experiment(&scale, out_dir.as_deref().map(std::path::Path::new))
        } else if name == "health" {
            // Likewise: writes per-series epoch CSV/JSONL/Prometheus
            // telemetry to --out and runs the health rules over it.
            cagvt_bench::health_experiment(&scale, out_dir.as_deref().map(std::path::Path::new))
        } else {
            let Some(mode) = find_mode(name) else {
                eprintln!("unknown experiment: {name}");
                eprintln!("available modes: all {}", mode_list());
                std::process::exit(2);
            };
            (mode.run)(&scale)
        };
        let wall_s = t0.elapsed().as_secs_f64();
        for row in &rows {
            println!("{}", row.csv());
        }
        eprintln!("# {name}: {} rows in {wall_s:.1}s", rows.len());
        summary.push(FigureBench::from_rows(name, wall_s, &rows));
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{name}.csv");
            let mut f = std::fs::File::create(&path).expect("create figure csv");
            writeln!(f, "{}", Row::csv_header()).unwrap();
            for row in &rows {
                writeln!(f, "{}", row.csv()).unwrap();
            }
        }
    }

    // Bench trajectory: the summary always, the serial baseline only when
    // this invocation *is* the serial runner (what speedups compare to).
    std::fs::write(summary_dir.join(SUMMARY_FILE), summary.to_json()).expect("write bench summary");
    if threads == 1 {
        std::fs::write(summary_dir.join(BASELINE_FILE), summary.baseline_json())
            .expect("write serial baseline");
    }
    eprintln!(
        "# bench summary: {} figures, {:.1}s wall, {} committed events -> {}",
        summary.figures.len(),
        summary.total_wall_s(),
        summary.total_committed(),
        summary_dir.join(SUMMARY_FILE).display(),
    );
}
