//! Quick calibration probe: one run, full report dump.
use cagvt_bench::{base_config, run_one, Scale};
use cagvt_gvt::GvtKind;
use cagvt_models::presets::{comm_dominated, comp_dominated, mixed_model};
use cagvt_net::MpiMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = match args.first().map(|s| s.as_str()) {
        Some("barrier") => GvtKind::Barrier,
        Some("ca") => cagvt_bench::CA_HARNESS,
        _ => GvtKind::Mattern,
    };
    let workload_name = args.get(1).map(|s| s.as_str()).unwrap_or("comp");
    let nodes: u16 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let scale = Scale::default();
    let cfg = base_config(nodes, MpiMode::Dedicated, 25, &scale);
    let workload = match workload_name {
        "comm" => comm_dominated(&cfg),
        "mixed" => mixed_model(&cfg, 10.0, 15.0),
        "mixed1" => {
            use cagvt_models::phold::{PhaseSchedule, PholdModel, Topology};
            use cagvt_models::presets::{Workload, COMM_PARAMS, COMP_PARAMS};
            Workload {
                name: "mixed1".into(),
                model: PholdModel::new(
                    Topology {
                        lps_per_worker: cfg.lps_per_worker,
                        workers_per_node: cfg.spec.workers_per_node,
                        nodes: cfg.spec.nodes,
                    },
                    PhaseSchedule::alternating_cycles(10.0, COMP_PARAMS, 15.0, COMM_PARAMS, 1),
                ),
                gvt_interval: 25,
            }
        }
        _ => comp_dominated(&cfg),
    };
    let r = run_one(kind, &workload, cfg);
    println!("{r}");
    println!(
        "steady_rate={:.0} window_rounds={} gvt_rounds={} req_interval={} req_idle={} throttled={}",
        r.steady_rate,
        r.window_rounds,
        r.gvt_rounds,
        r.requests_interval,
        r.requests_idle,
        r.throttled_steps
    );
}
