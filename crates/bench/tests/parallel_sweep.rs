//! Serial/parallel equivalence of the sweep runner: the same spec grid
//! executed on one thread and on several must produce byte-identical CSV
//! rows, in the same order. This is the contract that lets the figure
//! harness parallelize without perturbing any published artifact.

use cagvt_bench::{base_config, execute_with, run_one, RunSpec, Scale};
use cagvt_gvt::GvtKind;
use cagvt_models::presets::{comm_dominated, comp_dominated};
use cagvt_net::MpiMode;

/// A small but non-trivial grid: two algorithms, two workloads, two node
/// counts — eight deterministic runs, each with rollback traffic.
fn tiny_specs() -> Vec<RunSpec> {
    let scale = Scale::bench();
    let mut specs = Vec::new();
    for (kind, series) in [(GvtKind::Mattern, "mattern"), (GvtKind::Barrier, "barrier")] {
        for (make, wname) in
            [(comp_dominated as fn(&_) -> _, "comp"), (comm_dominated as fn(&_) -> _, "comm")]
        {
            for nodes in [1u16, 2] {
                specs.push(RunSpec::new("ident", format!("{wname}-{series}"), nodes, move || {
                    let cfg = base_config(nodes, MpiMode::Dedicated, 25, &scale);
                    run_one(kind, &make(&cfg), cfg)
                }));
            }
        }
    }
    specs
}

#[test]
fn parallel_rows_are_byte_identical_to_serial() {
    let serial: Vec<String> = execute_with(tiny_specs(), 1).iter().map(|r| r.csv()).collect();
    let parallel: Vec<String> = execute_with(tiny_specs(), 4).iter().map(|r| r.csv()).collect();
    assert_eq!(serial.len(), 8);
    assert_eq!(serial, parallel, "thread count must not perturb any CSV byte");
}

#[test]
fn parallel_reports_match_serial_fingerprints() {
    // Beyond the CSV projection: the full simulation outcome (state
    // fingerprint, committed counts, final GVT) is thread-count-invariant.
    let serial = execute_with(tiny_specs(), 1);
    let parallel = execute_with(tiny_specs(), 3);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.report.state_fingerprint, p.report.state_fingerprint, "{}", s.series);
        assert_eq!(s.report.committed, p.report.committed, "{}", s.series);
        assert_eq!(s.report.final_gvt, p.report.final_gvt, "{}", s.series);
    }
}
