//! Bench-scale integration test of the metrics/health pipeline: the
//! `figures health` experiment must emit parseable telemetry for every
//! series, fire the straggler rule under the node-straggle plan, and stay
//! straggler-quiet on the clean arms.

use cagvt_bench::{health_experiment, Row, Scale};
use cagvt_metrics::parse_exposition;
use std::path::PathBuf;

fn scratch_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("cagvt-health-it-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn health_experiment_detects_the_straggling_node_and_exports_telemetry() {
    let dir = scratch_dir();
    let rows = health_experiment(&Scale::bench(), Some(&dir));
    assert_eq!(rows.len(), 6, "three algorithms x clean/straggle");

    let straggler_alerts =
        |row: &Row| row.report.health.iter().filter(|a| a.starts_with("straggler:")).count();
    let mut straggle_hits = 0;
    for row in &rows {
        let clean = row.series.ends_with("-clean");
        if clean {
            assert_eq!(
                straggler_alerts(row),
                0,
                "clean series {} must be straggler-quiet: {:?}",
                row.series,
                row.report.health,
            );
        } else {
            let hits = straggler_alerts(row);
            straggle_hits += hits;
            if hits > 0 {
                // Alerts carry the fault signature and land in the CSV count.
                assert!(
                    row.report.health.iter().any(|a| a.contains("fault plan active")),
                    "straggle alerts must carry the fault signature: {:?}",
                    row.report.health,
                );
                assert!(row.csv().ends_with(&format!(",{}", row.report.health.len())));
            }
        }

        // Per-series telemetry: epoch CSV with the stable header, JSONL
        // with one object per line, and a Prometheus snapshot that parses.
        let csv = std::fs::read_to_string(dir.join(format!("metrics-{}.csv", row.series))).unwrap();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(cagvt_metrics::epoch_csv_header()));
        let epoch_rows = lines.count();
        assert!(epoch_rows > 0, "series {} recorded no epochs", row.series);

        let jsonl =
            std::fs::read_to_string(dir.join(format!("metrics-{}.jsonl", row.series))).unwrap();
        assert_eq!(jsonl.lines().count(), epoch_rows, "JSONL and CSV row counts agree");

        let prom =
            std::fs::read_to_string(dir.join(format!("metrics-{}.prom", row.series))).unwrap();
        let samples = parse_exposition(&prom)
            .unwrap_or_else(|e| panic!("series {} snapshot must parse: {e}", row.series));
        let round = samples.iter().find(|s| s.name == "cagvt_gvt_round").unwrap();
        assert_eq!(round.value, epoch_rows as f64, "snapshot is the last epoch");
        assert_eq!(round.label("series"), Some(row.series.as_str()));
    }
    assert!(
        straggle_hits > 0,
        "at least one straggled series must trip the straggler rule: {:?}",
        rows.iter().map(|r| (&r.series, &r.report.health)).collect::<Vec<_>>(),
    );

    // The CA-GVT arms carry controller decisions in their epoch streams:
    // under the straggle plan the comm workload degrades and at least one
    // round goes synchronous, visible as mode=sync in the epoch CSV.
    let ca = std::fs::read_to_string(dir.join("metrics-ca-gvt-straggle.csv")).unwrap();
    assert!(ca.lines().skip(1).any(|l| l.contains(",sync,A+B+C,")), "no sync epoch in:\n{ca}");

    std::fs::remove_dir_all(&dir).ok();
}
