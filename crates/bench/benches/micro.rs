//! Microbenchmarks of the engine's hot structures: pending-set operations,
//! rollback, RNG, mailbox, and the EPG-sweep configuration from the
//! paper's §4 text (Barrier GVT time vs event granularity).

use cagvt_base::ids::{EventId, LpId};
use cagvt_base::rng::Pcg32;
use cagvt_base::time::{VirtualTime, WallNs};
use cagvt_base::{NullMetrics, NullTrace};
use cagvt_bench::{base_config, run_one, run_one_observed, run_one_traced, Scale};
use cagvt_core::event::Event;
use cagvt_core::queue::PendingSet;
use cagvt_gvt::GvtKind;
use cagvt_metrics::MetricsRegistry;
use cagvt_models::phold::{PhaseSchedule, PholdModel, PholdParams, Topology};
use cagvt_models::presets::Workload;
use cagvt_net::{Mailbox, MpiMode};
use cagvt_trace::TraceRecorder;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

fn ev(t: f64, seq: u64) -> Event<u32> {
    Event {
        recv_time: VirtualTime::new(t),
        dst: LpId(0),
        id: EventId::new(LpId(0), seq),
        payload: 0,
    }
}

fn pending_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("pending_set");
    group.bench_function("insert_pop_1k", |b| {
        let mut rng = Pcg32::new(1, 1);
        b.iter_batched(
            || (0..1_000).map(|i| ev(rng.next_f64() * 100.0, i)).collect::<Vec<_>>(),
            |events| {
                let mut ps = PendingSet::new();
                for e in events {
                    ps.insert(e);
                }
                while ps.pop_min().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("cancel_half_1k", |b| {
        let mut rng = Pcg32::new(2, 2);
        b.iter_batched(
            || (0..1_000).map(|i| ev(rng.next_f64() * 100.0, i)).collect::<Vec<_>>(),
            |events| {
                let mut ps = PendingSet::new();
                let keys: Vec<_> = events.iter().map(|e| e.key()).collect();
                for e in events {
                    ps.insert(e);
                }
                for k in keys.iter().step_by(2) {
                    ps.cancel(*k);
                }
                while ps.pop_min().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn rng_and_mailbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.bench_function("pcg32_exp_draws_1k", |b| {
        let mut rng = Pcg32::new(3, 3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.next_exp(1.0);
            }
            acc
        })
    });
    group.bench_function("mailbox_push_pop_1k", |b| {
        b.iter(|| {
            let mb: Mailbox<u64> = Mailbox::new();
            for i in 0..1_000u64 {
                mb.push(WallNs(i), i);
            }
            let mut n = 0;
            while mb.pop_ready(WallNs(u64::MAX)).is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

/// Paper §4 text: Barrier GVT function time grows with EPG (10K -> 40K).
fn epg_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("epg_sweep_barrier");
    group.sample_size(10);
    let scale = Scale::bench();
    for epg in [10_000u64, 40_000] {
        group.bench_function(format!("epg_{epg}"), |b| {
            b.iter(|| {
                let cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
                let workload = Workload {
                    name: format!("epg-{epg}"),
                    model: PholdModel::new(
                        Topology {
                            lps_per_worker: cfg.lps_per_worker,
                            workers_per_node: cfg.spec.workers_per_node,
                            nodes: cfg.spec.nodes,
                        },
                        PhaseSchedule::constant(PholdParams::new(0.10, 0.01, epg)),
                    ),
                    gvt_interval: 25,
                };
                run_one(GvtKind::Barrier, &workload, cfg)
            })
        });
    }
    group.finish();
}

/// The three rollback strategies on a rollback-heavy PHOLD run: per-event
/// snapshots vs reverse computation vs periodic state saving. Results are
/// identical (the test suite proves it); this measures the host-side cost
/// difference of the history machinery.
fn rollback_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_strategy");
    group.sample_size(10);
    let scale = Scale::bench();
    for (name, periodic, force_snapshot) in
        [("reverse", None, false), ("snapshot", None, true), ("periodic_16", Some(16u32), false)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
                cfg.periodic_snapshot = periodic;
                cfg.force_snapshot = force_snapshot;
                let workload = cagvt_models::presets::comm_dominated(&cfg);
                run_one(GvtKind::Mattern, &workload, cfg)
            })
        });
    }
    group.finish();
}

/// Cost of the tracing hook when no one is listening: the same run with no
/// sink installed, with the disabled [`NullTrace`] sink (one `enabled()`
/// branch per hook), and with the full ring-buffer recorder. The first two
/// must be within noise of each other — that is the subsystem's
/// zero-overhead contract.
fn trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    let scale = Scale::bench();
    let run = |trace: Option<Arc<dyn cagvt_base::TraceSink>>| {
        let cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
        let workload = cagvt_models::presets::comm_dominated(&cfg);
        match trace {
            None => run_one(cagvt_gvt::GvtKind::Mattern, &workload, cfg),
            Some(t) => run_one_traced(cagvt_gvt::GvtKind::Mattern, &workload, cfg, t),
        }
    };
    group.bench_function("no_sink", |b| b.iter(|| run(None)));
    group.bench_function("null_sink", |b| b.iter(|| run(Some(Arc::new(NullTrace)))));
    group.bench_function("ring_recorder", |b| b.iter(|| run(Some(TraceRecorder::new()))));
    group.finish();
}

/// Cost of the metrics hook when no one is listening: the same run with no
/// sink installed, with the disabled [`NullMetrics`] sink (one `enabled()`
/// branch per GVT round) and with the full in-memory registry. The first
/// two must be within noise of each other — same zero-overhead contract as
/// `trace_overhead`; even the registry is cheap because the hook fires per
/// GVT round, not per event.
fn metrics_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    group.sample_size(10);
    let scale = Scale::bench();
    let run = |metrics: Option<Arc<dyn cagvt_base::MetricsSink>>| {
        let cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
        let workload = cagvt_models::presets::comm_dominated(&cfg);
        match metrics {
            None => run_one(cagvt_gvt::GvtKind::Mattern, &workload, cfg),
            Some(m) => run_one_observed(cagvt_gvt::GvtKind::Mattern, &workload, cfg, None, m),
        }
    };
    group.bench_function("no_sink", |b| b.iter(|| run(None)));
    group.bench_function("null_sink", |b| b.iter(|| run(Some(Arc::new(NullMetrics)))));
    group.bench_function("registry", |b| b.iter(|| run(Some(Arc::new(MetricsRegistry::new())))));
    group.finish();
}

criterion_group!(
    benches,
    pending_set,
    rng_and_mailbox,
    epg_sweep,
    rollback_strategies,
    trace_overhead,
    metrics_overhead
);
criterion_main!(benches);
