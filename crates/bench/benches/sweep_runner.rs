//! Criterion group for the parallel sweep runner: one figure grid executed
//! serially and with a small thread pool, so the harness's own speedup (the
//! quantity `BENCH_summary.json` tracks) is measured under Criterion too.

use cagvt_bench::{base_config, execute_with, run_one, RunSpec, Scale, NODE_COUNTS};
use cagvt_gvt::GvtKind;
use cagvt_models::presets::comp_dominated;
use cagvt_net::MpiMode;
use criterion::{criterion_group, criterion_main, Criterion};

/// The fig5 grid (Mattern vs Barrier over the node-count axis) at bench
/// scale, as specs — the same shape `figures fig5` runs.
fn fig5_specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for (kind, series) in [(GvtKind::Mattern, "mattern"), (GvtKind::Barrier, "barrier")] {
        for &nodes in &NODE_COUNTS {
            specs.push(RunSpec::new("fig5", series.to_string(), nodes, move || {
                let cfg = base_config(nodes, MpiMode::Dedicated, 25, &Scale::bench());
                run_one(kind, &comp_dominated(&cfg), cfg)
            }));
        }
    }
    specs
}

fn sweep_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    group.bench_function("fig5_serial", |b| b.iter(|| execute_with(fig5_specs(), 1)));
    group.bench_function("fig5_threads_4", |b| b.iter(|| execute_with(fig5_specs(), 4)));
    group.finish();
}

criterion_group!(benches, sweep_runner);
criterion_main!(benches);
