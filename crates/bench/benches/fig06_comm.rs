//! Criterion bench for paper Figure 6 (Mattern vs Barrier, communication-dominated).
//!
//! Times a scaled-down instance of the figure's configuration (2 nodes at
//! [`Scale::bench`] geometry) — tracking engine throughput regressions,
//! not reproducing the figure itself (use the `figures` binary for that).

use cagvt_bench::{base_config, run_one, Scale};
use cagvt_gvt::GvtKind;
use cagvt_models::presets::comm_dominated;
use cagvt_net::MpiMode;
use criterion::{criterion_group, criterion_main, Criterion};

#[allow(unused)]
fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    let mut group = c.benchmark_group("Figure 6");
    group.sample_size(10);
    group.bench_function("mattern", |b| {
        b.iter(|| {
            let cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
            let workload = comm_dominated(&cfg);
            run_one(GvtKind::Mattern, &workload, cfg)
        })
    });
    group.bench_function("barrier", |b| {
        b.iter(|| {
            let cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
            let workload = comm_dominated(&cfg);
            run_one(GvtKind::Barrier, &workload, cfg)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
