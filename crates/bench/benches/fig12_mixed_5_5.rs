//! Criterion bench for paper Figure 12 (5-5 mixed model).
//!
//! Times a scaled-down instance of the figure's configuration (2 nodes at
//! [`Scale::bench`] geometry) — tracking engine throughput regressions,
//! not reproducing the figure itself (use the `figures` binary for that).

use cagvt_bench::{base_config, run_one, Scale};
use cagvt_gvt::GvtKind;
use cagvt_models::presets::mixed_model;
use cagvt_net::MpiMode;
use criterion::{criterion_group, criterion_main, Criterion};

#[allow(unused)]
fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    let mut group = c.benchmark_group("Figure 12");
    group.sample_size(10);
    group.bench_function("ca-gvt", |b| {
        b.iter(|| {
            let cfg = base_config(2, MpiMode::Dedicated, 25, &scale);
            let workload = mixed_model(&cfg, 5.0, 5.0);
            run_one(GvtKind::CA_DEFAULT, &workload, cfg)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
