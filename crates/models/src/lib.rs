//! Simulation models for the CA-GVT engine.
//!
//! * [`phold`] — the paper's evaluation workload: the classic PHOLD
//!   benchmark modified (as in the paper) with controllable regional /
//!   remote message percentages, event processing granularity (EPG), and
//!   phase-alternating mixed modes (the `X-Y` models of §6).
//! * [`epidemic`] — an SIR epidemic over a ring of regions; a
//!   computation-leaning domain model used by the examples.
//! * [`cqn`] — the classic closed queueing network benchmark (tandem
//!   queues with probabilistic switching); closed job population makes it
//!   a sharp correctness probe.
//! * [`pcs`] — a personal communication services (cellular) model with
//!   call arrivals, completions and handoffs between neighbouring cells; a
//!   communication-leaning domain model.
//! * [`traffic`] — a grid of signalized intersections on a torus (the
//!   ROSS demo family): neighbour-only traffic with a 2-D locality
//!   pattern.
//! * [`presets`] — the exact workload parameterizations the paper's
//!   evaluation section uses (COMP, COMM, and the 10-15 / 15-10 / 5-5
//!   mixed models), plus matching `SimConfig` defaults.

pub mod cqn;
pub mod epidemic;
pub mod pcs;
pub mod phold;
pub mod presets;
pub mod traffic;

pub use cqn::CqnModel;
pub use epidemic::EpidemicModel;
pub use pcs::PcsModel;
pub use phold::{PhaseSchedule, PholdModel, PholdParams, Topology};
pub use presets::{comm_dominated, comp_dominated, mixed_model, Workload};
pub use traffic::TrafficModel;
