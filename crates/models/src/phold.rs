//! Modified PHOLD (Fujimoto 1990), as parameterized by the paper.
//!
//! Every LP holds one circulating event (each processed event emits
//! exactly one successor, so the event population is constant). On each
//! event the LP draws a destination class — **local** (itself),
//! **regional** (an LP on another worker of the same node), or **remote**
//! (an LP on another node) — with configured probabilities, a timestamp
//! increment `lookahead + Exp(mean)`, and reports the configured EPG as
//! its processing cost.
//!
//! The paper's mixed `X-Y` models alternate between a
//! computation-dominated and a communication-dominated parameter set over
//! the run; [`PhaseSchedule`] drives that from virtual-time progress (the
//! paper phases on wall-clock execution time — virtual progress is the
//! deterministic stand-in, see DESIGN.md §2).

use cagvt_base::ids::LpId;
use cagvt_base::rng::Pcg32;
use cagvt_core::model::{Emitter, EventCtx, Model};

/// Destination-class probabilities and event granularity of one phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PholdParams {
    /// Probability of a regional destination (same node, other worker).
    pub regional_pct: f64,
    /// Probability of a remote destination (other node).
    pub remote_pct: f64,
    /// Event processing granularity, in work units (~1 FLOP each).
    pub epg: u64,
}

impl PholdParams {
    pub fn new(regional_pct: f64, remote_pct: f64, epg: u64) -> Self {
        assert!(regional_pct >= 0.0 && remote_pct >= 0.0);
        assert!(regional_pct + remote_pct <= 1.0 + 1e-9, "class probabilities exceed 1");
        PholdParams { regional_pct, remote_pct, epg }
    }
}

/// Phase schedule over the run: `(weight, params)` segments cycling in
/// order, weights measured as fractions of one cycle.
#[derive(Clone, Debug)]
pub struct PhaseSchedule {
    segments: Vec<(f64, PholdParams)>,
    /// Length of one cycle as a fraction of the whole run (1.0 = the
    /// schedule spans the run once).
    cycle_fraction: f64,
}

impl PhaseSchedule {
    /// A single constant phase.
    pub fn constant(params: PholdParams) -> Self {
        PhaseSchedule { segments: vec![(1.0, params)], cycle_fraction: 1.0 }
    }

    /// The paper's `X-Y` mixed model: the first `x`% of the run in `a`,
    /// the next `y`% in `b`, repeating.
    pub fn alternating(x: f64, a: PholdParams, y: f64, b: PholdParams) -> Self {
        assert!(x > 0.0 && y > 0.0);
        let total = x + y;
        PhaseSchedule {
            segments: vec![(x / total, a), (y / total, b)],
            cycle_fraction: total / 100.0,
        }
    }

    /// `X-Y` alternation compressed to `cycles` repetitions over the whole
    /// run (phase *durations* relative to GVT rounds matter for the mixed
    /// experiments; at harness horizons the paper's literal percentages
    /// would make each phase shorter than a single GVT round).
    pub fn alternating_cycles(x: f64, a: PholdParams, y: f64, b: PholdParams, cycles: u32) -> Self {
        assert!(x > 0.0 && y > 0.0 && cycles >= 1);
        let total = x + y;
        PhaseSchedule {
            segments: vec![(x / total, a), (y / total, b)],
            cycle_fraction: 1.0 / cycles as f64,
        }
    }

    /// Parameters in effect at run progress `p` (in `[0, 1]`).
    pub fn at(&self, p: f64) -> PholdParams {
        let cycle_pos = (p / self.cycle_fraction).fract();
        let mut acc = 0.0;
        for (w, params) in &self.segments {
            acc += w;
            if cycle_pos < acc {
                return *params;
            }
        }
        self.segments.last().expect("schedule has segments").1
    }
}

/// Static LP placement facts the model needs to classify destinations.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    pub lps_per_worker: u32,
    pub workers_per_node: u16,
    pub nodes: u16,
}

impl Topology {
    #[inline]
    pub fn lps_per_node(&self) -> u32 {
        self.lps_per_worker * self.workers_per_node as u32
    }

    #[inline]
    pub fn total_lps(&self) -> u32 {
        self.lps_per_node() * self.nodes as u32
    }

    #[inline]
    fn node_of(&self, lp: LpId) -> u32 {
        lp.0 / self.lps_per_node()
    }

    #[inline]
    fn worker_of(&self, lp: LpId) -> u32 {
        lp.0 / self.lps_per_worker
    }
}

/// Per-LP state: class counters and an order-sensitive checksum used by
/// the equivalence tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PholdState {
    pub processed: u64,
    pub sent_local: u64,
    pub sent_regional: u64,
    pub sent_remote: u64,
    pub checksum: u64,
}

/// The modified PHOLD model.
#[derive(Clone, Debug)]
pub struct PholdModel {
    pub topo: Topology,
    pub schedule: PhaseSchedule,
    /// Minimum timestamp increment.
    pub lookahead: f64,
    /// Mean of the exponential part of the increment.
    pub mean_delay: f64,
}

impl PholdModel {
    pub fn new(topo: Topology, schedule: PhaseSchedule) -> Self {
        PholdModel { topo, schedule, lookahead: 0.1, mean_delay: 1.0 }
    }

    /// Draw a destination of the class selected by `params`.
    fn draw_destination(
        &self,
        me: LpId,
        params: &PholdParams,
        rng: &mut Pcg32,
    ) -> (LpId, &'static str) {
        let topo = &self.topo;
        let u = rng.next_f64();
        if u < params.remote_pct {
            if topo.nodes < 2 {
                // Remote class impossible on one node: degrade to local.
                return (me, "local");
            }
            // Remote: uniform over LPs of other nodes.
            let my_node = topo.node_of(me);
            let lpn = topo.lps_per_node();
            let other = rng.next_bounded(topo.total_lps() - lpn);
            let dst = if other >= my_node * lpn { other + lpn } else { other };
            (LpId(dst), "remote")
        } else if u < params.remote_pct + params.regional_pct {
            if topo.workers_per_node < 2 {
                return (me, "local");
            }
            // Regional: uniform over same-node LPs on other workers.
            let my_node = topo.node_of(me);
            let my_worker = topo.worker_of(me);
            let node_base = my_node * topo.lps_per_node();
            let worker_base_in_node = my_worker * topo.lps_per_worker - node_base;
            let other = rng.next_bounded(topo.lps_per_node() - topo.lps_per_worker);
            let within =
                if other >= worker_base_in_node { other + topo.lps_per_worker } else { other };
            (LpId(node_base + within), "regional")
        } else {
            // Local: the LP itself (the paper's fastest class).
            (me, "local")
        }
    }
}

impl Model for PholdModel {
    type State = PholdState;
    type Payload = u32;

    fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) -> PholdState {
        PholdState::default()
    }

    fn initial_events(
        &self,
        lp: LpId,
        _state: &mut PholdState,
        rng: &mut Pcg32,
        emit: &mut Emitter<u32>,
    ) {
        // One starting event per LP, to itself (paper §2).
        emit.emit(lp, self.lookahead + rng.next_exp(self.mean_delay), lp.0);
    }

    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut PholdState,
        payload: &u32,
        rng: &mut Pcg32,
        emit: &mut Emitter<u32>,
    ) -> u64 {
        let params = self.schedule.at(ctx.progress());
        state.processed += 1;
        state.checksum = state
            .checksum
            .wrapping_mul(0x100000001B3)
            .wrapping_add(*payload as u64)
            .wrapping_add(ctx.now.as_f64().to_bits());

        let (dst, class) = self.draw_destination(ctx.self_lp, &params, rng);
        match class {
            "local" => state.sent_local += 1,
            "regional" => state.sent_regional += 1,
            _ => state.sent_remote += 1,
        }
        emit.emit(dst, self.lookahead + rng.next_exp(self.mean_delay), payload.wrapping_add(1));
        params.epg
    }

    fn supports_reverse(&self) -> bool {
        true
    }

    /// Exact inverse of [`Self::handle`]: the scratch generator arrives at
    /// its pre-event position, so re-running the destination draw tells us
    /// which class counter the forward pass incremented, and the checksum
    /// fold is algebraically inverted (the FNV prime is odd, hence
    /// invertible modulo 2^64).
    fn reverse(&self, ctx: &EventCtx, state: &mut PholdState, payload: &u32, rng: &mut Pcg32) {
        const FNV_INV: u64 = 0xCE96_5057_AFF6_957B; // (0x100000001B3)^-1 mod 2^64
        let params = self.schedule.at(ctx.progress());
        let (_dst, class) = self.draw_destination(ctx.self_lp, &params, rng);
        match class {
            "local" => state.sent_local -= 1,
            "regional" => state.sent_regional -= 1,
            _ => state.sent_remote -= 1,
        }
        state.processed -= 1;
        state.checksum = state
            .checksum
            .wrapping_sub(ctx.now.as_f64().to_bits())
            .wrapping_sub(*payload as u64)
            .wrapping_mul(FNV_INV);
    }

    fn state_fingerprint(&self, state: &PholdState) -> u64 {
        state
            .processed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(state.sent_local)
            .wrapping_add(state.sent_regional.rotate_left(16))
            .wrapping_add(state.sent_remote.rotate_left(32))
            ^ state.checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::time::VirtualTime;

    fn topo() -> Topology {
        Topology { lps_per_worker: 4, workers_per_node: 3, nodes: 2 }
    }

    fn ctx(me: u32, t: f64) -> EventCtx {
        EventCtx {
            now: VirtualTime::new(t),
            self_lp: LpId(me),
            end_time: VirtualTime::new(100.0),
            total_lps: topo().total_lps(),
        }
    }

    #[test]
    fn topology_arithmetic() {
        let t = topo();
        assert_eq!(t.lps_per_node(), 12);
        assert_eq!(t.total_lps(), 24);
        assert_eq!(t.node_of(LpId(11)), 0);
        assert_eq!(t.node_of(LpId(12)), 1);
        assert_eq!(t.worker_of(LpId(7)), 1);
    }

    #[test]
    fn destination_classes_respect_topology() {
        let model =
            PholdModel::new(topo(), PhaseSchedule::constant(PholdParams::new(0.3, 0.2, 1_000)));
        let mut rng = Pcg32::new(1, 1);
        let me = LpId(5); // node 0, worker 1
        let t = topo();
        let (mut local, mut regional, mut remote) = (0u32, 0u32, 0u32);
        for _ in 0..20_000 {
            let (dst, class) = model.draw_destination(me, &model.schedule.at(0.0), &mut rng);
            assert!(dst.0 < t.total_lps());
            match class {
                "local" => {
                    assert_eq!(dst, me);
                    local += 1;
                }
                "regional" => {
                    assert_eq!(t.node_of(dst), t.node_of(me), "regional stays on node");
                    assert_ne!(t.worker_of(dst), t.worker_of(me), "regional crosses workers");
                    regional += 1;
                }
                _ => {
                    assert_ne!(t.node_of(dst), t.node_of(me), "remote leaves the node");
                    remote += 1;
                }
            }
        }
        // Probabilities within loose tolerance.
        let total = 20_000.0;
        assert!((regional as f64 / total - 0.3).abs() < 0.02, "regional {regional}");
        assert!((remote as f64 / total - 0.2).abs() < 0.02, "remote {remote}");
        assert!((local as f64 / total - 0.5).abs() < 0.02, "local {local}");
    }

    #[test]
    fn handle_emits_exactly_one_event_with_positive_delay() {
        let model =
            PholdModel::new(topo(), PhaseSchedule::constant(PholdParams::new(0.1, 0.01, 10_000)));
        let mut rng = Pcg32::new(2, 2);
        let mut state = PholdState::default();
        let mut emit = Emitter::new();
        let epg = model.handle(&ctx(0, 1.0), &mut state, &7, &mut rng, &mut emit);
        assert_eq!(epg, 10_000);
        assert_eq!(emit.len(), 1);
        let (_, delay, _) = emit.take().next().unwrap();
        assert!(delay >= model.lookahead);
        assert_eq!(state.processed, 1);
    }

    #[test]
    fn phase_schedule_alternates_like_the_paper() {
        let comp = PholdParams::new(0.10, 0.01, 10_000);
        let comm = PholdParams::new(0.90, 0.10, 5_000);
        // 10-15 model: cycle = 25% of the run, 40% of each cycle in comp.
        let s = PhaseSchedule::alternating(10.0, comp, 15.0, comm);
        assert_eq!(s.at(0.0), comp);
        assert_eq!(s.at(0.05), comp);
        assert_eq!(s.at(0.11), comm);
        assert_eq!(s.at(0.24), comm);
        // Second cycle starts at 0.25.
        assert_eq!(s.at(0.26), comp);
        assert_eq!(s.at(0.40), comm);
    }

    #[test]
    fn constant_schedule_is_constant() {
        let p = PholdParams::new(0.9, 0.1, 5_000);
        let s = PhaseSchedule::constant(p);
        for i in 0..10 {
            assert_eq!(s.at(i as f64 / 10.0), p);
        }
    }

    #[test]
    fn single_node_remote_draws_fall_back_to_local() {
        let t = Topology { lps_per_worker: 4, workers_per_node: 2, nodes: 1 };
        let model = PholdModel::new(t, PhaseSchedule::constant(PholdParams::new(0.0, 1.0, 100)));
        let mut rng = Pcg32::new(3, 3);
        for _ in 0..100 {
            let (dst, class) = model.draw_destination(LpId(0), &model.schedule.at(0.0), &mut rng);
            assert_eq!(class, "local");
            assert_eq!(dst, LpId(0));
        }
    }

    #[test]
    fn fingerprint_depends_on_history() {
        let model =
            PholdModel::new(topo(), PhaseSchedule::constant(PholdParams::new(0.1, 0.01, 100)));
        let mut rng = Pcg32::new(4, 4);
        let mut a = PholdState::default();
        let mut emit = Emitter::new();
        model.handle(&ctx(0, 1.0), &mut a, &1, &mut rng, &mut emit);
        emit.take().count();
        let mut b = a;
        model.handle(&ctx(0, 2.0), &mut b, &2, &mut rng, &mut emit);
        emit.take().count();
        assert_ne!(model.state_fingerprint(&a), model.state_fingerprint(&b));
    }
}

#[cfg(test)]
mod reverse_tests {
    use super::*;
    use cagvt_base::time::VirtualTime;

    fn model() -> PholdModel {
        PholdModel::new(
            Topology { lps_per_worker: 4, workers_per_node: 3, nodes: 2 },
            PhaseSchedule::constant(PholdParams::new(0.3, 0.2, 1_000)),
        )
    }

    fn ctx(me: u32, t: f64) -> EventCtx {
        EventCtx {
            now: VirtualTime::new(t),
            self_lp: LpId(me),
            end_time: VirtualTime::new(100.0),
            total_lps: 24,
        }
    }

    #[test]
    fn reverse_is_the_exact_inverse_of_handle() {
        let m = model();
        assert!(m.supports_reverse());
        let mut rng = Pcg32::new(77, 1);
        let mut state = PholdState::default();
        let mut emit = Emitter::new();

        // A chain of forward events, then unwind them in LIFO order.
        let script: Vec<(u32, f64, u32)> =
            (0..50).map(|i| (i % 24, 1.0 + i as f64 * 0.37, i * 3 + 1)).collect();
        let mut checkpoints = Vec::new();
        for &(me, t, payload) in &script {
            checkpoints.push((state, rng));
            m.handle(&ctx(me, t), &mut state, &payload, &mut rng, &mut emit);
            emit.take().count();
        }
        for (i, &(me, t, payload)) in script.iter().enumerate().rev() {
            let (expect_state, prior_rng) = checkpoints[i];
            let mut scratch = prior_rng;
            m.reverse(&ctx(me, t), &mut state, &payload, &mut scratch);
            assert_eq!(state.processed, expect_state.processed, "event {i}");
            assert_eq!(state.checksum, expect_state.checksum, "event {i}");
            assert_eq!(state.sent_local, expect_state.sent_local, "event {i}");
            assert_eq!(state.sent_regional, expect_state.sent_regional, "event {i}");
            assert_eq!(state.sent_remote, expect_state.sent_remote, "event {i}");
        }
        assert_eq!(state.processed, 0);
    }

    #[test]
    fn reverse_handles_every_phase_of_a_mixed_schedule() {
        let m = PholdModel::new(
            Topology { lps_per_worker: 4, workers_per_node: 3, nodes: 2 },
            PhaseSchedule::alternating(
                10.0,
                PholdParams::new(0.1, 0.01, 10_000),
                15.0,
                PholdParams::new(0.9, 0.1, 5_000),
            ),
        );
        let mut rng = Pcg32::new(5, 5);
        let mut state = PholdState::default();
        let mut emit = Emitter::new();
        // Spread events across the whole horizon so both phases are hit.
        let times: Vec<f64> = (1..60).map(|i| i as f64 * 1.6).collect();
        let mut checkpoints = Vec::new();
        for &t in &times {
            checkpoints.push((state, rng));
            m.handle(&ctx(3, t), &mut state, &7, &mut rng, &mut emit);
            emit.take().count();
        }
        for (i, &t) in times.iter().enumerate().rev() {
            let (expect_state, prior_rng) = checkpoints[i];
            let mut scratch = prior_rng;
            m.reverse(&ctx(3, t), &mut state, &7, &mut scratch);
            assert_eq!(state, expect_state, "at t={t}");
        }
    }
}
