//! CQN — closed queueing network, the classic PDES benchmark
//! (Fujimoto's tandem-queue topology).
//!
//! LPs are FCFS service stations arranged in rows (tandem queues); a fixed
//! population of jobs circulates. A job completing service at a station
//! departs either to the next station in its row or, with the switch
//! probability, through the row's *switch* to a uniformly random row —
//! which in a block-partitioned placement produces regional and remote
//! traffic. Closed population plus deterministic service/routing draws
//! make the model a sharp correctness probe: any engine divergence shows
//! up as a job count change.
//!
//! Event payloads are job ids; each station's state tracks its queue depth
//! and statistics. A station with jobs in queue has exactly one `Depart`
//! event circulating.

use cagvt_base::ids::LpId;
use cagvt_base::rng::Pcg32;
use cagvt_core::model::{Emitter, EventCtx, Model};

/// Events of the queueing network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CqnEvent {
    /// A job arrives at this station.
    Arrive { job: u32 },
    /// The job at the head of this station's queue finishes service.
    Depart,
}

/// Station state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Station {
    /// Jobs currently queued or in service.
    pub queue: u32,
    /// Jobs served to completion here.
    pub served: u64,
    /// Jobs switched out to a random row.
    pub switched: u64,
    /// Order-sensitive checksum of job ids served.
    pub checksum: u64,
}

/// The closed queueing network model.
#[derive(Clone, Copy, Debug)]
pub struct CqnModel {
    /// Stations per row (tandem length). Rows are laid out consecutively
    /// in LP-id space, so a row typically stays within a worker and
    /// switches cross workers/nodes.
    pub row_length: u32,
    /// Initial jobs seeded at each row's first station.
    pub jobs_per_row: u32,
    /// Mean service time (exponential).
    pub mean_service: f64,
    /// Probability that a completing job switches to a random row instead
    /// of continuing down its own.
    pub switch_prob: f64,
    /// EPG units per service completion.
    pub epg: u64,
}

impl Default for CqnModel {
    fn default() -> Self {
        CqnModel {
            row_length: 4,
            jobs_per_row: 8,
            mean_service: 1.0,
            switch_prob: 0.25,
            epg: 5_000,
        }
    }
}

impl CqnModel {
    #[inline]
    fn row_of(&self, lp: LpId) -> u32 {
        lp.0 / self.row_length
    }

    #[inline]
    fn row_start(&self, row: u32) -> u32 {
        row * self.row_length
    }

    /// Destination station for a job completing at `me`.
    fn next_station(&self, me: LpId, total_lps: u32, rng: &mut Pcg32) -> (LpId, bool) {
        let rows = total_lps / self.row_length;
        if rng.next_f64() < self.switch_prob && rows > 1 {
            // Through the switch: first station of a random row.
            let row = rng.next_bounded(rows);
            (LpId(self.row_start(row)), true)
        } else {
            // Down the row (wrapping to its head).
            let row = self.row_of(me);
            let pos = me.0 - self.row_start(row);
            let next = (pos + 1) % self.row_length;
            (LpId(self.row_start(row) + next), false)
        }
    }

    fn service_delay(&self, rng: &mut Pcg32) -> f64 {
        0.05 + rng.next_exp(self.mean_service)
    }
}

impl Model for CqnModel {
    type State = Station;
    type Payload = CqnEvent;

    fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) -> Station {
        Station::default()
    }

    fn initial_events(
        &self,
        lp: LpId,
        state: &mut Station,
        rng: &mut Pcg32,
        emit: &mut Emitter<CqnEvent>,
    ) {
        // The first station of each row is seeded with the row's job
        // population and one departure in flight.
        if lp.0.is_multiple_of(self.row_length) {
            state.queue = self.jobs_per_row;
            emit.emit(lp, self.service_delay(rng), CqnEvent::Depart);
        }
    }

    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut Station,
        payload: &CqnEvent,
        rng: &mut Pcg32,
        emit: &mut Emitter<CqnEvent>,
    ) -> u64 {
        match payload {
            CqnEvent::Arrive { job } => {
                state.queue += 1;
                state.checksum = state.checksum.wrapping_mul(31).wrapping_add(*job as u64);
                if state.queue == 1 {
                    // Idle server: begin service immediately.
                    emit.emit(ctx.self_lp, self.service_delay(rng), CqnEvent::Depart);
                }
                self.epg / 8
            }
            CqnEvent::Depart => {
                debug_assert!(state.queue > 0, "departure from an empty station");
                state.queue -= 1;
                state.served += 1;
                let (dst, switched) = self.next_station(ctx.self_lp, ctx.total_lps, rng);
                if switched {
                    state.switched += 1;
                }
                let job = (state.served & 0xFFFF) as u32;
                emit.emit(dst, 0.05 + 0.1 * rng.next_f64(), CqnEvent::Arrive { job });
                if state.queue > 0 {
                    emit.emit(ctx.self_lp, self.service_delay(rng), CqnEvent::Depart);
                }
                self.epg
            }
        }
    }

    fn state_fingerprint(&self, s: &Station) -> u64 {
        (s.queue as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(s.served.rotate_left(17))
            .wrapping_add(s.switched.rotate_left(34))
            ^ s.checksum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::time::VirtualTime;

    fn ctx(me: u32, total: u32) -> EventCtx {
        EventCtx {
            now: VirtualTime::new(3.0),
            self_lp: LpId(me),
            end_time: VirtualTime::new(100.0),
            total_lps: total,
        }
    }

    #[test]
    fn only_row_heads_are_seeded() {
        let m = CqnModel::default();
        let mut rng = Pcg32::new(1, 0);
        let mut emit = Emitter::new();
        let mut head = Station::default();
        m.initial_events(LpId(0), &mut head, &mut rng, &mut emit);
        assert_eq!(head.queue, m.jobs_per_row);
        assert_eq!(emit.take().count(), 1);
        let mut mid = Station::default();
        m.initial_events(LpId(1), &mut mid, &mut rng, &mut emit);
        assert_eq!(mid.queue, 0);
        assert!(emit.is_empty());
    }

    #[test]
    fn departure_moves_a_job_and_keeps_the_server_busy() {
        let m = CqnModel::default();
        let mut rng = Pcg32::new(2, 0);
        let mut s = Station { queue: 3, ..Default::default() };
        let mut emit = Emitter::new();
        m.handle(&ctx(1, 16), &mut s, &CqnEvent::Depart, &mut rng, &mut emit);
        assert_eq!(s.queue, 2);
        assert_eq!(s.served, 1);
        let out: Vec<_> = emit.take().collect();
        assert_eq!(out.len(), 2, "one arrival elsewhere, one next departure here");
        assert!(out.iter().any(|(dst, _, p)| *dst == LpId(1) && matches!(p, CqnEvent::Depart)));
        assert!(out.iter().any(|(_, _, p)| matches!(p, CqnEvent::Arrive { .. })));
    }

    #[test]
    fn arrival_at_idle_station_starts_service() {
        let m = CqnModel::default();
        let mut rng = Pcg32::new(3, 0);
        let mut s = Station::default();
        let mut emit = Emitter::new();
        m.handle(&ctx(2, 16), &mut s, &CqnEvent::Arrive { job: 9 }, &mut rng, &mut emit);
        assert_eq!(s.queue, 1);
        let out: Vec<_> = emit.take().collect();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].2, CqnEvent::Depart));
        // A second arrival queues without a new departure.
        m.handle(&ctx(2, 16), &mut s, &CqnEvent::Arrive { job: 10 }, &mut rng, &mut emit);
        assert_eq!(s.queue, 2);
        assert!(emit.is_empty());
    }

    #[test]
    fn routing_stays_in_range_and_switches_to_row_heads() {
        let m = CqnModel { switch_prob: 0.5, ..Default::default() };
        let mut rng = Pcg32::new(4, 0);
        let total = 32; // 8 rows of 4
        let mut switches = 0;
        for _ in 0..2_000 {
            let (dst, switched) = m.next_station(LpId(5), total, &mut rng);
            assert!(dst.0 < total);
            if switched {
                assert_eq!(dst.0 % m.row_length, 0, "switches land on row heads");
                switches += 1;
            } else {
                assert_eq!(m.row_of(dst), m.row_of(LpId(5)), "in-row hop");
            }
        }
        let frac = switches as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "switch fraction {frac}");
    }

    #[test]
    fn closed_population_is_conserved_in_sequential_run() {
        use cagvt_core::{SequentialSim, SimConfig};
        use std::sync::Arc;
        let m = CqnModel::default();
        let mut cfg = SimConfig::small(2, 2);
        cfg.lps_per_worker = 8; // 32 stations, 8 rows
        cfg.end_time = 50.0;
        let out = SequentialSim::new(Arc::new(m), cfg).run();
        assert!(out.processed > 500, "network must stay live: {}", out.processed);
    }
}
