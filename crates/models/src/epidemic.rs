//! SIR epidemic over a ring of regions.
//!
//! Each LP is a geographic region holding susceptible / infected /
//! recovered counts. A periodic `Step` event advances the local epidemic
//! (binomial-ish infection and recovery draws) and, with probability
//! proportional to local prevalence, exports a `Seed` to one of the two
//! neighbouring regions. Compute per step scales with the region
//! population, making this a computation-leaning workload with nearly all
//! traffic between neighbours (regional when neighbours share a node).

use cagvt_base::ids::LpId;
use cagvt_base::rng::Pcg32;
use cagvt_core::model::{Emitter, EventCtx, Model};

/// Events exchanged between regions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpidemicEvent {
    /// Advance the local epidemic one tick.
    Step,
    /// Imported infections from a neighbouring region.
    Seed(u32),
}

/// Region state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    pub susceptible: u32,
    pub infected: u32,
    pub recovered: u32,
    pub exported: u32,
}

impl Region {
    pub fn population(&self) -> u32 {
        self.susceptible + self.infected + self.recovered
    }
}

/// The epidemic model.
#[derive(Clone, Copy, Debug)]
pub struct EpidemicModel {
    /// Initial population per region.
    pub population: u32,
    /// Regions seeded with infection at start (every `k`-th LP).
    pub seed_every: u32,
    /// Per-tick infection pressure (β).
    pub beta: f64,
    /// Per-tick recovery probability (γ).
    pub gamma: f64,
    /// Probability an infectious region exports a seed each tick.
    pub export_prob: f64,
    /// Virtual time between ticks.
    pub tick: f64,
    /// EPG units per unit of population processed.
    pub epg_per_capita: u64,
}

impl Default for EpidemicModel {
    fn default() -> Self {
        EpidemicModel {
            population: 1_000,
            seed_every: 16,
            beta: 0.30,
            gamma: 0.10,
            export_prob: 0.20,
            tick: 1.0,
            epg_per_capita: 10,
        }
    }
}

impl EpidemicModel {
    /// Approximate binomial draw: expectation plus a small random
    /// perturbation (cheap, deterministic, adequate for workload purposes).
    fn draw_count(&self, n: u32, p: f64, rng: &mut Pcg32) -> u32 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        let mean = n as f64 * p.min(1.0);
        let jitter = (rng.next_f64() - 0.5) * mean.sqrt() * 2.0;
        // Probabilistic rounding so sub-unity means still fire eventually
        // (a lone infected individual must be able to recover).
        let x = (mean + jitter).max(0.0);
        let base = x.floor() as u32;
        let extra = (rng.next_f64() < x.fract()) as u32;
        (base + extra).min(n)
    }
}

impl Model for EpidemicModel {
    type State = Region;
    type Payload = EpidemicEvent;

    fn init_state(&self, lp: LpId, _rng: &mut Pcg32) -> Region {
        let infected =
            if lp.0.is_multiple_of(self.seed_every) { self.population / 100 + 1 } else { 0 };
        Region { susceptible: self.population - infected, infected, recovered: 0, exported: 0 }
    }

    fn initial_events(
        &self,
        lp: LpId,
        _state: &mut Region,
        rng: &mut Pcg32,
        emit: &mut Emitter<EpidemicEvent>,
    ) {
        emit.emit(lp, self.tick * (0.5 + rng.next_f64()), EpidemicEvent::Step);
    }

    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut Region,
        payload: &EpidemicEvent,
        rng: &mut Pcg32,
        emit: &mut Emitter<EpidemicEvent>,
    ) -> u64 {
        match payload {
            EpidemicEvent::Seed(n) => {
                let imported = (*n).min(state.susceptible);
                state.susceptible -= imported;
                state.infected += imported;
                // Seeds cost little; the tick loop does the work.
                self.epg_per_capita * 16
            }
            EpidemicEvent::Step => {
                let pop = state.population().max(1);
                let pressure = self.beta * state.infected as f64 / pop as f64;
                let newly_infected = self.draw_count(state.susceptible, pressure, rng);
                let newly_recovered = self.draw_count(state.infected, self.gamma, rng);
                state.susceptible -= newly_infected;
                state.infected = state.infected + newly_infected - newly_recovered;
                state.recovered += newly_recovered;

                if state.infected > 0 && rng.next_f64() < self.export_prob {
                    let total = ctx.total_lps;
                    let me = ctx.self_lp.0;
                    let neighbour = if rng.next_f64() < 0.5 {
                        (me + 1) % total
                    } else {
                        (me + total - 1) % total
                    };
                    let seeds = (state.infected / 50).clamp(1, 10);
                    state.exported += seeds;
                    emit.emit(
                        LpId(neighbour),
                        self.tick * (0.2 + 0.3 * rng.next_f64()),
                        EpidemicEvent::Seed(seeds),
                    );
                }
                // Keep the tick loop alive.
                emit.emit(
                    ctx.self_lp,
                    self.tick * (0.8 + 0.4 * rng.next_f64()),
                    EpidemicEvent::Step,
                );
                self.epg_per_capita * pop as u64 / 8
            }
        }
    }

    fn state_fingerprint(&self, state: &Region) -> u64 {
        (state.susceptible as u64)
            | ((state.infected as u64) << 20)
            | ((state.recovered as u64) << 40) ^ (state.exported as u64).rotate_left(52)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::time::VirtualTime;

    fn ctx(me: u32) -> EventCtx {
        EventCtx {
            now: VirtualTime::new(5.0),
            self_lp: LpId(me),
            end_time: VirtualTime::new(100.0),
            total_lps: 8,
        }
    }

    #[test]
    fn population_is_conserved_by_steps() {
        let m = EpidemicModel::default();
        let mut rng = Pcg32::new(1, 0);
        let mut region = m.init_state(LpId(0), &mut rng);
        let pop0 = region.population();
        let mut emit = Emitter::new();
        for _ in 0..200 {
            m.handle(&ctx(0), &mut region, &EpidemicEvent::Step, &mut rng, &mut emit);
            emit.take().count();
            assert_eq!(region.population(), pop0, "SIR must conserve population");
        }
    }

    #[test]
    fn seeded_regions_start_infected() {
        let m = EpidemicModel::default();
        let mut rng = Pcg32::new(1, 0);
        assert!(m.init_state(LpId(0), &mut rng).infected > 0);
        assert_eq!(m.init_state(LpId(1), &mut rng).infected, 0);
    }

    #[test]
    fn seeds_move_susceptibles_to_infected() {
        let m = EpidemicModel::default();
        let mut rng = Pcg32::new(2, 0);
        let mut region = m.init_state(LpId(1), &mut rng);
        let mut emit = Emitter::new();
        m.handle(&ctx(1), &mut region, &EpidemicEvent::Seed(5), &mut rng, &mut emit);
        assert_eq!(region.infected, 5);
        assert_eq!(region.population(), m.population);
        assert!(emit.is_empty(), "seeds emit nothing");
    }

    #[test]
    fn step_always_reschedules_itself() {
        let m = EpidemicModel::default();
        let mut rng = Pcg32::new(3, 0);
        let mut region = m.init_state(LpId(0), &mut rng);
        let mut emit = Emitter::new();
        for _ in 0..50 {
            m.handle(&ctx(0), &mut region, &EpidemicEvent::Step, &mut rng, &mut emit);
            let out: Vec<_> = emit.take().collect();
            assert!(
                out.iter().any(|(dst, _, p)| *dst == LpId(0) && *p == EpidemicEvent::Step),
                "tick loop must continue"
            );
        }
    }

    #[test]
    fn epidemic_eventually_burns_out() {
        let m = EpidemicModel { export_prob: 0.0, ..Default::default() };
        let mut rng = Pcg32::new(4, 0);
        let mut region = m.init_state(LpId(0), &mut rng);
        let mut emit = Emitter::new();
        for _ in 0..5_000 {
            m.handle(&ctx(0), &mut region, &EpidemicEvent::Step, &mut rng, &mut emit);
            emit.take().count();
        }
        assert_eq!(region.infected, 0, "no reintroduction, gamma > 0: must die out");
        assert!(region.recovered > 0);
    }

    #[test]
    fn draw_count_bounds() {
        let m = EpidemicModel::default();
        let mut rng = Pcg32::new(5, 0);
        for _ in 0..1_000 {
            let c = m.draw_count(100, 0.5, &mut rng);
            assert!(c <= 100);
        }
        assert_eq!(m.draw_count(0, 0.5, &mut rng), 0);
        assert_eq!(m.draw_count(10, 0.0, &mut rng), 0);
    }
}
