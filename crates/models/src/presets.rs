//! The paper's workload parameterizations (§4, §6).
//!
//! * **COMP** (computation-dominated): 10% regional, 1% remote, 10K EPG.
//! * **COMM** (communication-dominated): 90% regional, 10% remote, 5K EPG.
//! * **Mixed `X-Y`**: first `X`% of the run COMP, next `Y`% COMM,
//!   repeating (paper evaluates 10-15, 15-10 and 5-5).

use cagvt_core::SimConfig;

use crate::phold::{PhaseSchedule, PholdModel, PholdParams, Topology};

/// The paper's computation-dominated parameter set.
pub const COMP_PARAMS: PholdParams =
    PholdParams { regional_pct: 0.10, remote_pct: 0.01, epg: 10_000 };

/// The paper's communication-dominated parameter set.
pub const COMM_PARAMS: PholdParams =
    PholdParams { regional_pct: 0.90, remote_pct: 0.10, epg: 5_000 };

/// A named workload: the model plus the GVT interval the paper uses for
/// it.
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: String,
    pub model: PholdModel,
    pub gvt_interval: u64,
}

fn topo_of(cfg: &SimConfig) -> Topology {
    Topology {
        lps_per_worker: cfg.lps_per_worker,
        workers_per_node: cfg.spec.workers_per_node,
        nodes: cfg.spec.nodes,
    }
}

/// COMP workload for a given run configuration.
pub fn comp_dominated(cfg: &SimConfig) -> Workload {
    Workload {
        name: "comp".to_string(),
        model: PholdModel::new(topo_of(cfg), PhaseSchedule::constant(COMP_PARAMS)),
        gvt_interval: 25,
    }
}

/// COMM workload for a given run configuration.
pub fn comm_dominated(cfg: &SimConfig) -> Workload {
    Workload {
        name: "comm".to_string(),
        model: PholdModel::new(topo_of(cfg), PhaseSchedule::constant(COMM_PARAMS)),
        gvt_interval: 25,
    }
}

/// Mixed `X-Y` workload (paper §6): `x` parts COMP then `y` parts COMM,
/// repeating twice over the run (see
/// [`PhaseSchedule::alternating_cycles`] for why the cycle count is fixed
/// rather than the paper's literal percent-of-runtime cycle).
pub fn mixed_model(cfg: &SimConfig, x: f64, y: f64) -> Workload {
    Workload {
        name: format!("mixed-{:.0}-{:.0}", x, y),
        model: PholdModel::new(
            topo_of(cfg),
            PhaseSchedule::alternating_cycles(x, COMP_PARAMS, y, COMM_PARAMS, 2),
        ),
        gvt_interval: 25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameter_sets() {
        assert_eq!(COMP_PARAMS.regional_pct, 0.10);
        assert_eq!(COMP_PARAMS.remote_pct, 0.01);
        assert_eq!(COMP_PARAMS.epg, 10_000);
        assert_eq!(COMM_PARAMS.regional_pct, 0.90);
        assert_eq!(COMM_PARAMS.remote_pct, 0.10);
        assert_eq!(COMM_PARAMS.epg, 5_000);
    }

    #[test]
    fn workloads_inherit_topology_from_config() {
        let cfg = SimConfig::small(2, 3);
        let w = comp_dominated(&cfg);
        assert_eq!(w.model.topo.nodes, 2);
        assert_eq!(w.model.topo.workers_per_node, 3);
        assert_eq!(w.model.topo.lps_per_worker, cfg.lps_per_worker);
        assert_eq!(w.gvt_interval, 25);
    }

    #[test]
    fn mixed_schedule_spends_the_right_fractions() {
        let cfg = SimConfig::small(1, 2);
        let w = mixed_model(&cfg, 10.0, 15.0);
        assert_eq!(w.name, "mixed-10-15");
        let mut comp = 0;
        let total = 10_000;
        for i in 0..total {
            if w.model.schedule.at(i as f64 / total as f64) == COMP_PARAMS {
                comp += 1;
            }
        }
        let frac = comp as f64 / total as f64;
        assert!((frac - 0.4).abs() < 0.01, "10/(10+15) = 0.4, got {frac}");
    }
}
