//! Traffic — a grid of signalized intersections (the classic ROSS demo
//! model family).
//!
//! Each LP is an intersection on a `width × height` torus holding a small
//! queue of cars per approach. A periodic `GreenPhase` event serves the
//! currently green axis, forwarding up to `saturation_flow` cars to the
//! downstream neighbour and toggling the signal. Cars entering the grid
//! arrive via a self-rescheduling `Arrival` stream; each forwarded car
//! picks straight/left/right by a turn probability. Neighbour-only traffic
//! on a 2-D torus gives a locality pattern distinct from PHOLD's uniform
//! draws: mostly regional with a remote fringe along the node boundary.

use cagvt_base::ids::LpId;
use cagvt_base::rng::Pcg32;
use cagvt_core::model::{Emitter, EventCtx, Model};

/// Compass direction a car travels (the approach it arrives on is the
/// opposite one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Heading {
    North,
    East,
    South,
    West,
}

impl Heading {
    fn index(self) -> usize {
        match self {
            Heading::North => 0,
            Heading::East => 1,
            Heading::South => 2,
            Heading::West => 3,
        }
    }

    fn from_index(i: u32) -> Heading {
        match i % 4 {
            0 => Heading::North,
            1 => Heading::East,
            2 => Heading::South,
            _ => Heading::West,
        }
    }

    /// Heading after a turn decision: 0 = straight, 1 = right, 2 = left.
    fn turned(self, turn: u32) -> Heading {
        let base = self.index() as u32;
        match turn {
            0 => self,
            1 => Heading::from_index(base + 1),
            _ => Heading::from_index(base + 3),
        }
    }

    fn is_north_south(self) -> bool {
        matches!(self, Heading::North | Heading::South)
    }
}

/// Events at an intersection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficEvent {
    /// A car arrives, travelling `heading`.
    CarArrives { heading: Heading },
    /// Fresh demand enters the grid here (self-rescheduling).
    Arrival,
    /// The signal serves the green axis, then toggles.
    GreenPhase,
}

/// Intersection state: queued cars per heading plus counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Intersection {
    pub queues: [u16; 4],
    /// True: north-south axis is green.
    pub ns_green: bool,
    pub cars_through: u64,
    pub dropped: u64,
}

impl Intersection {
    pub fn total_queued(&self) -> u32 {
        self.queues.iter().map(|&q| q as u32).sum()
    }
}

/// The traffic-grid model. `width * height` must equal the run's total LP
/// count.
#[derive(Clone, Copy, Debug)]
pub struct TrafficModel {
    pub width: u32,
    pub height: u32,
    /// Mean time between fresh arrivals per intersection.
    pub mean_arrival: f64,
    /// Signal phase length.
    pub phase: f64,
    /// Cars served per approach per green phase.
    pub saturation_flow: u16,
    /// Queue capacity per approach; overflow cars are dropped (counted).
    pub capacity: u16,
    /// Probability of turning (split evenly left/right).
    pub turn_prob: f64,
    /// EPG units per green phase.
    pub epg: u64,
}

impl Default for TrafficModel {
    fn default() -> Self {
        TrafficModel {
            width: 8,
            height: 8,
            mean_arrival: 2.0,
            phase: 1.0,
            saturation_flow: 3,
            capacity: 12,
            turn_prob: 0.3,
            epg: 4_000,
        }
    }
}

impl TrafficModel {
    /// Grid coordinates of an LP.
    fn xy(&self, lp: LpId) -> (u32, u32) {
        (lp.0 % self.width, lp.0 / self.width)
    }

    /// Downstream neighbour when leaving `lp` with `heading` (torus wrap).
    pub fn neighbour(&self, lp: LpId, heading: Heading) -> LpId {
        let (x, y) = self.xy(lp);
        let (nx, ny) = match heading {
            Heading::North => (x, (y + self.height - 1) % self.height),
            Heading::South => (x, (y + 1) % self.height),
            Heading::East => ((x + 1) % self.width, y),
            Heading::West => ((x + self.width - 1) % self.width, y),
        };
        LpId(ny * self.width + nx)
    }

    fn enqueue(&self, state: &mut Intersection, heading: Heading) {
        let q = &mut state.queues[heading.index()];
        if *q >= self.capacity {
            state.dropped += 1;
        } else {
            *q += 1;
        }
    }
}

impl Model for TrafficModel {
    type State = Intersection;
    type Payload = TrafficEvent;

    fn init_state(&self, lp: LpId, _rng: &mut Pcg32) -> Intersection {
        let (x, y) = self.xy(lp);
        // Stagger initial signals like a checkerboard.
        Intersection { ns_green: (x + y) % 2 == 0, ..Default::default() }
    }

    fn initial_events(
        &self,
        lp: LpId,
        _state: &mut Intersection,
        rng: &mut Pcg32,
        emit: &mut Emitter<TrafficEvent>,
    ) {
        emit.emit(lp, 0.01 + rng.next_exp(self.mean_arrival), TrafficEvent::Arrival);
        emit.emit(lp, self.phase * (0.5 + 0.5 * rng.next_f64()), TrafficEvent::GreenPhase);
    }

    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut Intersection,
        payload: &TrafficEvent,
        rng: &mut Pcg32,
        emit: &mut Emitter<TrafficEvent>,
    ) -> u64 {
        match payload {
            TrafficEvent::CarArrives { heading } => {
                self.enqueue(state, *heading);
                self.epg / 8
            }
            TrafficEvent::Arrival => {
                let heading = Heading::from_index(rng.next_bounded(4));
                self.enqueue(state, heading);
                emit.emit(
                    ctx.self_lp,
                    0.01 + rng.next_exp(self.mean_arrival),
                    TrafficEvent::Arrival,
                );
                self.epg / 8
            }
            TrafficEvent::GreenPhase => {
                // Serve both approaches of the green axis.
                for heading in [Heading::North, Heading::East, Heading::South, Heading::West] {
                    if heading.is_north_south() != state.ns_green {
                        continue;
                    }
                    let served = state.queues[heading.index()].min(self.saturation_flow);
                    state.queues[heading.index()] -= served;
                    for k in 0..served {
                        state.cars_through += 1;
                        let turn = if rng.next_f64() < self.turn_prob {
                            1 + rng.next_bounded(2)
                        } else {
                            0
                        };
                        let out = heading.turned(turn);
                        let dst = self.neighbour(ctx.self_lp, out);
                        // Travel time to the next intersection, spaced by
                        // departure order.
                        let travel = 0.2 + 0.1 * k as f64 + 0.2 * rng.next_f64();
                        emit.emit(dst, travel, TrafficEvent::CarArrives { heading: out });
                    }
                }
                state.ns_green = !state.ns_green;
                emit.emit(ctx.self_lp, self.phase, TrafficEvent::GreenPhase);
                self.epg
            }
        }
    }

    fn state_fingerprint(&self, s: &Intersection) -> u64 {
        let q = (s.queues[0] as u64)
            | ((s.queues[1] as u64) << 16)
            | ((s.queues[2] as u64) << 32)
            | ((s.queues[3] as u64) << 48);
        q.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ s.cars_through.rotate_left(13)
            ^ s.dropped.rotate_left(47)
            ^ (s.ns_green as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::time::VirtualTime;

    fn model() -> TrafficModel {
        TrafficModel { width: 4, height: 4, ..Default::default() }
    }

    fn ctx(me: u32) -> EventCtx {
        EventCtx {
            now: VirtualTime::new(2.0),
            self_lp: LpId(me),
            end_time: VirtualTime::new(100.0),
            total_lps: 16,
        }
    }

    #[test]
    fn torus_neighbours_wrap() {
        let m = model();
        assert_eq!(m.neighbour(LpId(0), Heading::East), LpId(1));
        assert_eq!(m.neighbour(LpId(3), Heading::East), LpId(0), "x wraps");
        assert_eq!(m.neighbour(LpId(0), Heading::North), LpId(12), "y wraps");
        assert_eq!(m.neighbour(LpId(12), Heading::South), LpId(0));
        // Round trips invert.
        for lp in 0..16 {
            for h in [Heading::North, Heading::East, Heading::South, Heading::West] {
                let back = match h {
                    Heading::North => Heading::South,
                    Heading::South => Heading::North,
                    Heading::East => Heading::West,
                    Heading::West => Heading::East,
                };
                assert_eq!(m.neighbour(m.neighbour(LpId(lp), h), back), LpId(lp));
            }
        }
    }

    #[test]
    fn headings_turn_consistently() {
        assert_eq!(Heading::North.turned(0), Heading::North);
        assert_eq!(Heading::North.turned(1), Heading::East);
        assert_eq!(Heading::North.turned(2), Heading::West);
        assert_eq!(Heading::West.turned(1), Heading::North);
    }

    #[test]
    fn green_phase_serves_only_the_green_axis_and_toggles() {
        let m = model();
        let mut rng = Pcg32::new(1, 0);
        let mut s = Intersection {
            ns_green: true,
            queues: [5, 7, 4, 6], // N E S W
            ..Default::default()
        };
        let mut emit = Emitter::new();
        m.handle(&ctx(5), &mut s, &TrafficEvent::GreenPhase, &mut rng, &mut emit);
        // North/South served by up to saturation_flow each; East/West untouched.
        assert_eq!(s.queues[Heading::North.index()], 5 - 3);
        assert_eq!(s.queues[Heading::South.index()], 4 - 3);
        assert_eq!(s.queues[Heading::East.index()], 7);
        assert_eq!(s.queues[Heading::West.index()], 6);
        assert!(!s.ns_green, "signal toggles");
        assert_eq!(s.cars_through, 6);
        let out: Vec<_> = emit.take().collect();
        // 6 forwarded cars + the next green phase.
        assert_eq!(out.len(), 7);
        assert!(out
            .iter()
            .any(|(dst, _, p)| *dst == LpId(5) && matches!(p, TrafficEvent::GreenPhase)));
    }

    #[test]
    fn queues_saturate_and_drop() {
        let m = model();
        let mut s = Intersection::default();
        for _ in 0..m.capacity + 4 {
            m.enqueue(&mut s, Heading::East);
        }
        assert_eq!(s.queues[Heading::East.index()], m.capacity);
        assert_eq!(s.dropped, 4);
    }

    #[test]
    fn arrivals_reschedule() {
        let m = model();
        let mut rng = Pcg32::new(2, 0);
        let mut s = Intersection::default();
        let mut emit = Emitter::new();
        m.handle(&ctx(0), &mut s, &TrafficEvent::Arrival, &mut rng, &mut emit);
        assert_eq!(s.total_queued(), 1);
        let out: Vec<_> = emit.take().collect();
        assert!(out
            .iter()
            .any(|(dst, _, p)| *dst == LpId(0) && matches!(p, TrafficEvent::Arrival)));
    }

    #[test]
    fn grid_runs_sequentially() {
        use cagvt_core::{SequentialSim, SimConfig};
        use std::sync::Arc;
        let mut cfg = SimConfig::small(2, 2);
        cfg.lps_per_worker = 4; // 16 intersections = 4x4
        cfg.end_time = 40.0;
        let out = SequentialSim::new(Arc::new(model()), cfg).run();
        assert!(out.processed > 400, "grid must stay live: {}", out.processed);
    }
}
