//! PCS — personal communication services (cellular network) model.
//!
//! Each LP is a cell with a fixed number of radio channels. Calls arrive
//! (Poisson), occupy a channel for an exponential duration, and may hand
//! off mid-call to one of the four neighbouring cells in a ring-of-rings
//! layout. Arrivals into a saturated cell are blocked and counted. Light
//! per-event compute and heavy neighbour traffic make this a
//! communication-leaning workload — the classic PDES benchmark for
//! exactly that regime.

use cagvt_base::ids::LpId;
use cagvt_base::rng::Pcg32;
use cagvt_core::model::{Emitter, EventCtx, Model};

/// Events within the cellular network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PcsEvent {
    /// Fresh call attempt in this cell (self-rescheduling arrival stream).
    Arrival,
    /// An ongoing call ends in this cell.
    Complete,
    /// A call hands off from a neighbouring cell into this one.
    Handoff,
}

/// Cell state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cell {
    pub busy: u32,
    pub completed: u64,
    pub blocked: u64,
    pub handoffs_in: u64,
    pub handoffs_out: u64,
}

/// The PCS model.
#[derive(Clone, Copy, Debug)]
pub struct PcsModel {
    /// Channels per cell.
    pub channels: u32,
    /// Mean inter-arrival time of fresh calls.
    pub mean_interarrival: f64,
    /// Mean call holding time.
    pub mean_hold: f64,
    /// Probability that a call segment ends in a handoff rather than a
    /// completion.
    pub handoff_prob: f64,
    /// EPG units per event.
    pub epg: u64,
}

impl Default for PcsModel {
    fn default() -> Self {
        PcsModel {
            channels: 10,
            mean_interarrival: 2.0,
            mean_hold: 3.0,
            handoff_prob: 0.3,
            epg: 4_000,
        }
    }
}

impl PcsModel {
    /// Admit a call segment into the cell: seize a channel and schedule
    /// its end (completion here, or handoff into a neighbour).
    fn admit(
        &self,
        ctx: &EventCtx,
        cell: &mut Cell,
        rng: &mut Pcg32,
        emit: &mut Emitter<PcsEvent>,
    ) {
        if cell.busy >= self.channels {
            cell.blocked += 1;
            return;
        }
        cell.busy += 1;
        let segment = 0.05 + rng.next_exp(self.mean_hold);
        if rng.next_f64() < self.handoff_prob {
            // Leaves for a neighbour at the end of the segment: free our
            // channel then, and the neighbour admits at the same instant.
            cell.handoffs_out += 1;
            let total = ctx.total_lps;
            let me = ctx.self_lp.0;
            let neighbour = match rng.next_bounded(4) {
                0 => (me + 1) % total,
                1 => (me + total - 1) % total,
                2 => (me + 8) % total,
                _ => (me + total - 8 % total) % total,
            };
            emit.emit(ctx.self_lp, segment, PcsEvent::Complete);
            emit.emit(LpId(neighbour % total), segment + 0.01, PcsEvent::Handoff);
        } else {
            emit.emit(ctx.self_lp, segment, PcsEvent::Complete);
        }
    }
}

impl Model for PcsModel {
    type State = Cell;
    type Payload = PcsEvent;

    fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) -> Cell {
        Cell::default()
    }

    fn initial_events(
        &self,
        lp: LpId,
        _state: &mut Cell,
        rng: &mut Pcg32,
        emit: &mut Emitter<PcsEvent>,
    ) {
        emit.emit(lp, 0.01 + rng.next_exp(self.mean_interarrival), PcsEvent::Arrival);
    }

    fn handle(
        &self,
        ctx: &EventCtx,
        cell: &mut Cell,
        payload: &PcsEvent,
        rng: &mut Pcg32,
        emit: &mut Emitter<PcsEvent>,
    ) -> u64 {
        match payload {
            PcsEvent::Arrival => {
                self.admit(ctx, cell, rng, emit);
                // Keep the arrival stream alive.
                emit.emit(
                    ctx.self_lp,
                    0.01 + rng.next_exp(self.mean_interarrival),
                    PcsEvent::Arrival,
                );
            }
            PcsEvent::Complete => {
                debug_assert!(cell.busy > 0, "completion without a busy channel");
                cell.busy = cell.busy.saturating_sub(1);
                cell.completed += 1;
            }
            PcsEvent::Handoff => {
                cell.handoffs_in += 1;
                self.admit(ctx, cell, rng, emit);
            }
        }
        self.epg
    }

    fn state_fingerprint(&self, cell: &Cell) -> u64 {
        cell.completed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(cell.blocked.rotate_left(8))
            .wrapping_add(cell.handoffs_in.rotate_left(24))
            .wrapping_add(cell.handoffs_out.rotate_left(40))
            .wrapping_add(cell.busy as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::time::VirtualTime;

    fn ctx(me: u32) -> EventCtx {
        EventCtx {
            now: VirtualTime::new(1.0),
            self_lp: LpId(me),
            end_time: VirtualTime::new(100.0),
            total_lps: 32,
        }
    }

    #[test]
    fn arrivals_reschedule_themselves() {
        let m = PcsModel::default();
        let mut rng = Pcg32::new(1, 0);
        let mut cell = Cell::default();
        let mut emit = Emitter::new();
        m.handle(&ctx(0), &mut cell, &PcsEvent::Arrival, &mut rng, &mut emit);
        let out: Vec<_> = emit.take().collect();
        assert!(out.iter().any(|(dst, _, p)| *dst == LpId(0) && *p == PcsEvent::Arrival));
        assert_eq!(cell.busy, 1);
    }

    #[test]
    fn saturated_cell_blocks_calls() {
        let m = PcsModel { channels: 1, handoff_prob: 0.0, ..Default::default() };
        let mut rng = Pcg32::new(2, 0);
        let mut cell = Cell::default();
        let mut emit = Emitter::new();
        m.handle(&ctx(0), &mut cell, &PcsEvent::Arrival, &mut rng, &mut emit);
        emit.take().count();
        assert_eq!(cell.busy, 1);
        m.handle(&ctx(0), &mut cell, &PcsEvent::Arrival, &mut rng, &mut emit);
        emit.take().count();
        assert_eq!(cell.busy, 1, "no free channel");
        assert_eq!(cell.blocked, 1);
    }

    #[test]
    fn completions_free_channels() {
        let m = PcsModel { handoff_prob: 0.0, ..Default::default() };
        let mut rng = Pcg32::new(3, 0);
        let mut cell = Cell::default();
        let mut emit = Emitter::new();
        m.handle(&ctx(0), &mut cell, &PcsEvent::Arrival, &mut rng, &mut emit);
        emit.take().count();
        m.handle(&ctx(0), &mut cell, &PcsEvent::Complete, &mut rng, &mut emit);
        emit.take().count();
        assert_eq!(cell.busy, 0);
        assert_eq!(cell.completed, 1);
    }

    #[test]
    fn handoffs_admit_into_the_target_cell() {
        let m = PcsModel::default();
        let mut rng = Pcg32::new(4, 0);
        let mut cell = Cell::default();
        let mut emit = Emitter::new();
        m.handle(&ctx(5), &mut cell, &PcsEvent::Handoff, &mut rng, &mut emit);
        emit.take().count();
        assert_eq!(cell.handoffs_in, 1);
        assert_eq!(cell.busy, 1);
    }

    #[test]
    fn handoff_targets_stay_in_range() {
        let m = PcsModel { handoff_prob: 1.0, ..Default::default() };
        let mut rng = Pcg32::new(5, 0);
        let mut cell = Cell::default();
        let mut emit = Emitter::new();
        for _ in 0..500 {
            cell.busy = 0; // keep admitting
            m.handle(&ctx(3), &mut cell, &PcsEvent::Arrival, &mut rng, &mut emit);
            for (dst, delay, _) in emit.take() {
                assert!(dst.0 < 32);
                assert!(delay > 0.0);
            }
        }
        assert!(cell.handoffs_out > 0);
    }
}
