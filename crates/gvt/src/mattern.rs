//! Asynchronous Mattern GVT (paper Algorithm 2, Figure 2), with the
//! optional synchronization hooks that turn it into CA-GVT (Algorithm 3).
//!
//! ## Coloring and counting
//!
//! Every message carries a *flush-round* tag: the GVT round at whose red
//! transition the sender's local count of that message enters the shared
//! per-node control counter. A sender that is white between rounds `r-1`
//! and `r` tags with `r`; a sender red in round `r` tags with `r+1` (its
//! sends belong to the *next* round's white population — this is exactly
//! Mattern's color flip) and additionally folds the send's timestamp into
//! its local `min_red`. Receivers decrement either the shared node counter
//! (if they have already flushed that round) or the matching local bucket.
//! The per-node counters are cumulative across rounds, so the cluster-wide
//! sum at any instant after all workers have flushed round `r` equals the
//! number of round-`≤ r` messages still in flight — and only ever
//! decreases, which makes the ring's repeated passes a safe overestimate.
//!
//! ## The ring
//!
//! The node responsible for MPI on node 0 initiates. Pass one (`kind =
//! SUM`) circulates a control message that each node — once all its
//! workers are red — extends with its counter; the initiator re-circulates
//! until the total reaches zero and then raises the drained flag. Workers
//! that observe the flag check in their LVT and `min_red` into per-node
//! min-slots; pass two (`kind = MIN`) folds those across nodes, and the
//! initiator publishes `GVT = min(minLVT, minRed)`.
//!
//! Workers process events throughout — the asynchronous advantage the
//! paper measures in computation-dominated workloads.
//!
//! ## CA-GVT hooks
//!
//! With [`CaExtra`] attached, a round whose preceding per-round-window
//! efficiency fell below the threshold (or whose MPI queues ran deep, with
//! the extended trigger) runs *synchronously*: two-level barriers align
//! the red transition, the check-in, and the completion, bounding
//! virtual-time disparity the way Barrier GVT does while event processing
//! continues between the barriers. The initiator recomputes efficiency
//! when it publishes, setting the flag for the next round, and records the
//! round in the shared GVT trace.

use cagvt_base::ids::{LaneId, NodeId};
use cagvt_base::metrics::SyncCause;
use cagvt_base::time::{VirtualTime, WallNs};
use cagvt_base::trace::{GvtPhaseKind, TraceRecord, Track};
use cagvt_core::gvt::{
    GvtBundle, GvtSharedCore, MpiGvt, WorkerGvt, WorkerGvtCtx, WorkerGvtOutcome,
};
use cagvt_core::stats::GvtRoundRecord;
use cagvt_net::{ClusterSpec, CostModel, CtrlMsg, CtrlPlane, MsgClass};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::common::{try_join_round, TwoLevelReduce};

const KIND_SUM: u8 = 1;
const KIND_MIN: u8 = 2;

/// Per-node control structure (the shared-memory control message of the
/// paper's adaptation).
pub struct NodeCm {
    /// Cumulative flushed-sends minus accounted-receives.
    white: AtomicI64,
    /// Cumulative count of round-joins by this node's workers; all have
    /// joined round `r` when this reaches `r * workers_per_node`.
    joined: AtomicU64,
    /// Cumulative count of min check-ins (same convention).
    checked: AtomicU64,
    lvt_min: AtomicU64,
    red_min: AtomicU64,
}

impl NodeCm {
    fn new() -> Self {
        NodeCm {
            white: AtomicI64::new(0),
            joined: AtomicU64::new(0),
            checked: AtomicU64::new(0),
            lvt_min: AtomicU64::new(u64::MAX),
            red_min: AtomicU64::new(u64::MAX),
        }
    }
}

/// CA-GVT extension state.
pub struct CaExtra {
    /// Reused two-level barrier for the three synchronization points.
    pub barrier: TwoLevelReduce,
    /// Run the next round synchronously?
    pub sync_flag: AtomicBool,
    /// Why the next round was armed ([`SyncCause`] encoding, set together
    /// with `sync_flag` at each publication; recording-only).
    pub armed_cause: AtomicU8,
    /// Efficiency threshold (paper: 0.80).
    pub threshold: f64,
    /// Optional second trigger from the paper's concluding remarks:
    /// synchronize when any node's outbound MPI queue occupancy exceeds
    /// this depth (saturation shows in the queue before it shows in the
    /// cumulative efficiency).
    pub queue_threshold: Option<u64>,
}

/// Shared state of one Mattern / CA-GVT run.
pub struct MatternShared {
    core: Arc<GvtSharedCore>,
    ctrl: Arc<CtrlPlane>,
    cost: CostModel,
    nodes: u16,
    wpn: u16,
    rounds_started: AtomicU64,
    /// Highest round whose white population has fully drained.
    drained_round: AtomicU64,
    per_node: Vec<NodeCm>,
    ca: Option<CaExtra>,
}

impl MatternShared {
    pub fn new(
        core: Arc<GvtSharedCore>,
        ctrl: Arc<CtrlPlane>,
        spec: ClusterSpec,
        cost: CostModel,
        ca: Option<CaExtra>,
    ) -> Self {
        MatternShared {
            core,
            ctrl,
            cost,
            nodes: spec.nodes,
            wpn: spec.workers_per_node,
            rounds_started: AtomicU64::new(0),
            drained_round: AtomicU64::new(0),
            per_node: (0..spec.nodes).map(|_| NodeCm::new()).collect(),
            ca,
        }
    }

    #[inline]
    fn all_joined(&self, node: NodeId, round: u64) -> bool {
        self.per_node[node.index()].joined.load(Ordering::Acquire) >= round * self.wpn as u64
    }

    #[inline]
    fn all_checked(&self, node: NodeId, round: u64) -> bool {
        self.per_node[node.index()].checked.load(Ordering::Acquire) >= round * self.wpn as u64
    }
}

/// Bundle for pure Mattern GVT.
pub struct MatternBundle {
    shared: Arc<MatternShared>,
}

impl MatternBundle {
    pub fn new(
        core: Arc<GvtSharedCore>,
        ctrl: Arc<CtrlPlane>,
        spec: ClusterSpec,
        cost: CostModel,
    ) -> Self {
        MatternBundle { shared: Arc::new(MatternShared::new(core, ctrl, spec, cost, None)) }
    }

    pub(crate) fn with_shared(shared: Arc<MatternShared>) -> Self {
        MatternBundle { shared }
    }
}

impl GvtBundle for MatternBundle {
    fn name(&self) -> &'static str {
        if self.shared.ca.is_some() {
            "ca-gvt"
        } else {
            "mattern"
        }
    }

    fn worker_gvt(&self, node: NodeId, _lane: LaneId, _worker_index: u32) -> Box<dyn WorkerGvt> {
        Box::new(MatternWorker {
            shared: Arc::clone(&self.shared),
            node,
            rounds_done: 0,
            flushed: 0,
            bucket_cur: 0,
            bucket_next: 0,
            min_red: u64::MAX,
            sync_round: false,
            phase: Phase::White,
        })
    }

    fn mpi_gvt(&self, node: NodeId) -> Box<dyn MpiGvt> {
        Box::new(MatternMpi {
            shared: Arc::clone(&self.shared),
            node,
            held: None,
            initiator: InitiatorState::Idle,
            eff_window_base: (0, 0),
        })
    }
}

enum Phase {
    /// Between rounds; counting sends/receives locally.
    White,
    /// CA sync point 1: aligned red transition.
    BarrierA(u64),
    /// Red; waiting for the white population to drain.
    Red,
    /// CA sync point 2: aligned check-in.
    BarrierB(u64),
    /// Checked in; waiting for the published GVT.
    Checked,
    /// CA sync point 3: aligned completion (carries the GVT).
    BarrierC(u64, VirtualTime),
}

/// Worker half of Mattern / CA-GVT.
pub struct MatternWorker {
    shared: Arc<MatternShared>,
    node: NodeId,
    rounds_done: u64,
    /// Rounds whose local bucket has been flushed (= `rounds_done` while
    /// white, `rounds_done + 1` while red).
    flushed: u64,
    /// Net count for the next flush (round `flushed + 1`).
    bucket_cur: i64,
    /// Net count for the flush after that (sends made while red).
    bucket_next: i64,
    /// Ordered bits of the minimum red-send timestamp this round.
    min_red: u64,
    /// CA: is the current round synchronous?
    sync_round: bool,
    phase: Phase,
}

impl MatternWorker {
    fn cm(&self) -> &NodeCm {
        &self.shared.per_node[self.node.index()]
    }

    /// The red transition: flush the local white bucket into the node
    /// control structure and register the join.
    fn turn_red(&mut self) {
        let flush = self.bucket_cur;
        self.bucket_cur = self.bucket_next;
        self.bucket_next = 0;
        self.flushed = self.rounds_done + 1;
        self.min_red = u64::MAX;
        let cm = self.cm();
        cm.white.fetch_add(flush, Ordering::AcqRel);
        cm.joined.fetch_add(1, Ordering::AcqRel);
    }

    /// Contribute LVT and min-red into the node's min slots.
    fn check_in(&mut self, ctx: &WorkerGvtCtx) {
        let cm = self.cm();
        cm.lvt_min.fetch_min(ctx.lvt.to_ordered_bits(), Ordering::AcqRel);
        cm.red_min.fetch_min(self.min_red, Ordering::AcqRel);
        cm.checked.fetch_add(1, Ordering::AcqRel);
    }

    fn ca_barrier(&self) -> Option<&TwoLevelReduce> {
        self.shared.ca.as_ref().map(|ca| &ca.barrier)
    }

    /// Record a round phase transition on this worker's track.
    fn phase_mark(&self, ctx: &WorkerGvtCtx, round: u64, phase: GvtPhaseKind) {
        let track = Track::Worker(ctx.worker_index);
        self.shared.core.emit(ctx.now, || TraceRecord::GvtRound { track, round, phase });
    }

    /// Non-blocked outcome for in-round bookkeeping. Event processing
    /// continues during both modes' rounds — CA-GVT's synchronization
    /// blocks only *at* the three barrier points, aligning the phase
    /// transitions (paper Figure 7), not the whole round.
    fn working(&self, cost: WallNs) -> WorkerGvtOutcome {
        if cost == WallNs::ZERO {
            WorkerGvtOutcome::Quiet
        } else {
            WorkerGvtOutcome::Working(cost)
        }
    }
}

impl WorkerGvt for MatternWorker {
    fn on_send(&mut self, _class: MsgClass, recv_time: VirtualTime) -> u64 {
        // Every send carries tag `flushed + 1` and therefore belongs to the
        // *current* bucket (flushed at the next red transition) — also for
        // sends made while red: they are next round's white population.
        self.bucket_cur += 1;
        if self.flushed > self.rounds_done {
            // Red: additionally covered by this round's min_red.
            self.min_red = self.min_red.min(recv_time.to_ordered_bits());
        }
        self.flushed + 1
    }

    fn on_recv(&mut self, tag: u64, _class: MsgClass) {
        if tag <= self.flushed {
            self.cm().white.fetch_sub(1, Ordering::AcqRel);
        } else if tag == self.flushed + 1 {
            self.bucket_cur -= 1;
        } else {
            debug_assert_eq!(tag, self.flushed + 2, "message from an impossible round");
            self.bucket_next -= 1;
        }
    }

    fn step(&mut self, ctx: &WorkerGvtCtx) -> WorkerGvtOutcome {
        let cost = self.shared.cost;
        let r = self.rounds_done + 1;
        match self.phase {
            Phase::White => {
                if try_join_round(&self.shared.core, &self.shared.rounds_started, self.rounds_done)
                {
                    self.phase_mark(ctx, r, GvtPhaseKind::RoundStart);
                    self.sync_round = self
                        .shared
                        .ca
                        .as_ref()
                        .map(|ca| ca.sync_flag.load(Ordering::Acquire))
                        .unwrap_or(false);
                    if self.sync_round {
                        self.phase_mark(ctx, r, GvtPhaseKind::BarrierEnter);
                        let gen = self.ca_barrier().expect("sync implies CA").arrive(
                            self.node,
                            0,
                            u64::MAX,
                        );
                        self.phase = Phase::BarrierA(gen);
                        return WorkerGvtOutcome::Blocked(cost.node_barrier_arrival);
                    }
                    self.turn_red();
                    self.phase_mark(ctx, r, GvtPhaseKind::TurnRed);
                    self.phase = Phase::Red;
                    WorkerGvtOutcome::Working(cost.gvt_bookkeeping)
                } else {
                    WorkerGvtOutcome::Quiet
                }
            }
            Phase::BarrierA(gen) => {
                if self.ca_barrier().expect("CA").poll(self.node, gen).is_some() {
                    self.phase_mark(ctx, r, GvtPhaseKind::BarrierExit);
                    self.turn_red();
                    self.phase_mark(ctx, r, GvtPhaseKind::TurnRed);
                    self.phase = Phase::Red;
                    WorkerGvtOutcome::Blocked(cost.gvt_bookkeeping)
                } else {
                    WorkerGvtOutcome::Blocked(cost.idle_poll)
                }
            }
            Phase::Red => {
                if self.shared.drained_round.load(Ordering::Acquire) >= r {
                    if self.sync_round {
                        self.phase_mark(ctx, r, GvtPhaseKind::BarrierEnter);
                        let gen = self.ca_barrier().expect("CA").arrive(self.node, 0, u64::MAX);
                        self.phase = Phase::BarrierB(gen);
                        return WorkerGvtOutcome::Blocked(cost.node_barrier_arrival);
                    }
                    self.check_in(ctx);
                    self.phase_mark(ctx, r, GvtPhaseKind::CheckIn);
                    self.phase = Phase::Checked;
                    WorkerGvtOutcome::Working(cost.gvt_bookkeeping)
                } else {
                    self.working(WallNs::ZERO)
                }
            }
            Phase::BarrierB(gen) => {
                if self.ca_barrier().expect("CA").poll(self.node, gen).is_some() {
                    self.phase_mark(ctx, r, GvtPhaseKind::BarrierExit);
                    self.check_in(ctx);
                    self.phase_mark(ctx, r, GvtPhaseKind::CheckIn);
                    self.phase = Phase::Checked;
                    WorkerGvtOutcome::Blocked(cost.gvt_bookkeeping)
                } else {
                    WorkerGvtOutcome::Blocked(cost.idle_poll)
                }
            }
            Phase::Checked => {
                if self.shared.core.published_round() >= r {
                    let gvt = self.shared.core.published_gvt();
                    if self.sync_round {
                        self.phase_mark(ctx, r, GvtPhaseKind::BarrierEnter);
                        let gen = self.ca_barrier().expect("CA").arrive(self.node, 0, u64::MAX);
                        self.phase = Phase::BarrierC(gen, gvt);
                        return WorkerGvtOutcome::Blocked(cost.node_barrier_arrival);
                    }
                    self.rounds_done = r;
                    self.phase = Phase::White;
                    WorkerGvtOutcome::Completed { gvt, cost: cost.gvt_bookkeeping }
                } else {
                    self.working(WallNs::ZERO)
                }
            }
            Phase::BarrierC(gen, gvt) => {
                if self.ca_barrier().expect("CA").poll(self.node, gen).is_some() {
                    self.phase_mark(ctx, r, GvtPhaseKind::BarrierExit);
                    self.rounds_done = r;
                    self.phase = Phase::White;
                    WorkerGvtOutcome::Completed { gvt, cost: cost.gvt_bookkeeping }
                } else {
                    WorkerGvtOutcome::Blocked(cost.idle_poll)
                }
            }
        }
    }
}

enum InitiatorState {
    Idle,
    /// The white-count pass is circulating for this round.
    SumPass(u64),
    /// Drained; waiting for the local node's check-ins before pass two.
    AwaitChecks(u64),
    /// The min pass is circulating.
    MinPass(u64),
}

/// MPI half: ring circulation (node 0 initiates) plus, for CA-GVT, the
/// barrier relays and the per-round efficiency decision.
pub struct MatternMpi {
    shared: Arc<MatternShared>,
    node: NodeId,
    /// A control message waiting for this node's local gate.
    held: Option<CtrlMsg>,
    initiator: InitiatorState,
    /// Committed / rolled-back totals at the previous efficiency check
    /// (CA-GVT uses the per-round window so the signal responds within a
    /// workload phase; the paper's cumulative ratio barely moves at this
    /// harness scale — see EXPERIMENTS.md).
    eff_window_base: (u64, u64),
}

impl MatternMpi {
    fn is_initiator(&self) -> bool {
        self.node.0 == 0
    }

    /// Record a round phase transition on this MPI actor's track.
    fn phase_mark(&self, now: WallNs, round: u64, phase: GvtPhaseKind) {
        let track = Track::Mpi(self.node.0);
        self.shared.core.emit(now, || TraceRecord::GvtRound { track, round, phase });
    }

    /// Start (or restart) the white-count pass for `round`.
    fn launch_sum_pass(&mut self, now: WallNs, round: u64) -> WallNs {
        self.phase_mark(now, round, GvtPhaseKind::SumPass);
        let shared = &self.shared;
        let mut msg = CtrlMsg::new(KIND_SUM, round, self.node);
        msg.sum = shared.per_node[self.node.index()].white.load(Ordering::Acquire);
        msg.hops = 1;
        let next = shared.ctrl.ring_next(self.node);
        shared.ctrl.send(self.node, next, now, msg, &shared.cost);
        shared.cost.mpi_send
    }

    /// Contribute this node's mins and start pass two.
    fn launch_min_pass(&mut self, now: WallNs, round: u64) -> WallNs {
        self.phase_mark(now, round, GvtPhaseKind::MinPass);
        let shared = &self.shared;
        let cm = &shared.per_node[self.node.index()];
        let mut msg = CtrlMsg::new(KIND_MIN, round, self.node);
        msg.min1 = cm.lvt_min.swap(u64::MAX, Ordering::AcqRel);
        msg.min2 = cm.red_min.swap(u64::MAX, Ordering::AcqRel);
        msg.hops = 1;
        let next = shared.ctrl.ring_next(self.node);
        shared.ctrl.send(self.node, next, now, msg, &shared.cost);
        shared.cost.mpi_send
    }

    /// Publication at the initiator once pass two returns, including the
    /// CA-GVT efficiency decision.
    fn publish(&mut self, now: WallNs, msg: &CtrlMsg) -> WallNs {
        let shared = &self.shared;
        let gvt = VirtualTime::from_ordered_bits(msg.min1.min(msg.min2));
        let mut charge = shared.cost.gvt_bookkeeping;
        if let Some(ca) = &shared.ca {
            // Efficiency over the window since the previous round — the
            // controller's actual decision signal.
            let committed = shared.core.stats.committed.load(Ordering::Relaxed);
            let rolled = shared.core.stats.rolled_back.load(Ordering::Relaxed);
            let (c0, r0) = self.eff_window_base;
            self.eff_window_base = (committed, rolled);
            let (dc, dr) = (committed - c0, rolled - r0);
            let efficiency_window = if dc + dr == 0 {
                shared.core.stats.efficiency()
            } else {
                dc as f64 / (dc + dr) as f64
            };
            let was_sync = ca.sync_flag.load(Ordering::Acquire);
            let queue_high =
                ca.queue_threshold.map(|t| shared.core.max_mpi_queue_depth() > t).unwrap_or(false);
            let eff_low = efficiency_window < ca.threshold;
            ca.sync_flag.store(eff_low || queue_high, Ordering::Release);
            // Swap in the cause armed for the *next* round; the returned
            // previous value is why *this* round ran the way it did (it
            // was stored together with `sync_flag` at the last publish).
            let cause = SyncCause::from_u8(
                ca.armed_cause
                    .swap(SyncCause::from_flags(eff_low, queue_high).as_u8(), Ordering::AcqRel),
            );
            shared.core.stats.gvt_trace.lock().push(GvtRoundRecord {
                round: msg.round,
                gvt: gvt.as_f64(),
                synchronous: was_sync,
                efficiency: shared.core.stats.efficiency(),
                committed_delta: dc,
                rolled_back_delta: dr,
                efficiency_window,
                cause,
            });
            charge += shared.cost.efficiency_check;
        }
        shared.core.publish(gvt, msg.round);
        let round = msg.round;
        shared.core.emit(now, || TraceRecord::GvtRound {
            track: Track::Global,
            round,
            phase: GvtPhaseKind::Publish,
        });
        charge
    }
}

impl MpiGvt for MatternMpi {
    fn step(&mut self, now: WallNs) -> WallNs {
        let mut charge = WallNs::ZERO;
        let shared = Arc::clone(&self.shared);

        // CA barrier relays ride along every step.
        if shared.ca.is_some() {
            let latency = shared.cost.collective_latency(shared.nodes);
            if let Some(ca) = &shared.ca {
                let ops = ca.barrier.pump(self.node, now, latency);
                charge += WallNs(shared.cost.mpi_send.0 * ops as u64);
            }
        }

        // Initiator: kick off rounds and passes.
        if self.is_initiator() {
            match self.initiator {
                InitiatorState::Idle => {
                    let started = shared.rounds_started.load(Ordering::Acquire);
                    if started > shared.core.published_round()
                        && shared.all_joined(self.node, started)
                    {
                        charge += self.launch_sum_pass(now + charge, started);
                        self.initiator = InitiatorState::SumPass(started);
                    }
                }
                InitiatorState::AwaitChecks(round) if shared.all_checked(self.node, round) => {
                    charge += self.launch_min_pass(now + charge, round);
                    self.initiator = InitiatorState::MinPass(round);
                }
                _ => {}
            }
        }

        // Receive one control message if none is held.
        if self.held.is_none() {
            if let Some(m) = shared.ctrl.recv(self.node, now + charge) {
                charge += shared.cost.mpi_recv;
                self.held = Some(m);
            }
        }

        // Act on the held message once the local gate opens.
        if let Some(m) = self.held.take() {
            let complete = self.is_initiator() && m.hops == shared.nodes;
            match (m.kind, complete) {
                (KIND_SUM, true) => {
                    debug_assert!(
                        matches!(self.initiator, InitiatorState::SumPass(r) if r == m.round),
                        "sum pass round mismatch"
                    );
                    if m.sum == 0 {
                        shared.drained_round.store(m.round, Ordering::Release);
                        self.initiator = InitiatorState::AwaitChecks(m.round);
                    } else {
                        // Still in transit: circulate again with fresh
                        // counter readings.
                        charge += self.launch_sum_pass(now + charge, m.round);
                    }
                }
                (KIND_SUM, false) => {
                    if shared.all_joined(self.node, m.round) {
                        let mut m = m;
                        m.sum += shared.per_node[self.node.index()].white.load(Ordering::Acquire);
                        m.hops += 1;
                        let next = shared.ctrl.ring_next(self.node);
                        shared.ctrl.send(self.node, next, now + charge, m, &shared.cost);
                        charge += shared.cost.mpi_send;
                    } else {
                        self.held = Some(m); // wait for local red transition
                    }
                }
                (KIND_MIN, true) => {
                    debug_assert!(
                        matches!(self.initiator, InitiatorState::MinPass(r) if r == m.round),
                        "min pass round mismatch"
                    );
                    charge += self.publish(now + charge, &m);
                    self.initiator = InitiatorState::Idle;
                }
                (KIND_MIN, false) => {
                    if shared.all_checked(self.node, m.round) {
                        let cm = &shared.per_node[self.node.index()];
                        let mut m = m;
                        m.min1 = m.min1.min(cm.lvt_min.swap(u64::MAX, Ordering::AcqRel));
                        m.min2 = m.min2.min(cm.red_min.swap(u64::MAX, Ordering::AcqRel));
                        m.hops += 1;
                        let next = shared.ctrl.ring_next(self.node);
                        shared.ctrl.send(self.node, next, now + charge, m, &shared.cost);
                        charge += shared.cost.mpi_send;
                    } else {
                        self.held = Some(m); // wait for local check-ins
                    }
                }
                _ => unreachable!("unknown control message kind"),
            }
        }

        charge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_core::stats::SharedStats;
    use cagvt_core::WorkerGvtOutcome;
    use cagvt_net::fabric_pair;

    fn setup(nodes: u16, wpn: u16) -> (Arc<GvtSharedCore>, MatternBundle) {
        let stats = Arc::new(SharedStats::new((nodes * wpn) as u32));
        let core = Arc::new(GvtSharedCore::new(stats, nodes, wpn));
        let (_fabric, ctrl) = fabric_pair::<()>(nodes);
        let spec = ClusterSpec::new(nodes, wpn, cagvt_net::MpiMode::Dedicated);
        let bundle = MatternBundle::new(Arc::clone(&core), ctrl, spec, CostModel::knl_cluster());
        (core, bundle)
    }

    fn ctx(now_ns: u64, lvt: f64) -> WorkerGvtCtx {
        WorkerGvtCtx { now: WallNs(now_ns), lvt: VirtualTime::new(lvt), worker_index: 0 }
    }

    #[test]
    fn white_sends_are_tagged_for_the_next_round() {
        let (_core, bundle) = setup(1, 1);
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        // Never joined a round: flushed = 0, so the tag is round 1.
        assert_eq!(w.on_send(MsgClass::Regional, VirtualTime::new(1.0)), 1);
        assert_eq!(w.on_send(MsgClass::Remote, VirtualTime::new(2.0)), 1);
    }

    #[test]
    fn red_sends_are_tagged_one_round_later_and_tracked_in_min_red() {
        let (core, bundle) = setup(1, 1);
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        core.request_round();
        // Join round 1: the red transition happens in this step.
        assert!(matches!(w.step(&ctx(0, 5.0)), WorkerGvtOutcome::Working(_)));
        // Red in round 1: tag = 2.
        assert_eq!(w.on_send(MsgClass::Regional, VirtualTime::new(9.0)), 2);
    }

    /// One node, one worker: a complete round through the self-loop ring.
    #[test]
    fn single_node_round_publishes_min_of_lvt_and_red() {
        let (core, bundle) = setup(1, 1);
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let mut mpi = bundle.mpi_gvt(NodeId(0));

        core.request_round();
        // First step joins the round (red transition); send a red message
        // with a timestamp below the LVT *before* the check-in, so min_red
        // decides the GVT.
        assert!(matches!(w.step(&ctx(1_000, 6.0)), WorkerGvtOutcome::Working(_)));
        w.on_send(MsgClass::Regional, VirtualTime::new(4.5));

        let mut now = 1_000u64;
        let mut done = None;
        for _ in 0..10_000 {
            now += 1_000;
            mpi.step(WallNs(now));
            match w.step(&ctx(now, 6.0)) {
                WorkerGvtOutcome::Completed { gvt, .. } => {
                    done = Some(gvt);
                    break;
                }
                WorkerGvtOutcome::Blocked(_) => panic!("pure Mattern never blocks"),
                _ => {}
            }
        }
        assert_eq!(done, Some(VirtualTime::new(4.5)), "GVT = min(LVT=6.0, min_red=4.5)");
        assert_eq!(core.published_round(), 1);
    }

    /// An in-flight white message holds the round open until received.
    #[test]
    fn white_count_gates_the_drain() {
        let (core, bundle) = setup(1, 2);
        let mut w0 = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let mut w1 = bundle.worker_gvt(NodeId(0), LaneId(1), 1);
        let mut mpi = bundle.mpi_gvt(NodeId(0));

        let tag = w0.on_send(MsgClass::Regional, VirtualTime::new(3.0));
        assert_eq!(tag, 1);
        core.request_round();

        let mut now = 0u64;
        // Run a while without delivering: must not complete.
        for _ in 0..200 {
            now += 1_000;
            let _ = w0.step(&ctx(now, 5.0));
            let _ = w1.step(&ctx(now, 4.0));
            mpi.step(WallNs(now));
        }
        assert_eq!(core.published_round(), 0, "in-flight white message must gate the round");

        // Deliver, then the round completes.
        w1.on_recv(tag, MsgClass::Regional);
        let mut completions = 0;
        for _ in 0..10_000 {
            now += 1_000;
            for w in [&mut w0, &mut w1] {
                if let WorkerGvtOutcome::Completed { gvt, .. } = w.step(&ctx(now, 4.0)) {
                    assert_eq!(gvt, VirtualTime::new(4.0));
                    completions += 1;
                }
            }
            mpi.step(WallNs(now));
            if completions == 2 {
                break;
            }
        }
        assert_eq!(completions, 2);
    }

    /// Receiving a message tagged for a round this worker has already
    /// flushed decrements the shared node counter directly.
    #[test]
    fn late_white_receive_hits_the_node_counter() {
        let (core, bundle) = setup(1, 2);
        let mut w0 = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let mut w1 = bundle.worker_gvt(NodeId(0), LaneId(1), 1);

        // w0 sends white (tag 1) and both join round 1.
        let tag = w0.on_send(MsgClass::Regional, VirtualTime::new(2.0));
        core.request_round();
        let _ = w0.step(&ctx(0, 5.0));
        let _ = w1.step(&ctx(0, 5.0));
        // Both are red now (flushed = 1); w1 receives the white message.
        let shared = &bundle.shared;
        let before = shared.per_node[0].white.load(Ordering::Relaxed);
        w1.on_recv(tag, MsgClass::Regional);
        let after = shared.per_node[0].white.load(Ordering::Relaxed);
        assert_eq!(after, before - 1, "direct node-counter decrement");
    }
}
