//! Samadi's GVT algorithm (1985) — the acknowledgement-based baseline the
//! paper's related-work section contrasts against Mattern's.
//!
//! Every simulation message (event or anti) is acknowledged by its
//! receiver; a message stays in its *sender's* "unacknowledged" set — and
//! therefore in the sender's GVT report — until the ack arrives, so no
//! in-flight message can escape the computation. A GVT round is one
//! two-level min-reduction of
//! `min(LVT, unacknowledged sends, marked-ack timestamps)` per worker;
//! workers keep processing throughout (the algorithm is asynchronous, in
//! the paper's taxonomy).
//!
//! The **simultaneous reporting problem** (Samadi's own contribution): a
//! message can be received — and acknowledged — by a worker that has
//! already reported, with the ack reaching a sender that has *not* yet
//! reported, leaving the message's timestamp out of both reports. The fix:
//! a worker *marks* every ack it sends between its report and the end of
//! the round, and a sender folds the timestamps carried by marked acks
//! into its own (pending) report.
//!
//! The cost of all this is the doubled message traffic — exactly the
//! overhead Mattern's algorithm was designed to eliminate (paper §7). The
//! harness's `samadi` experiment measures it.

use cagvt_base::ids::{EventId, LaneId, NodeId};
use cagvt_base::time::{VirtualTime, WallNs};
use cagvt_core::gvt::{
    GvtBundle, GvtSharedCore, MpiGvt, WorkerGvt, WorkerGvtCtx, WorkerGvtOutcome,
};
use cagvt_net::{ClusterSpec, CostModel, MsgClass};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::common::{try_join_round, TwoLevelReduce};

/// Shared state of one Samadi GVT run.
pub struct SamadiShared {
    core: Arc<GvtSharedCore>,
    reduce: TwoLevelReduce,
    rounds_started: AtomicU64,
    cost: CostModel,
    nodes: u16,
}

/// Bundle factory for Samadi's GVT.
pub struct SamadiBundle {
    shared: Arc<SamadiShared>,
}

impl SamadiBundle {
    pub fn new(core: Arc<GvtSharedCore>, spec: ClusterSpec, cost: CostModel) -> Self {
        SamadiBundle {
            shared: Arc::new(SamadiShared {
                core,
                reduce: TwoLevelReduce::new(spec.nodes, spec.workers_per_node),
                rounds_started: AtomicU64::new(0),
                cost,
                nodes: spec.nodes,
            }),
        }
    }
}

impl GvtBundle for SamadiBundle {
    fn name(&self) -> &'static str {
        "samadi"
    }

    fn worker_gvt(&self, node: NodeId, _lane: LaneId, _worker_index: u32) -> Box<dyn WorkerGvt> {
        Box::new(SamadiWorker {
            shared: Arc::clone(&self.shared),
            node,
            rounds_done: 0,
            unacked: HashMap::new(),
            marked_min: u64::MAX,
            reported: false,
            state: State::Idle,
        })
    }

    fn mpi_gvt(&self, node: NodeId) -> Box<dyn MpiGvt> {
        Box::new(SamadiMpi { shared: Arc::clone(&self.shared), node })
    }
}

enum State {
    Idle,
    /// Reported; waiting for the cluster min of this generation.
    Wait(u64),
}

/// Worker half of Samadi's GVT.
pub struct SamadiWorker {
    shared: Arc<SamadiShared>,
    node: NodeId,
    rounds_done: u64,
    /// Sent-but-unacknowledged messages with multiplicity, keyed by
    /// `(id, is_anti, receive-time bits)`: events and their anti-messages
    /// share ids, and a rolled-back sender can re-send a message while the
    /// original (or even an identical copy) is still unacknowledged.
    unacked: HashMap<(EventId, bool, u64), u32>,
    /// Min timestamp carried by marked acks received this round (ordered
    /// bits).
    marked_min: u64,
    /// This worker has reported in the current round (marks its acks).
    reported: bool,
    state: State,
}

impl SamadiWorker {
    fn unacked_min(&self) -> u64 {
        self.unacked.keys().map(|(_, _, bits)| *bits).min().unwrap_or(u64::MAX)
    }
}

impl WorkerGvt for SamadiWorker {
    fn on_send(&mut self, _class: MsgClass, _recv_time: VirtualTime) -> u64 {
        0 // no coloring; coverage comes from the unacked set
    }

    fn on_recv(&mut self, _tag: u64, _class: MsgClass) {}

    fn wants_acks(&self) -> bool {
        true
    }

    fn on_send_tracked(&mut self, id: EventId, recv_time: VirtualTime, anti: bool) {
        *self.unacked.entry((id, anti, recv_time.to_ordered_bits())).or_insert(0) += 1;
    }

    fn mark_acks(&self) -> bool {
        self.reported
    }

    fn on_ack(&mut self, id: EventId, recv_time: VirtualTime, anti: bool, marked: bool) {
        let key = (id, anti, recv_time.to_ordered_bits());
        match self.unacked.get_mut(&key) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.unacked.remove(&key);
                }
            }
            None => debug_assert!(false, "ack for an untracked message {id}"),
        }
        if marked {
            // The receiver had already reported when it got this message;
            // its timestamp must ride in *our* report.
            self.marked_min = self.marked_min.min(recv_time.to_ordered_bits());
        }
    }

    fn step(&mut self, ctx: &WorkerGvtCtx) -> WorkerGvtOutcome {
        let cost = self.shared.cost;
        match self.state {
            State::Idle => {
                if try_join_round(&self.shared.core, &self.shared.rounds_started, self.rounds_done)
                {
                    let report =
                        ctx.lvt.to_ordered_bits().min(self.unacked_min()).min(self.marked_min);
                    let gen = self.shared.reduce.arrive(self.node, 0, report);
                    self.reported = true;
                    self.state = State::Wait(gen);
                    WorkerGvtOutcome::Working(cost.gvt_bookkeeping)
                } else {
                    WorkerGvtOutcome::Quiet
                }
            }
            State::Wait(gen) => match self.shared.reduce.poll(self.node, gen) {
                None => WorkerGvtOutcome::Quiet, // keep simulating
                Some(v) => {
                    let gvt = VirtualTime::from_ordered_bits(v.min);
                    self.rounds_done += 1;
                    self.reported = false;
                    self.marked_min = u64::MAX;
                    self.state = State::Idle;
                    if self.shared.core.published_round() < self.rounds_done {
                        self.shared.core.publish(gvt, self.rounds_done);
                    }
                    WorkerGvtOutcome::Completed { gvt, cost: cost.gvt_bookkeeping }
                }
            },
        }
    }
}

/// MPI half: relays the min reduction through the cluster collective.
pub struct SamadiMpi {
    shared: Arc<SamadiShared>,
    node: NodeId,
}

impl MpiGvt for SamadiMpi {
    fn step(&mut self, now: WallNs) -> WallNs {
        let latency = self.shared.cost.collective_latency(self.shared.nodes);
        let ops = self.shared.reduce.pump(self.node, now, latency);
        WallNs(self.shared.cost.mpi_send.0 * ops as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::ids::LpId;
    use cagvt_core::stats::SharedStats;

    fn setup(nodes: u16, wpn: u16) -> (Arc<GvtSharedCore>, SamadiBundle) {
        let stats = Arc::new(SharedStats::new((nodes * wpn) as u32));
        let core = Arc::new(GvtSharedCore::new(stats, nodes, wpn));
        let spec = ClusterSpec::new(nodes, wpn, cagvt_net::MpiMode::Dedicated);
        (Arc::clone(&core), SamadiBundle::new(core, spec, CostModel::knl_cluster()))
    }

    fn ctx(lvt: f64) -> WorkerGvtCtx {
        WorkerGvtCtx { now: WallNs(0), lvt: VirtualTime::new(lvt), worker_index: 0 }
    }

    fn id(seq: u64) -> EventId {
        EventId::new(LpId(3), seq)
    }

    #[test]
    fn unacked_sends_hold_the_report_down() {
        let (core, bundle) = setup(1, 1);
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let mut mpi = bundle.mpi_gvt(NodeId(0));
        assert!(w.wants_acks());

        // An unacked message at t=2.5 while the LVT is 7.0.
        w.on_send_tracked(id(0), VirtualTime::new(2.5), false);
        core.request_round();
        assert!(matches!(w.step(&ctx(7.0)), WorkerGvtOutcome::Working(_)));
        let mut now = 0u64;
        loop {
            now += 1_000;
            mpi.step(WallNs(now));
            if let WorkerGvtOutcome::Completed { gvt, .. } = w.step(&ctx(7.0)) {
                assert_eq!(gvt, VirtualTime::new(2.5), "unacked send bounds the GVT");
                break;
            }
            assert!(now < 10_000_000, "round must complete");
        }

        // Acked: the next round reports the LVT.
        w.on_ack(id(0), VirtualTime::new(2.5), false, false);
        core.request_round();
        let _ = w.step(&ctx(7.0));
        loop {
            now += 1_000;
            mpi.step(WallNs(now));
            if let WorkerGvtOutcome::Completed { gvt, .. } = w.step(&ctx(7.0)) {
                assert_eq!(gvt, VirtualTime::new(7.0));
                break;
            }
            assert!(now < 20_000_000);
        }
    }

    #[test]
    fn marked_acks_cover_the_reporting_window() {
        let (core, bundle) = setup(1, 2);
        let mut sender = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let mut receiver = bundle.worker_gvt(NodeId(0), LaneId(1), 1);
        let mut mpi = bundle.mpi_gvt(NodeId(0));

        // Sender has one message at t=1.5 in flight.
        sender.on_send_tracked(id(7), VirtualTime::new(1.5), false);
        core.request_round();
        // Receiver reports first (LVT 9) and starts marking its acks.
        assert!(matches!(receiver.step(&ctx(9.0)), WorkerGvtOutcome::Working(_)));
        assert!(receiver.mark_acks());
        assert!(!sender.mark_acks(), "sender has not reported yet");
        // The message arrives at the receiver, which acks marked; the
        // sender gets the marked ack *before* reporting.
        sender.on_ack(id(7), VirtualTime::new(1.5), false, true);
        // Sender now reports LVT 8 — but the marked ack pins 1.5.
        assert!(matches!(sender.step(&ctx(8.0)), WorkerGvtOutcome::Working(_)));

        let mut now = 0u64;
        let mut done = 0;
        let mut gvt = VirtualTime::ZERO;
        while done < 2 {
            now += 1_000;
            mpi.step(WallNs(now));
            for w in [&mut sender, &mut receiver] {
                if let WorkerGvtOutcome::Completed { gvt: g, .. } = w.step(&ctx(9.0)) {
                    gvt = g;
                    done += 1;
                }
            }
            assert!(now < 10_000_000);
        }
        assert_eq!(gvt, VirtualTime::new(1.5), "marked ack must pin the GVT");
        assert!(!receiver.mark_acks(), "marking window closes with the round");
    }

    #[test]
    fn events_and_antis_with_the_same_id_track_separately() {
        let (_core, bundle) = setup(1, 1);
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        w.on_send_tracked(id(4), VirtualTime::new(3.0), false);
        w.on_send_tracked(id(4), VirtualTime::new(3.0), true); // its anti
        w.on_ack(id(4), VirtualTime::new(3.0), false, false);
        // The anti is still unacked; the worker-side min must reflect it.
        // (Indirectly observable through a report; here via a second ack
        // not panicking the debug assertion.)
        w.on_ack(id(4), VirtualTime::new(3.0), true, false);
    }
}
