//! Synchronous Barrier GVT (paper Algorithm 1, Figure 1).
//!
//! When a round starts, every worker stops processing events and loops:
//! drain incoming messages (the engine does this at the top of every
//! worker step, blocked or not), contribute its cumulative
//! `sent - received` to a two-level sum reduction, and repeat until the
//! cluster-wide total — the number of in-transit messages — is zero. A
//! final two-level min reduction over worker LVTs then yields the new GVT.
//! Workers are blocked for the whole round; the dominant cost is idle
//! barrier time, which grows with message load (the paper's
//! communication-dominated slowdown) and with event granularity (stragglers
//! into the barrier).

use cagvt_base::ids::{LaneId, NodeId};
use cagvt_base::time::{VirtualTime, WallNs};
use cagvt_base::trace::{GvtPhaseKind, TraceRecord, Track};
use cagvt_core::gvt::{
    GvtBundle, GvtSharedCore, MpiGvt, WorkerGvt, WorkerGvtCtx, WorkerGvtOutcome,
};
use cagvt_net::{ClusterSpec, CostModel, MsgClass};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::common::{try_join_round, TwoLevelReduce};

/// Shared state of one Barrier GVT run.
pub struct BarrierShared {
    core: Arc<GvtSharedCore>,
    reduce: TwoLevelReduce,
    rounds_started: AtomicU64,
    cost: CostModel,
    nodes: u16,
}

/// Bundle factory for Barrier GVT.
pub struct BarrierBundle {
    shared: Arc<BarrierShared>,
}

impl BarrierBundle {
    pub fn new(core: Arc<GvtSharedCore>, spec: ClusterSpec, cost: CostModel) -> Self {
        BarrierBundle {
            shared: Arc::new(BarrierShared {
                core,
                reduce: TwoLevelReduce::new(spec.nodes, spec.workers_per_node),
                rounds_started: AtomicU64::new(0),
                cost,
                nodes: spec.nodes,
            }),
        }
    }
}

impl GvtBundle for BarrierBundle {
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn worker_gvt(&self, node: NodeId, _lane: LaneId, _worker_index: u32) -> Box<dyn WorkerGvt> {
        Box::new(BarrierWorker {
            shared: Arc::clone(&self.shared),
            node,
            rounds_done: 0,
            sent: 0,
            received: 0,
            state: State::Idle,
        })
    }

    fn mpi_gvt(&self, node: NodeId) -> Box<dyn MpiGvt> {
        Box::new(BarrierMpi { shared: Arc::clone(&self.shared), node })
    }
}

enum State {
    /// No round in progress.
    Idle,
    /// Waiting for the two-level sum of `msgCount` (drain loop).
    WaitSum(u64),
    /// Waiting for the two-level min of LVTs.
    WaitMin(u64),
}

/// Worker half of Barrier GVT.
pub struct BarrierWorker {
    shared: Arc<BarrierShared>,
    node: NodeId,
    rounds_done: u64,
    /// Cumulative channel messages sent / received by this worker
    /// (Algorithm 1's `LP.MsgSent` / `LP.MsgReceived`).
    sent: u64,
    received: u64,
    state: State,
}

impl WorkerGvt for BarrierWorker {
    fn on_send(&mut self, _class: MsgClass, _recv_time: VirtualTime) -> u64 {
        self.sent += 1;
        0
    }

    fn on_recv(&mut self, _tag: u64, _class: MsgClass) {
        self.received += 1;
    }

    fn step(&mut self, ctx: &WorkerGvtCtx) -> WorkerGvtOutcome {
        let cost = &self.shared.cost;
        match self.state {
            State::Idle => {
                if try_join_round(&self.shared.core, &self.shared.rounds_started, self.rounds_done)
                {
                    let (track, round) = (Track::Worker(ctx.worker_index), self.rounds_done + 1);
                    self.shared.core.emit(ctx.now, || TraceRecord::GvtRound {
                        track,
                        round,
                        phase: GvtPhaseKind::BarrierEnter,
                    });
                    let msg_count = self.sent as i64 - self.received as i64;
                    let gen = self.shared.reduce.arrive(self.node, msg_count, u64::MAX);
                    self.state = State::WaitSum(gen);
                    WorkerGvtOutcome::Blocked(cost.node_barrier_arrival)
                } else {
                    WorkerGvtOutcome::Quiet
                }
            }
            State::WaitSum(gen) => match self.shared.reduce.poll(self.node, gen) {
                None => WorkerGvtOutcome::Blocked(cost.idle_poll),
                Some(v) => {
                    if v.sum == 0 {
                        // All in-transit messages received: reduce LVTs.
                        let (track, round) =
                            (Track::Worker(ctx.worker_index), self.rounds_done + 1);
                        self.shared.core.emit(ctx.now, || TraceRecord::GvtRound {
                            track,
                            round,
                            phase: GvtPhaseKind::SumPass,
                        });
                        let gen =
                            self.shared.reduce.arrive(self.node, 0, ctx.lvt.to_ordered_bits());
                        self.state = State::WaitMin(gen);
                    } else {
                        // Still in transit: drain (engine does it each
                        // step) and re-reduce.
                        let msg_count = self.sent as i64 - self.received as i64;
                        let gen = self.shared.reduce.arrive(self.node, msg_count, u64::MAX);
                        self.state = State::WaitSum(gen);
                    }
                    WorkerGvtOutcome::Blocked(cost.node_barrier_arrival)
                }
            },
            State::WaitMin(gen) => match self.shared.reduce.poll(self.node, gen) {
                None => WorkerGvtOutcome::Blocked(cost.idle_poll),
                Some(v) => {
                    let gvt = VirtualTime::from_ordered_bits(v.min);
                    self.rounds_done += 1;
                    self.state = State::Idle;
                    let (track, round) = (Track::Worker(ctx.worker_index), self.rounds_done);
                    self.shared.core.emit(ctx.now, || TraceRecord::GvtRound {
                        track,
                        round,
                        phase: GvtPhaseKind::BarrierExit,
                    });
                    // First completer publishes for the cluster.
                    if self.shared.core.published_round() < self.rounds_done {
                        self.shared.core.publish(gvt, self.rounds_done);
                        self.shared.core.emit(ctx.now, || TraceRecord::GvtRound {
                            track: Track::Global,
                            round,
                            phase: GvtPhaseKind::Publish,
                        });
                    }
                    WorkerGvtOutcome::Completed { gvt, cost: cost.node_barrier_arrival }
                }
            },
        }
    }
}

/// MPI half: relays node reductions through the cluster collective.
pub struct BarrierMpi {
    shared: Arc<BarrierShared>,
    node: NodeId,
}

impl MpiGvt for BarrierMpi {
    fn step(&mut self, now: WallNs) -> WallNs {
        let latency = self.shared.cost.collective_latency(self.shared.nodes);
        let ops = self.shared.reduce.pump(self.node, now, latency);
        WallNs(self.shared.cost.mpi_send.0 * ops as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_core::stats::SharedStats;
    use cagvt_core::WorkerGvtOutcome;

    fn setup(nodes: u16, wpn: u16) -> (Arc<GvtSharedCore>, BarrierBundle) {
        let stats = Arc::new(SharedStats::new((nodes * wpn) as u32));
        let core = Arc::new(GvtSharedCore::new(stats, nodes, wpn));
        let spec = ClusterSpec::new(nodes, wpn, cagvt_net::MpiMode::Dedicated);
        let bundle = BarrierBundle::new(Arc::clone(&core), spec, CostModel::knl_cluster());
        (core, bundle)
    }

    fn ctx(lvt: f64, widx: u32) -> WorkerGvtCtx {
        WorkerGvtCtx { now: WallNs(0), lvt: VirtualTime::new(lvt), worker_index: widx }
    }

    #[test]
    fn quiet_until_round_requested() {
        let (_core, bundle) = setup(1, 2);
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        assert_eq!(w.step(&ctx(1.0, 0)), WorkerGvtOutcome::Quiet);
        assert_eq!(w.step(&ctx(1.0, 0)), WorkerGvtOutcome::Quiet);
    }

    #[test]
    fn send_and_recv_update_cumulative_counts() {
        let (_core, bundle) = setup(1, 1);
        let mut w = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        assert_eq!(w.on_send(MsgClass::Regional, VirtualTime::new(1.0)), 0);
        assert_eq!(w.on_send(MsgClass::Remote, VirtualTime::new(2.0)), 0);
        w.on_recv(0, MsgClass::Regional);
        // Counts are internal; verified via the drain loop behaviour in
        // the full-round test below.
    }

    /// Drive a complete round by hand on a 2-worker single node: first sum
    /// iteration sees one in-flight message, second sees zero, then the
    /// min reduction produces the GVT.
    #[test]
    fn full_round_with_drain_iteration() {
        let (core, bundle) = setup(1, 2);
        let mut w0 = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let mut w1 = bundle.worker_gvt(NodeId(0), LaneId(1), 1);
        let mut mpi = bundle.mpi_gvt(NodeId(0));

        // One message from w0 to w1 still in flight at round start.
        w0.on_send(MsgClass::Regional, VirtualTime::new(3.0));
        core.request_round();

        let mut now = WallNs(0);
        let mut delivered = false;
        let mut completions = 0;
        let mut gvt = VirtualTime::ZERO;
        for _ in 0..10_000 {
            now += WallNs(1_000);
            // The in-flight message arrives mid-round (while blocked).
            if !delivered && now > WallNs(20_000) {
                w1.on_recv(0, MsgClass::Regional);
                delivered = true;
            }
            for (w, lvt) in [(&mut w0, 5.0), (&mut w1, 4.0)] {
                match w.step(&WorkerGvtCtx { now, lvt: VirtualTime::new(lvt), worker_index: 0 }) {
                    WorkerGvtOutcome::Completed { gvt: g, .. } => {
                        completions += 1;
                        gvt = g;
                    }
                    WorkerGvtOutcome::Blocked(_) | WorkerGvtOutcome::Quiet => {}
                    WorkerGvtOutcome::Working(_) => panic!("barrier never works asynchronously"),
                }
            }
            mpi.step(now);
            if completions == 2 {
                break;
            }
        }
        assert_eq!(completions, 2, "both workers must complete the round");
        assert!(delivered, "the drain loop must have waited for the message");
        assert_eq!(gvt, VirtualTime::new(4.0), "GVT = min of worker LVTs");
        assert_eq!(core.published_gvt(), VirtualTime::new(4.0));
        assert_eq!(core.published_round(), 1);
        assert!(!core.round_requested(), "publication clears the request flag");
    }

    /// Two nodes: the round cannot complete until both nodes' reductions
    /// are relayed through the cluster collective.
    #[test]
    fn multi_node_round_requires_both_mpi_relays() {
        let (core, bundle) = setup(2, 1);
        let mut w0 = bundle.worker_gvt(NodeId(0), LaneId(0), 0);
        let mut w1 = bundle.worker_gvt(NodeId(1), LaneId(0), 1);
        let mut mpi0 = bundle.mpi_gvt(NodeId(0));
        let mut mpi1 = bundle.mpi_gvt(NodeId(1));
        core.request_round();

        let mut now = WallNs(0);
        // Without node 1's relay, nothing completes.
        for _ in 0..100 {
            now += WallNs(1_000);
            let _ = w0.step(&ctx(2.0, 0));
            let _ = w1.step(&ctx(7.0, 1));
            mpi0.step(now);
        }
        assert_eq!(core.published_round(), 0);

        let mut completions = 0;
        for _ in 0..10_000 {
            now += WallNs(1_000);
            for (w, lvt) in [(&mut w0, 2.0), (&mut w1, 7.0)] {
                if let WorkerGvtOutcome::Completed { gvt, .. } =
                    w.step(&WorkerGvtCtx { now, lvt: VirtualTime::new(lvt), worker_index: 0 })
                {
                    assert_eq!(gvt, VirtualTime::new(2.0));
                    completions += 1;
                }
            }
            mpi0.step(now);
            mpi1.step(now);
            if completions == 2 {
                break;
            }
        }
        assert_eq!(completions, 2);
        assert_eq!(core.published_gvt(), VirtualTime::new(2.0));
    }
}
