//! Controlled Asynchronous GVT (paper Algorithm 3, Figure 7).
//!
//! CA-GVT *is* Mattern's algorithm (see [`crate::mattern`]) plus three
//! conditional synchronization points driven by observed efficiency:
//!
//! 1. a two-level barrier before the white→red transition (Algorithm 3
//!    line 4), aligning the cut across all LPs;
//! 2. a barrier after the white count drains, before LVT/min-red check-in
//!    (line 14);
//! 3. a barrier at round completion (line 30; the paper places it after
//!    fossil collection — here it is taken immediately before the engine
//!    fossil collects, which synchronizes the identical instant of the
//!    round and keeps the fossil pass outside the algorithm).
//!
//! After each round the initiator computes the efficiency (committed over
//! committed-plus-rolled-back) over the window since the previous round —
//! the paper uses the cumulative ratio, which barely moves at this
//! harness's horizons (see EXPERIMENTS.md) — and arms the barriers for the
//! next round when it falls below the threshold, or (with the extended
//! trigger) when any node's outbound MPI queue is deep. The barriers align
//! the phase *transitions* (paper Figure 7); event processing continues
//! between them, so a synchronous round bounds virtual-time disparity by
//! re-aligning all LPs three times per round. In asynchronous rounds the
//! algorithm is indistinguishable from Mattern apart from the per-round
//! efficiency computation (the overhead the paper measures as CA-GVT's
//! small computation-dominated penalty).

use cagvt_base::ids::{LaneId, NodeId};
use cagvt_core::gvt::{GvtBundle, GvtSharedCore, MpiGvt, WorkerGvt};
use cagvt_net::{ClusterSpec, CostModel, CtrlPlane};
use std::sync::atomic::{AtomicBool, AtomicU8};
use std::sync::Arc;

use crate::common::TwoLevelReduce;
use crate::mattern::{CaExtra, MatternBundle, MatternShared};

/// Bundle for CA-GVT.
pub struct CaGvtBundle {
    inner: MatternBundle,
}

impl CaGvtBundle {
    pub fn new(
        core: Arc<GvtSharedCore>,
        ctrl: Arc<CtrlPlane>,
        spec: ClusterSpec,
        cost: CostModel,
        threshold: f64,
    ) -> Self {
        Self::with_queue_threshold(core, ctrl, spec, cost, threshold, None)
    }

    /// CA-GVT with the extended trigger from the paper's conclusion: also
    /// synchronize when a node's outbound MPI queue exceeds
    /// `queue_threshold` messages.
    pub fn with_queue_threshold(
        core: Arc<GvtSharedCore>,
        ctrl: Arc<CtrlPlane>,
        spec: ClusterSpec,
        cost: CostModel,
        threshold: f64,
        queue_threshold: Option<u64>,
    ) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold is a ratio, got {threshold}");
        let ca = CaExtra {
            barrier: TwoLevelReduce::new(spec.nodes, spec.workers_per_node),
            sync_flag: AtomicBool::new(false),
            armed_cause: AtomicU8::new(0),
            threshold,
            queue_threshold,
        };
        let shared = Arc::new(MatternShared::new(core, ctrl, spec, cost, Some(ca)));
        CaGvtBundle { inner: MatternBundle::with_shared(shared) }
    }
}

impl GvtBundle for CaGvtBundle {
    fn name(&self) -> &'static str {
        "ca-gvt"
    }

    fn worker_gvt(&self, node: NodeId, lane: LaneId, worker_index: u32) -> Box<dyn WorkerGvt> {
        self.inner.worker_gvt(node, lane, worker_index)
    }

    fn mpi_gvt(&self, node: NodeId) -> Box<dyn MpiGvt> {
        self.inner.mpi_gvt(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_core::stats::SharedStats;
    use cagvt_net::fabric_pair;

    fn parts(nodes: u16, wpn: u16) -> (Arc<GvtSharedCore>, Arc<CtrlPlane>, ClusterSpec) {
        let stats = Arc::new(SharedStats::new((nodes * wpn) as u32));
        let core = Arc::new(GvtSharedCore::new(stats, nodes, wpn));
        let (_fabric, ctrl) = fabric_pair::<()>(nodes);
        (core, ctrl, ClusterSpec::new(nodes, wpn, cagvt_net::MpiMode::Dedicated))
    }

    #[test]
    fn bundle_reports_its_name() {
        let (core, ctrl, spec) = parts(1, 2);
        let b = CaGvtBundle::new(core, ctrl, spec, CostModel::knl_cluster(), 0.8);
        assert_eq!(b.name(), "ca-gvt");
    }

    #[test]
    #[should_panic]
    fn threshold_must_be_a_ratio() {
        let (core, ctrl, spec) = parts(1, 1);
        let _ = CaGvtBundle::new(core, ctrl, spec, CostModel::knl_cluster(), 1.5);
    }

    #[test]
    fn queue_threshold_variant_constructs() {
        let (core, ctrl, spec) = parts(2, 2);
        let b = CaGvtBundle::with_queue_threshold(
            core,
            ctrl,
            spec,
            CostModel::knl_cluster(),
            0.8,
            Some(100),
        );
        assert_eq!(b.name(), "ca-gvt");
        // Both halves construct for every node/lane.
        let _w = b.worker_gvt(cagvt_base::NodeId(1), cagvt_base::LaneId(1), 3);
        let _m = b.mpi_gvt(cagvt_base::NodeId(0));
    }

    #[test]
    fn queue_depth_feeds_the_shared_core() {
        let (core, _ctrl, _spec) = parts(2, 1);
        assert_eq!(core.max_mpi_queue_depth(), 0);
        core.mpi_queue_depth[1].store(42, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(core.max_mpi_queue_depth(), 42);
    }
}
