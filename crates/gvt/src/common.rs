//! Two-level barrier/reduction shared by the synchronous algorithms.
//!
//! The paper's Barrier GVT synchronizes in two stages: a pthread barrier +
//! reduction among a node's threads, then an MPI barrier + reduction among
//! nodes, with the result broadcast back. [`TwoLevelReduce`] packages that
//! as a polled pipeline:
//!
//! ```text
//!   workers --arrive--> NodeReduce --(MPI side relays)--> ClusterCollective
//!   workers <--poll---- node result slot <---(MPI side publishes)----┘
//! ```
//!
//! Generations advance in lockstep across the cluster: every participant
//! observes the result of generation `g` before arriving for `g + 1`, so a
//! double-buffered result slot per node suffices. CA-GVT reuses the same
//! structure with identity values as its pure barrier.

use cagvt_base::ids::NodeId;
use cagvt_base::time::WallNs;
use cagvt_net::{ClusterCollective, NodeReduce, ReduceValue};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Polled two-level sum/min reduction over the whole cluster.
pub struct TwoLevelReduce {
    node_reduce: Vec<NodeReduce>,
    cluster: ClusterCollective,
    /// Per node: count of cluster generations published back to workers.
    published: Vec<AtomicU64>,
    /// Per node: double-buffered published results.
    results: Vec<Mutex<[ReduceValue; 2]>>,
    /// Per node: count of node generations relayed up to the cluster.
    relayed: Vec<AtomicU64>,
}

impl TwoLevelReduce {
    pub fn new(nodes: u16, workers_per_node: u16) -> Self {
        TwoLevelReduce {
            node_reduce: (0..nodes).map(|_| NodeReduce::new(workers_per_node as u32)).collect(),
            cluster: ClusterCollective::new(nodes as u32),
            published: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            results: (0..nodes).map(|_| Mutex::new([ReduceValue::IDENTITY; 2])).collect(),
            relayed: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Worker side: contribute `(sum, min)`; returns the generation token.
    pub fn arrive(&self, node: NodeId, sum: i64, min: u64) -> u64 {
        self.node_reduce[node.index()].arrive(sum, min)
    }

    /// Worker side: the cluster-wide result for `gen`, once it has been
    /// relayed, reduced across nodes, and published back to this node.
    pub fn poll(&self, node: NodeId, gen: u64) -> Option<ReduceValue> {
        if self.published[node.index()].load(Ordering::Acquire) > gen {
            Some(self.results[node.index()].lock()[(gen % 2) as usize])
        } else {
            None
        }
    }

    /// MPI side: relay a completed node reduction up to the cluster
    /// collective and publish completed cluster results back to the node.
    /// Returns the number of operations performed (each is one modeled MPI
    /// call for the caller to charge).
    pub fn pump(&self, node: NodeId, now: WallNs, collective_latency: WallNs) -> u32 {
        let mut ops = 0;
        let idx = node.index();

        let relay_gen = self.relayed[idx].load(Ordering::Acquire);
        if let Some(v) = self.node_reduce[idx].try_result(relay_gen) {
            self.cluster.arrive(now, v.sum, v.min, collective_latency);
            self.relayed[idx].store(relay_gen + 1, Ordering::Release);
            ops += 1;
        }

        let pub_gen = self.published[idx].load(Ordering::Acquire);
        if let Some(v) = self.cluster.try_result(now, pub_gen) {
            self.results[idx].lock()[(pub_gen % 2) as usize] = v;
            self.published[idx].store(pub_gen + 1, Ordering::Release);
            ops += 1;
        }
        ops
    }
}

/// Round-join protocol shared by all three algorithms.
///
/// A worker that has completed `rounds_done` rounds joins round
/// `rounds_done + 1` as soon as it has started; the first worker to
/// observe the engine's round-request flag — gated on the previous round
/// having published, so rounds never overlap — starts it. Once
/// `rounds_started` is bumped, *every* worker observes it, so nobody can
/// miss a round (which would deadlock the barriers and ring gates).
pub fn try_join_round(
    core: &cagvt_core::gvt::GvtSharedCore,
    rounds_started: &AtomicU64,
    rounds_done: u64,
) -> bool {
    if rounds_started.load(Ordering::Acquire) > rounds_done {
        return true;
    }
    if core.round_requested() && core.published_round() == rounds_done {
        if rounds_started
            .compare_exchange(rounds_done, rounds_done + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            core.round_requested.store(false, Ordering::Release);
            return true;
        }
        // Someone else started it in the same instant.
        return rounds_started.load(Ordering::Acquire) > rounds_done;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a full generation by hand: 2 nodes x 2 workers.
    #[test]
    fn full_generation_flows_through_both_levels() {
        let r = TwoLevelReduce::new(2, 2);
        let lat = WallNs(1_000);

        let g = r.arrive(NodeId(0), 1, 100);
        r.arrive(NodeId(0), 2, 50);
        r.arrive(NodeId(1), 3, 75);
        r.arrive(NodeId(1), -1, 200);

        assert_eq!(r.poll(NodeId(0), g), None);
        // MPI pumps relay each node's partial result.
        assert_eq!(r.pump(NodeId(0), WallNs(10), lat), 1);
        assert_eq!(r.pump(NodeId(1), WallNs(20), lat), 1);
        // Cluster completes at t=20, visible at 20+1000.
        assert_eq!(r.pump(NodeId(0), WallNs(500), lat), 0);
        assert_eq!(r.poll(NodeId(0), g), None);
        assert_eq!(r.pump(NodeId(0), WallNs(1_100), lat), 1);
        assert_eq!(r.pump(NodeId(1), WallNs(1_200), lat), 1);

        let v0 = r.poll(NodeId(0), g).unwrap();
        let v1 = r.poll(NodeId(1), g).unwrap();
        assert_eq!(v0, v1);
        assert_eq!(v0.sum, 5);
        assert_eq!(v0.min, 50);
    }

    #[test]
    fn consecutive_generations_double_buffer() {
        let r = TwoLevelReduce::new(1, 1);
        let lat = WallNs(10);
        // Pump with an advancing clock until the generation publishes
        // (relay and visibility take separate pump calls).
        let mut now = 0u64;
        let mut settle = |r: &TwoLevelReduce| loop {
            now += 1_000;
            if r.pump(NodeId(0), WallNs(now), lat) == 0 && now > 10_000 {
                break;
            }
        };
        let g0 = r.arrive(NodeId(0), 7, 1);
        settle(&r);
        let g1 = r.arrive(NodeId(0), 9, 2);
        settle(&r);
        assert_eq!(r.poll(NodeId(0), g0).unwrap().sum, 7);
        assert_eq!(r.poll(NodeId(0), g1).unwrap().sum, 9);
        assert_eq!(g1, g0 + 1);
    }

    #[test]
    fn pump_is_idempotent_when_nothing_pending() {
        let r = TwoLevelReduce::new(2, 1);
        assert_eq!(r.pump(NodeId(0), WallNs(0), WallNs(10)), 0);
        assert_eq!(r.pump(NodeId(1), WallNs(0), WallNs(10)), 0);
    }
}
