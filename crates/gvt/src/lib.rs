//! GVT algorithms from Eker et al., ICPP 2019.
//!
//! Four algorithms against the engine's [`GvtBundle`] interface:
//!
//! * [`barrier::BarrierBundle`] — **synchronous Barrier GVT** (paper
//!   Algorithm 1, Figure 1). Workers stop processing and loop over a
//!   two-level barrier+sum (pthread within a node, MPI across nodes) until
//!   the in-transit message count reaches zero, then barrier-min their
//!   LVTs into the new GVT.
//! * [`mattern::MatternBundle`] — **asynchronous Mattern GVT** (paper
//!   Algorithm 2, Figure 2), the paper's cluster adaptation of Mattern's
//!   distributed snapshot: workers color messages white/red, flush white
//!   send/receive counts into a per-node control structure at the red
//!   transition, a control message circulates a ring of nodes summing the
//!   counters until all white messages have drained, then a second pass
//!   min-reduces LVTs and red timestamps. Workers never stop processing.
//! * [`cagvt::CaGvtBundle`] — **Controlled Asynchronous GVT** (paper
//!   Algorithm 3, Figure 7): Mattern's algorithm plus three conditional
//!   two-level barriers (at the red transition, before the min check-in,
//!   and at round completion) enabled whenever the cumulative simulation
//!   efficiency drops below a threshold (paper: 80%).
//!
//! * [`samadi::SamadiBundle`] — **Samadi's GVT** (1985), the
//!   acknowledgement-based baseline from the paper's related-work section,
//!   implemented to measure the ack-traffic overhead Mattern eliminates.
//!
//! Figures 1, 2 and 7 of the paper are timing diagrams of the first three
//! flows; their prose is folded into the module docs here.

pub mod barrier;
pub mod cagvt;
pub mod common;
pub mod mattern;
pub mod samadi;

use cagvt_core::gvt::GvtBundle;
use cagvt_core::node::EngineShared;
use cagvt_core::Model;
use std::sync::Arc;

pub use barrier::BarrierBundle;
pub use cagvt::CaGvtBundle;
pub use mattern::MatternBundle;
pub use samadi::SamadiBundle;

/// Algorithm selector used by the harness and examples.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum GvtKind {
    Barrier,
    Mattern,
    /// Samadi's acknowledgement-based algorithm (paper §7 related work);
    /// doubles the message traffic, which the `samadi` harness experiment
    /// measures.
    Samadi,
    /// CA-GVT with the given efficiency threshold (the paper uses 0.80).
    CaGvt {
        threshold: f64,
    },
    /// CA-GVT with the extended trigger from the paper's conclusion:
    /// efficiency below `threshold` *or* any node's outbound MPI queue
    /// deeper than `queue_threshold`.
    CaGvtQueue {
        threshold: f64,
        queue_threshold: u64,
    },
}

impl GvtKind {
    pub const CA_DEFAULT: GvtKind = GvtKind::CaGvt { threshold: 0.80 };

    pub fn label(&self) -> &'static str {
        match self {
            GvtKind::Barrier => "barrier",
            GvtKind::Mattern => "mattern",
            GvtKind::Samadi => "samadi",
            GvtKind::CaGvt { .. } => "ca-gvt",
            GvtKind::CaGvtQueue { .. } => "ca-gvt-q",
        }
    }
}

/// Build the selected algorithm's bundle for a prepared engine.
pub fn make_bundle<M: Model>(kind: GvtKind, shared: &Arc<EngineShared<M>>) -> Box<dyn GvtBundle> {
    let core = Arc::clone(&shared.gvt_core);
    let ctrl = Arc::clone(&shared.ctrl);
    let spec = shared.cfg.spec;
    let cost = shared.cfg.cost;
    match kind {
        GvtKind::Barrier => Box::new(BarrierBundle::new(core, spec, cost)),
        GvtKind::Mattern => Box::new(MatternBundle::new(core, ctrl, spec, cost)),
        GvtKind::Samadi => Box::new(SamadiBundle::new(core, spec, cost)),
        GvtKind::CaGvt { threshold } => {
            Box::new(CaGvtBundle::new(core, ctrl, spec, cost, threshold))
        }
        GvtKind::CaGvtQueue { threshold, queue_threshold } => {
            Box::new(CaGvtBundle::with_queue_threshold(
                core,
                ctrl,
                spec,
                cost,
                threshold,
                Some(queue_threshold),
            ))
        }
    }
}
