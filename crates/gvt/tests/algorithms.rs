//! End-to-end tests: the optimistic engine, driven by each *real* GVT
//! algorithm, must terminate and commit exactly the sequential reference's
//! events and states, on every topology and MPI mode.

use cagvt_core::cluster::{build_shared, run_virtual_with};
use cagvt_core::seq::SequentialSim;
use cagvt_core::testmodel::MiniHold;
use cagvt_core::{RunReport, SimConfig};
use cagvt_exec::VirtualConfig;
use cagvt_gvt::{make_bundle, GvtKind};
use cagvt_net::MpiMode;
use std::sync::Arc;

fn vcfg() -> VirtualConfig {
    VirtualConfig {
        max_steps: Some(80_000_000),
        horizon: Some(cagvt_base::WallNs(120_000_000_000)),
        ..Default::default()
    }
}

fn run(kind: GvtKind, model: MiniHold, cfg: SimConfig) -> RunReport {
    run_virtual_with(Arc::new(model), cfg, vcfg(), |shared| make_bundle(kind, shared))
}

fn assert_matches_sequential(kind: GvtKind, model: MiniHold, cfg: SimConfig) -> RunReport {
    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    let report = run(kind, model, cfg);
    report.check_conservation(cfg.end_vt());
    assert_eq!(report.committed, seq.processed, "committed mismatch\n{report}");
    assert_eq!(report.state_fingerprint, seq.fingerprint, "state mismatch\n{report}");
    report
}

fn all_kinds() -> [GvtKind; 3] {
    [GvtKind::Barrier, GvtKind::Mattern, GvtKind::CA_DEFAULT]
}

#[test]
fn single_node_all_algorithms_match_sequential() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(1, 3);
        cfg.end_time = 40.0;
        let report = assert_matches_sequential(kind, MiniHold::default(), cfg);
        assert!(report.gvt_rounds > 0, "{kind:?} must run rounds\n{report}");
    }
}

#[test]
fn multi_node_all_algorithms_match_sequential() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(3, 2);
        cfg.end_time = 30.0;
        let report = assert_matches_sequential(
            kind,
            MiniHold { far_fraction: 0.4, ..Default::default() },
            cfg,
        );
        assert!(report.sent_remote > 0, "{kind:?}: remote traffic expected");
        assert!(report.gvt_rounds > 1, "{kind:?}: several rounds expected\n{report}");
    }
}

#[test]
fn rollback_heavy_runs_stay_correct() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(2, 2);
        cfg.end_time = 40.0;
        let model = MiniHold { far_fraction: 0.7, epg: 200, ..Default::default() };
        let report = assert_matches_sequential(kind, model, cfg);
        assert!(report.rollbacks > 0, "{kind:?}: rollbacks expected\n{report}");
    }
}

#[test]
fn inline_mpi_mode_works_with_all_algorithms() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(2, 2);
        cfg.spec.mpi_mode = MpiMode::InlineWorker;
        cfg.end_time = 25.0;
        assert_matches_sequential(kind, MiniHold { far_fraction: 0.4, ..Default::default() }, cfg);
    }
}

#[test]
fn per_worker_mpi_mode_works_with_all_algorithms() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(2, 2);
        cfg.spec.mpi_mode = MpiMode::PerWorker;
        cfg.end_time = 25.0;
        assert_matches_sequential(kind, MiniHold { far_fraction: 0.4, ..Default::default() }, cfg);
    }
}

#[test]
fn runs_are_deterministic_per_algorithm() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(2, 2);
        cfg.end_time = 25.0;
        let a = run(kind, MiniHold::default(), cfg);
        let b = run(kind, MiniHold::default(), cfg);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.sched_steps, b.sched_steps, "{kind:?} schedule must be deterministic");
        assert_eq!(a.sim_seconds, b.sim_seconds);
    }
}

#[test]
fn barrier_blocks_and_mattern_does_not() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.end_time = 30.0;
    let barrier = run(GvtKind::Barrier, MiniHold::default(), cfg);
    let mattern = run(GvtKind::Mattern, MiniHold::default(), cfg);
    // Barrier GVT spends much more wall time inside the GVT function
    // (blocked at barriers) than Mattern's interleaved bookkeeping.
    assert!(
        barrier.gvt_time_mean > mattern.gvt_time_mean,
        "barrier {} vs mattern {}",
        barrier.gvt_time_mean,
        mattern.gvt_time_mean
    );
}

#[test]
fn ca_gvt_records_round_trace() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.end_time = 30.0;
    let report =
        run(GvtKind::CA_DEFAULT, MiniHold { far_fraction: 0.5, ..Default::default() }, cfg);
    assert_eq!(
        report.sync_rounds + report.async_rounds,
        report.gvt_rounds,
        "every round must be traced\n{report}"
    );
    assert!(report.gvt_rounds > 0);
}

#[test]
fn ca_gvt_threshold_extremes_select_modes() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.end_time = 25.0;
    let model = MiniHold { far_fraction: 0.5, ..Default::default() };
    // Threshold 0: efficiency can never fall below, so always async.
    let always_async = run(GvtKind::CaGvt { threshold: 0.0 }, model, cfg);
    assert_eq!(always_async.sync_rounds, 0, "{always_async}");
    // Threshold 1: every round after the first is synchronous (the flag
    // arms once any event rolls back).
    let mostly_sync = run(GvtKind::CaGvt { threshold: 1.0 }, model, cfg);
    assert!(mostly_sync.sync_rounds > 0, "sync rounds expected at threshold 1.0\n{mostly_sync}");
}

#[test]
fn shared_handles_expose_gvt_state() {
    let cfg = SimConfig::small(1, 2);
    let shared = build_shared(Arc::new(MiniHold::default()), cfg);
    let bundle = make_bundle(GvtKind::Mattern, &shared);
    assert_eq!(bundle.name(), "mattern");
    let bundle = make_bundle(GvtKind::CA_DEFAULT, &shared);
    assert_eq!(bundle.name(), "ca-gvt");
    let bundle = make_bundle(GvtKind::Barrier, &shared);
    assert_eq!(bundle.name(), "barrier");
}

#[test]
fn samadi_matches_sequential_and_pays_ack_traffic() {
    let mut cfg = SimConfig::small(2, 3);
    cfg.end_time = 30.0;
    let model = MiniHold { far_fraction: 0.4, ..Default::default() };
    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    let report = run(GvtKind::Samadi, model, cfg);
    report.check_conservation(cfg.end_vt());
    assert_eq!(report.committed, seq.processed, "{report}");
    assert_eq!(report.state_fingerprint, seq.fingerprint);
    assert!(report.gvt_rounds > 0);

    // The defining cost: one acknowledgement per channel message.
    let mattern = run(GvtKind::Mattern, model, cfg);
    assert_eq!(mattern.committed, report.committed);
    assert!(
        report.sent_regional + report.sent_remote
            > (mattern.sent_regional + mattern.sent_remote) * 3 / 2,
        "Samadi must roughly double channel traffic: samadi {} vs mattern {}",
        report.sent_regional + report.sent_remote,
        mattern.sent_regional + mattern.sent_remote,
    );
}

#[test]
fn samadi_is_deterministic_and_interval_insensitive_in_results() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.end_time = 20.0;
    let a = run(GvtKind::Samadi, MiniHold::default(), cfg);
    let b = run(GvtKind::Samadi, MiniHold::default(), cfg);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.sched_steps, b.sched_steps);

    cfg.gvt_interval = 10;
    let c = run(GvtKind::Samadi, MiniHold::default(), cfg);
    assert_eq!(c.committed, a.committed, "interval must not change results");
    assert_eq!(c.state_fingerprint, a.state_fingerprint);
}
