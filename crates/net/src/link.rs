//! NIC transmit-side serialization and wire latency.
//!
//! Each node has one [`Nic`]. Outgoing messages serialize on the transmit
//! path (bandwidth term `wire_per_msg`) and then spend `wire_latency` in
//! flight. The serialization uses the same time-queueing trick as
//! [`crate::VirtualMutex`]: a message handed to the NIC at `now` starts
//! transmitting at `max(now, tx_free_at)`.

use cagvt_base::time::WallNs;
use std::sync::atomic::{AtomicU64, Ordering};

/// Transmit side of a node's network interface.
#[derive(Debug, Default)]
pub struct Nic {
    tx_free_at: AtomicU64,
    sent: AtomicU64,
}

impl Nic {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hand one message to the NIC at `now`. Returns the instant it is
    /// delivered at the far end: serialization queueing + transmit time +
    /// one-way wire latency.
    pub fn send(&self, now: WallNs, per_msg: WallNs, wire_latency: WallNs) -> WallNs {
        loop {
            let free = self.tx_free_at.load(Ordering::Acquire);
            let start = now.0.max(free);
            let done_tx = start + per_msg.0;
            if self
                .tx_free_at
                .compare_exchange(free, done_tx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.sent.fetch_add(1, Ordering::Relaxed);
                return WallNs(done_tx + wire_latency.0);
            }
        }
    }

    /// Messages transmitted so far.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Current transmit backlog relative to `now` (how far ahead of the
    /// caller's clock the NIC is booked). A growing value means the node is
    /// offering more traffic than 10 GbE drains — the saturation signal in
    /// communication-dominated runs.
    pub fn backlog(&self, now: WallNs) -> WallNs {
        WallNs(self.tx_free_at.load(Ordering::Relaxed).saturating_sub(now.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_pays_tx_plus_latency() {
        let nic = Nic::new();
        let at = nic.send(WallNs(1_000), WallNs(500), WallNs(20_000));
        assert_eq!(at, WallNs(21_500));
        assert_eq!(nic.sent(), 1);
    }

    #[test]
    fn burst_serializes_on_tx() {
        let nic = Nic::new();
        let a = nic.send(WallNs(0), WallNs(500), WallNs(20_000));
        let b = nic.send(WallNs(0), WallNs(500), WallNs(20_000));
        let c = nic.send(WallNs(0), WallNs(500), WallNs(20_000));
        assert_eq!(a, WallNs(20_500));
        assert_eq!(b, WallNs(21_000));
        assert_eq!(c, WallNs(21_500));
        assert_eq!(nic.backlog(WallNs(0)), WallNs(1_500));
        assert_eq!(nic.backlog(WallNs(10_000)), WallNs::ZERO);
    }

    #[test]
    fn idle_nic_has_no_backlog_effect() {
        let nic = Nic::new();
        nic.send(WallNs(0), WallNs(100), WallNs(1_000));
        // Next message arrives long after the NIC went idle.
        let at = nic.send(WallNs(50_000), WallNs(100), WallNs(1_000));
        assert_eq!(at, WallNs(51_100));
    }
}
