//! Polled barriers and reductions.
//!
//! The paper's Barrier GVT uses two levels of synchronization: a pthread
//! barrier + reduction among the threads of one node, and an MPI barrier +
//! reduction among nodes. Both are provided here in *polled* form: a
//! participant `arrive`s once, then repeatedly asks whether its generation
//! has been released. That keeps engine actors non-blocking under both
//! execution substrates.
//!
//! Usage contract for the reducing variants: a participant must observe the
//! result of generation `g` (via `try_result`) before arriving for `g + 1`.
//! Results are double-buffered, so the value for `g` stays readable while
//! `g + 1` accumulates.

use cagvt_base::time::WallNs;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Combined sum/min reduction value.
///
/// `sum` carries message-count differences (Algorithm 1's `msgCount`);
/// `min` carries virtual times encoded with
/// [`VirtualTime::to_ordered_bits`](cagvt_base::VirtualTime::to_ordered_bits),
/// whose unsigned order matches the time order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReduceValue {
    pub sum: i64,
    pub min: u64,
}

impl ReduceValue {
    pub const IDENTITY: ReduceValue = ReduceValue { sum: 0, min: u64::MAX };
}

/// Sense-free polled barrier for the threads of one node.
#[derive(Debug)]
pub struct NodeBarrier {
    parties: u32,
    count: AtomicU32,
    generation: AtomicU64,
}

impl NodeBarrier {
    pub fn new(parties: u32) -> Self {
        assert!(parties >= 1);
        NodeBarrier { parties, count: AtomicU32::new(0), generation: AtomicU64::new(0) }
    }

    /// Register arrival; returns the generation token to poll with. The
    /// last arriver releases the generation.
    pub fn arrive(&self) -> u64 {
        let gen = self.generation.load(Ordering::Acquire);
        let prev = self.count.fetch_add(1, Ordering::AcqRel);
        debug_assert!(prev < self.parties, "barrier over-subscribed");
        if prev + 1 == self.parties {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        gen
    }

    /// Has the generation obtained from [`Self::arrive`] been released?
    #[inline]
    pub fn is_released(&self, gen: u64) -> bool {
        self.generation.load(Ordering::Acquire) > gen
    }

    pub fn parties(&self) -> u32 {
        self.parties
    }
}

#[derive(Debug)]
struct ReduceInner {
    arrived: u32,
    acc: ReduceValue,
    results: [ReduceValue; 2],
}

/// Polled barrier-with-reduction among the threads of one node (the paper's
/// `PthreadBarrierSum` / `PthreadBarrierMin`).
#[derive(Debug)]
pub struct NodeReduce {
    parties: u32,
    inner: Mutex<ReduceInner>,
    generation: AtomicU64,
}

impl NodeReduce {
    pub fn new(parties: u32) -> Self {
        assert!(parties >= 1);
        NodeReduce {
            parties,
            inner: Mutex::new(ReduceInner {
                arrived: 0,
                acc: ReduceValue::IDENTITY,
                results: [ReduceValue::IDENTITY; 2],
            }),
            generation: AtomicU64::new(0),
        }
    }

    /// Contribute `(sum, min)` and return the generation token.
    pub fn arrive(&self, sum: i64, min: u64) -> u64 {
        let mut inner = self.inner.lock();
        let gen = self.generation.load(Ordering::Acquire);
        inner.acc.sum += sum;
        inner.acc.min = inner.acc.min.min(min);
        inner.arrived += 1;
        debug_assert!(inner.arrived <= self.parties, "reduce over-subscribed");
        if inner.arrived == self.parties {
            let slot = (gen % 2) as usize;
            inner.results[slot] = inner.acc;
            inner.acc = ReduceValue::IDENTITY;
            inner.arrived = 0;
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        gen
    }

    /// The reduced value for `gen`, once every participant has arrived.
    pub fn try_result(&self, gen: u64) -> Option<ReduceValue> {
        if self.generation.load(Ordering::Acquire) > gen {
            let slot = (gen % 2) as usize;
            Some(self.inner.lock().results[slot])
        } else {
            None
        }
    }

    pub fn parties(&self) -> u32 {
        self.parties
    }
}

#[derive(Debug)]
struct ClusterInner {
    arrived: u32,
    acc: ReduceValue,
    last_arrival: WallNs,
    results: [(ReduceValue, WallNs); 2],
}

/// Cluster-wide barrier-with-reduction (the paper's `MpiBarrierSum` /
/// `MpiBarrierMin`), one participant per node.
///
/// Unlike [`NodeReduce`], completion is not instantaneous: the result
/// becomes *visible* only `latency` after the last arrival, modeling the
/// stages of an MPI collective over the wire. State is shared in-process
/// (the fabric is simulated) but observability is gated on the modeled
/// time, which is what the algorithms are sensitive to.
#[derive(Debug)]
pub struct ClusterCollective {
    parties: u32,
    inner: Mutex<ClusterInner>,
    generation: AtomicU64,
}

impl ClusterCollective {
    pub fn new(parties: u32) -> Self {
        assert!(parties >= 1);
        ClusterCollective {
            parties,
            inner: Mutex::new(ClusterInner {
                arrived: 0,
                acc: ReduceValue::IDENTITY,
                last_arrival: WallNs::ZERO,
                results: [(ReduceValue::IDENTITY, WallNs::ZERO); 2],
            }),
            generation: AtomicU64::new(0),
        }
    }

    /// Contribute `(sum, min)` at wall time `now`; the collective completes
    /// `latency` after the last arrival.
    pub fn arrive(&self, now: WallNs, sum: i64, min: u64, latency: WallNs) -> u64 {
        let mut inner = self.inner.lock();
        let gen = self.generation.load(Ordering::Acquire);
        inner.acc.sum += sum;
        inner.acc.min = inner.acc.min.min(min);
        inner.last_arrival = inner.last_arrival.max(now);
        inner.arrived += 1;
        debug_assert!(inner.arrived <= self.parties, "collective over-subscribed");
        if inner.arrived == self.parties {
            let slot = (gen % 2) as usize;
            let visible_at = inner.last_arrival + latency;
            inner.results[slot] = (inner.acc, visible_at);
            inner.acc = ReduceValue::IDENTITY;
            inner.arrived = 0;
            inner.last_arrival = WallNs::ZERO;
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        gen
    }

    /// The result for `gen`, once complete *and* past its visibility time.
    pub fn try_result(&self, now: WallNs, gen: u64) -> Option<ReduceValue> {
        if self.generation.load(Ordering::Acquire) > gen {
            let slot = (gen % 2) as usize;
            let (value, visible_at) = self.inner.lock().results[slot];
            if now >= visible_at {
                return Some(value);
            }
        }
        None
    }

    pub fn parties(&self) -> u32 {
        self.parties
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_barrier_releases_when_all_arrive() {
        let b = NodeBarrier::new(3);
        let g0 = b.arrive();
        assert!(!b.is_released(g0));
        let g1 = b.arrive();
        assert_eq!(g0, g1);
        assert!(!b.is_released(g0));
        b.arrive();
        assert!(b.is_released(g0));
    }

    #[test]
    fn node_barrier_generations_advance() {
        let b = NodeBarrier::new(2);
        let g = b.arrive();
        b.arrive();
        assert!(b.is_released(g));
        let g2 = b.arrive();
        assert_eq!(g2, g + 1);
        assert!(!b.is_released(g2));
        b.arrive();
        assert!(b.is_released(g2));
    }

    #[test]
    fn single_party_barrier_self_releases() {
        let b = NodeBarrier::new(1);
        let g = b.arrive();
        assert!(b.is_released(g));
    }

    #[test]
    fn node_reduce_sums_and_mins() {
        let r = NodeReduce::new(3);
        let g = r.arrive(5, 100);
        assert_eq!(r.try_result(g), None);
        r.arrive(-2, 50);
        r.arrive(1, 75);
        let v = r.try_result(g).unwrap();
        assert_eq!(v.sum, 4);
        assert_eq!(v.min, 50);
    }

    #[test]
    fn node_reduce_double_buffers_consecutive_rounds() {
        let r = NodeReduce::new(1);
        let g0 = r.arrive(1, 10);
        let g1 = r.arrive(2, 20);
        // Round 0's result is still readable after round 1 completed.
        assert_eq!(r.try_result(g0).unwrap(), ReduceValue { sum: 1, min: 10 });
        assert_eq!(r.try_result(g1).unwrap(), ReduceValue { sum: 2, min: 20 });
    }

    #[test]
    fn cluster_collective_gates_on_latency() {
        let c = ClusterCollective::new(2);
        let g = c.arrive(WallNs(100), 3, 10, WallNs(1_000));
        assert_eq!(c.try_result(WallNs(10_000), g), None, "not complete yet");
        c.arrive(WallNs(500), -1, 5, WallNs(1_000));
        // Complete, but only visible at last_arrival (500) + 1000.
        assert_eq!(c.try_result(WallNs(1_400), g), None);
        let v = c.try_result(WallNs(1_500), g).unwrap();
        assert_eq!(v.sum, 2);
        assert_eq!(v.min, 5);
    }

    #[test]
    fn cluster_collective_consecutive_generations() {
        let c = ClusterCollective::new(1);
        let g0 = c.arrive(WallNs(0), 7, 1, WallNs(10));
        let g1 = c.arrive(WallNs(100), 8, 2, WallNs(10));
        assert_eq!(c.try_result(WallNs(1_000), g0).unwrap().sum, 7);
        assert_eq!(c.try_result(WallNs(1_000), g1).unwrap().sum, 8);
        assert_eq!(c.try_result(WallNs(105), g1), None, "latency gate");
    }

    #[test]
    fn barrier_under_real_threads() {
        use std::sync::Arc;
        let b = Arc::new(NodeBarrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let g = b.arrive();
                        while !b.is_released(g) {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.generation.load(Ordering::Relaxed), 100);
    }
}
