//! Node-to-node MPI-like fabric.
//!
//! Two planes, both FIFO per destination and both charged through the same
//! per-node [`Nic`]s (so GVT control traffic queues behind event backlog,
//! as it does on a real wire):
//!
//! * [`MpiFabric`] — the **event plane**, carrying remote event messages
//!   (payload type `M`, supplied by the engine);
//! * [`CtrlPlane`] — the **control plane**, carrying small fixed-format
//!   [`CtrlMsg`]s used by the GVT algorithms (Mattern's circulating control
//!   message travels here, node to node around the ring). Non-generic so
//!   the GVT crate can hold it without knowing the model's payload type.
//!
//! Construct both with [`fabric_pair`]. The fabric models transport only;
//! per-message MPI *software* costs (`mpi_send`/`mpi_recv`, lock holds) are
//! charged by the caller — that is where the dedicated-vs-inline MPI thread
//! distinction lives.

use cagvt_base::fault::{FaultInjector, LinkShape};
use cagvt_base::ids::NodeId;
use cagvt_base::time::WallNs;
use cagvt_base::trace::{TraceRecord, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::link::Nic;
use crate::mailbox::Mailbox;
use crate::spec::CostModel;

/// Fixed-format GVT control message.
///
/// The interpretation of the fields belongs to the GVT algorithm (`kind`
/// discriminates): Mattern uses `sum` for the accumulated white-message
/// count and `min1`/`min2` for min-LVT and min-red-timestamp (as ordered
/// bits); the hop counter tracks ring progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtrlMsg {
    pub kind: u8,
    pub round: u64,
    pub sum: i64,
    pub min1: u64,
    pub min2: u64,
    pub origin: NodeId,
    pub hops: u16,
}

impl CtrlMsg {
    pub fn new(kind: u8, round: u64, origin: NodeId) -> Self {
        CtrlMsg { kind, round, sum: 0, min1: u64::MAX, min2: u64::MAX, origin, hops: 0 }
    }
}

/// Create the event plane and control plane sharing one set of NICs.
pub fn fabric_pair<M: Send>(nodes: u16) -> (Arc<MpiFabric<M>>, Arc<CtrlPlane>) {
    fabric_pair_faulted(nodes, None)
}

/// [`fabric_pair`] with a fault injector: every inter-node message (both
/// planes) is shaped through [`FaultInjector::link`], so degraded links and
/// drop/retransmit recovery apply to event and GVT control traffic alike.
pub fn fabric_pair_faulted<M: Send>(
    nodes: u16,
    faults: Option<Arc<dyn FaultInjector>>,
) -> (Arc<MpiFabric<M>>, Arc<CtrlPlane>) {
    fabric_pair_traced(nodes, faults, None)
}

/// [`fabric_pair_faulted`] with a trace sink: the event plane samples its
/// inbound inbox occupancy on every drain, giving the in-flight side of
/// the MPI-queue picture (the outbound side is sampled by the MPI pumps).
pub fn fabric_pair_traced<M: Send>(
    nodes: u16,
    faults: Option<Arc<dyn FaultInjector>>,
    trace: Option<Arc<dyn TraceSink>>,
) -> (Arc<MpiFabric<M>>, Arc<CtrlPlane>) {
    let nics: Arc<Vec<Nic>> = Arc::new((0..nodes).map(|_| Nic::new()).collect());
    let fabric = Arc::new(MpiFabric {
        nodes,
        nics: Arc::clone(&nics),
        inboxes: (0..nodes).map(|_| Mailbox::new()).collect(),
        sent: AtomicU64::new(0),
        faults: faults.clone(),
        trace,
    });
    let ctrl = Arc::new(CtrlPlane {
        nodes,
        nics,
        inboxes: (0..nodes).map(|_| Mailbox::new()).collect(),
        sent: AtomicU64::new(0),
        faults,
    });
    (fabric, ctrl)
}

/// Shape one wire transmission through the optional injector. The message
/// always reaches its inbox — a drop is recovered by retransmit timeouts
/// appended to the delivery instant — so send/receive conservation (the
/// invariant Mattern's white-message count rests on) holds under faults.
#[inline]
fn shaped_send(
    faults: &Option<Arc<dyn FaultInjector>>,
    nic: &Nic,
    from: NodeId,
    to: NodeId,
    now: WallNs,
    cost: &CostModel,
) -> WallNs {
    let shape = match faults {
        Some(f) => f.link(from, to, now, cost.wire_per_msg, cost.wire_latency),
        None => LinkShape::clean(cost.wire_per_msg, cost.wire_latency),
    };
    nic.send(now, shape.per_msg, shape.latency) + shape.retransmit_delay
}

/// The event plane of the simulated interconnect.
pub struct MpiFabric<M> {
    nodes: u16,
    nics: Arc<Vec<Nic>>,
    inboxes: Vec<Mailbox<M>>,
    sent: AtomicU64,
    faults: Option<Arc<dyn FaultInjector>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl<M: Send> MpiFabric<M> {
    #[inline]
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Transmit an event message. Returns the instant it becomes receivable
    /// at `to`. The caller charges itself the MPI software cost.
    pub fn send_event(
        &self,
        from: NodeId,
        to: NodeId,
        now: WallNs,
        msg: M,
        cost: &CostModel,
    ) -> WallNs {
        debug_assert_ne!(from, to, "remote send to self");
        let deliver_at = shaped_send(&self.faults, &self.nics[from.index()], from, to, now, cost);
        self.inboxes[to.index()].push(deliver_at, msg);
        self.sent.fetch_add(1, Ordering::Relaxed);
        deliver_at
    }

    /// Receive one event message at node `at`, if its delivery time has
    /// passed.
    pub fn recv_event(&self, at: NodeId, now: WallNs) -> Option<M> {
        self.inboxes[at.index()].pop_ready(now)
    }

    /// Batch-receive event messages at node `at`.
    pub fn drain_events(&self, at: NodeId, now: WallNs, max: usize, out: &mut Vec<M>) -> usize {
        let n = self.inboxes[at.index()].drain_ready_into(now, max, out);
        if let Some(tr) = &self.trace {
            if tr.enabled() {
                let depth = self.inboxes[at.index()].len() as u64;
                tr.record(now, &TraceRecord::MpiQueue { node: at.0, depth, inbound: true });
            }
        }
        n
    }

    /// Depth of the event inbox at `at` (includes in-flight messages).
    pub fn event_inbox_len(&self, at: NodeId) -> usize {
        self.inboxes[at.index()].len()
    }

    pub fn nic(&self, n: NodeId) -> &Nic {
        &self.nics[n.index()]
    }

    pub fn events_sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

/// The GVT control plane: same NICs, separate inboxes.
pub struct CtrlPlane {
    nodes: u16,
    nics: Arc<Vec<Nic>>,
    inboxes: Vec<Mailbox<CtrlMsg>>,
    sent: AtomicU64,
    faults: Option<Arc<dyn FaultInjector>>,
}

impl CtrlPlane {
    #[inline]
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Next node on Mattern's ring.
    #[inline]
    pub fn ring_next(&self, n: NodeId) -> NodeId {
        NodeId((n.0 + 1) % self.nodes)
    }

    /// Transmit a control message. On a single-node cluster the ring
    /// degenerates to a self-loop with no wire cost.
    pub fn send(
        &self,
        from: NodeId,
        to: NodeId,
        now: WallNs,
        msg: CtrlMsg,
        cost: &CostModel,
    ) -> WallNs {
        let deliver_at = if from == to {
            now
        } else {
            shaped_send(&self.faults, &self.nics[from.index()], from, to, now, cost)
        };
        self.inboxes[to.index()].push(deliver_at, msg);
        self.sent.fetch_add(1, Ordering::Relaxed);
        deliver_at
    }

    /// Receive one control message at node `at`.
    pub fn recv(&self, at: NodeId, now: WallNs) -> Option<CtrlMsg> {
        self.inboxes[at.index()].pop_ready(now)
    }

    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm() -> CostModel {
        CostModel::knl_cluster()
    }

    #[test]
    fn event_travels_with_wire_latency() {
        let (fab, _ctrl) = fabric_pair::<u32>(2);
        let at = fab.send_event(NodeId(0), NodeId(1), WallNs(0), 7, &cm());
        assert_eq!(at.0, cm().wire_per_msg.0 + cm().wire_latency.0);
        assert_eq!(fab.recv_event(NodeId(1), WallNs(0)), None, "still in flight");
        assert_eq!(fab.recv_event(NodeId(1), at), Some(7));
        assert_eq!(fab.events_sent(), 1);
    }

    #[test]
    fn fifo_per_destination_across_sources() {
        let (fab, _ctrl) = fabric_pair::<u32>(3);
        fab.send_event(NodeId(0), NodeId(2), WallNs(0), 1, &cm());
        fab.send_event(NodeId(1), NodeId(2), WallNs(0), 2, &cm());
        let mut out = Vec::new();
        fab.drain_events(NodeId(2), WallNs(1_000_000), 10, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn ring_wraps_around() {
        let (_fab, ctrl) = fabric_pair::<()>(4);
        assert_eq!(ctrl.ring_next(NodeId(0)), NodeId(1));
        assert_eq!(ctrl.ring_next(NodeId(3)), NodeId(0));
    }

    #[test]
    fn ctrl_plane_round_trip() {
        let (_fab, ctrl) = fabric_pair::<()>(2);
        let msg = CtrlMsg { sum: -3, ..CtrlMsg::new(1, 9, NodeId(0)) };
        let at = ctrl.send(NodeId(0), NodeId(1), WallNs(100), msg, &cm());
        assert!(at > WallNs(100));
        assert_eq!(ctrl.recv(NodeId(1), WallNs(99)), None);
        let got = ctrl.recv(NodeId(1), at).unwrap();
        assert_eq!(got.sum, -3);
        assert_eq!(got.round, 9);
        assert_eq!(ctrl.sent(), 1);
    }

    #[test]
    fn single_node_ctrl_self_loop_is_immediate() {
        let (_fab, ctrl) = fabric_pair::<()>(1);
        assert_eq!(ctrl.ring_next(NodeId(0)), NodeId(0));
        let at = ctrl.send(NodeId(0), NodeId(0), WallNs(5), CtrlMsg::new(0, 1, NodeId(0)), &cm());
        assert_eq!(at, WallNs(5));
        assert!(ctrl.recv(NodeId(0), WallNs(5)).is_some());
    }

    #[test]
    fn inbox_len_counts_in_flight() {
        let (fab, _ctrl) = fabric_pair::<u8>(2);
        fab.send_event(NodeId(0), NodeId(1), WallNs(0), 1, &cm());
        fab.send_event(NodeId(0), NodeId(1), WallNs(0), 2, &cm());
        assert_eq!(fab.event_inbox_len(NodeId(1)), 2);
        let _ = fab.recv_event(NodeId(1), WallNs(u64::MAX / 2));
        assert_eq!(fab.event_inbox_len(NodeId(1)), 1);
    }

    #[test]
    fn faulted_fabric_shapes_latency_and_retransmits() {
        /// Triples wire latency on 0→1 and adds a fixed retransmit delay;
        /// leaves the reverse direction clean.
        struct DegradeForward;
        impl FaultInjector for DegradeForward {
            fn link(
                &self,
                from: NodeId,
                to: NodeId,
                _now: WallNs,
                per_msg: WallNs,
                latency: WallNs,
            ) -> LinkShape {
                if (from, to) == (NodeId(0), NodeId(1)) {
                    LinkShape {
                        per_msg,
                        latency: WallNs(latency.0 * 3),
                        retransmit_delay: WallNs(1_000_000),
                    }
                } else {
                    LinkShape::clean(per_msg, latency)
                }
            }
        }

        let (fab, ctrl) = fabric_pair_faulted::<u32>(2, Some(Arc::new(DegradeForward)));
        let fwd = fab.send_event(NodeId(0), NodeId(1), WallNs(0), 7, &cm());
        assert_eq!(fwd.0, cm().wire_per_msg.0 + 3 * cm().wire_latency.0 + 1_000_000);
        // Delayed, not lost: the message still arrives exactly once.
        assert_eq!(fab.recv_event(NodeId(1), WallNs(fwd.0 - 1)), None);
        assert_eq!(fab.recv_event(NodeId(1), fwd), Some(7));
        // Reverse direction (node 1's own NIC) is clean.
        let rev = fab.send_event(NodeId(1), NodeId(0), WallNs(0), 9, &cm());
        assert_eq!(rev.0, cm().wire_per_msg.0 + cm().wire_latency.0);
        // The control plane is shaped through the same injector.
        let c = ctrl.send(NodeId(0), NodeId(1), fwd, CtrlMsg::new(0, 0, NodeId(0)), &cm());
        assert!(c.0 >= fwd.0 + 3 * cm().wire_latency.0 + 1_000_000);
    }

    #[test]
    fn ctrl_and_events_share_the_nic() {
        let (fab, ctrl) = fabric_pair::<u8>(2);
        // Burst of events books the NIC ahead...
        for i in 0..10 {
            fab.send_event(NodeId(0), NodeId(1), WallNs(0), i, &cm());
        }
        // ...so a control message sent at t=0 queues behind them.
        let at = ctrl.send(NodeId(0), NodeId(1), WallNs(0), CtrlMsg::new(0, 0, NodeId(0)), &cm());
        assert_eq!(at.0, 11 * cm().wire_per_msg.0 + cm().wire_latency.0);
    }
}
