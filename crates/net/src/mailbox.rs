//! FIFO channel with delivery-time gating.
//!
//! A [`Mailbox`] models an in-order channel (a shared-memory queue between
//! cores, or a node's MPI in/out queue): any number of producers push
//! messages stamped with a `deliver_at` instant; the consumer pops a message
//! only once its own clock has passed the *head's* `deliver_at`. Gating on
//! the head (not on any ready message) preserves FIFO order, which the
//! engine relies on so that an anti-message can never overtake the positive
//! message it cancels on the same channel.

use cagvt_base::time::WallNs;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::envelope::NetMsg;

/// Multi-producer single-consumer FIFO with per-message visibility times.
///
/// Internally a locked `VecDeque`; under the virtual scheduler all accesses
/// are sequential so the lock is uncontended, and under the thread runtime
/// it is held for O(1) per operation.
#[derive(Debug)]
pub struct Mailbox<T> {
    q: Mutex<VecDeque<NetMsg<T>>>,
    len: AtomicUsize,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox { q: Mutex::new(VecDeque::new()), len: AtomicUsize::new(0) }
    }

    /// Enqueue a message that becomes observable at `deliver_at`.
    pub fn push(&self, deliver_at: WallNs, payload: T) {
        self.q.lock().push_back(NetMsg::new(deliver_at, payload));
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Pop the head if it is observable at `now`.
    pub fn pop_ready(&self, now: WallNs) -> Option<T> {
        let mut q = self.q.lock();
        match q.front() {
            Some(head) if head.deliver_at <= now => {
                self.len.fetch_sub(1, Ordering::Relaxed);
                Some(q.pop_front().expect("front() was Some").payload)
            }
            _ => None,
        }
    }

    /// Pop up to `max` observable messages into `out`. Returns how many were
    /// popped. A single lock acquisition per batch keeps the per-message
    /// overhead down on hot paths (MPI pump, worker drain).
    pub fn drain_ready_into(&self, now: WallNs, max: usize, out: &mut Vec<T>) -> usize {
        let mut q = self.q.lock();
        let mut n = 0;
        while n < max {
            match q.front() {
                Some(head) if head.deliver_at <= now => {
                    out.push(q.pop_front().expect("front() was Some").payload);
                    n += 1;
                }
                _ => break,
            }
        }
        if n > 0 {
            self.len.fetch_sub(n, Ordering::Relaxed);
        }
        n
    }

    /// Approximate queue depth, including not-yet-observable messages.
    /// Exact under the virtual scheduler; used for backlog metrics and the
    /// MPI-queue-occupancy signal.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `deliver_at` of the head message, if any. Lets an otherwise-idle
    /// consumer report how long it will stay idle.
    pub fn head_deliver_at(&self) -> Option<WallNs> {
        self.q.lock().front().map(|m| m.deliver_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mb = Mailbox::new();
        mb.push(WallNs(10), 'a');
        mb.push(WallNs(5), 'b'); // earlier deliver_at but behind 'a'
        assert_eq!(mb.pop_ready(WallNs(7)), None, "head not yet observable");
        assert_eq!(mb.pop_ready(WallNs(10)), Some('a'));
        assert_eq!(mb.pop_ready(WallNs(10)), Some('b'));
        assert_eq!(mb.pop_ready(WallNs(10)), None);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mb = Mailbox::new();
        assert!(mb.is_empty());
        mb.push(WallNs::ZERO, 1);
        mb.push(WallNs::ZERO, 2);
        assert_eq!(mb.len(), 2);
        mb.pop_ready(WallNs::ZERO);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn drain_ready_respects_max_and_gating() {
        let mb = Mailbox::new();
        for i in 0..5 {
            mb.push(WallNs(i), i);
        }
        mb.push(WallNs(100), 99);
        let mut out = Vec::new();
        assert_eq!(mb.drain_ready_into(WallNs(10), 3, &mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(mb.drain_ready_into(WallNs(10), 10, &mut out), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        // The t=100 message gates everything behind it (there is nothing
        // behind it here, but it must not be delivered early).
        assert_eq!(mb.drain_ready_into(WallNs(99), 10, &mut out), 0);
        assert_eq!(mb.drain_ready_into(WallNs(100), 10, &mut out), 1);
    }

    #[test]
    fn head_deliver_at_reports_wakeup_hint() {
        let mb = Mailbox::new();
        assert_eq!(mb.head_deliver_at(), None);
        mb.push(WallNs(42), ());
        assert_eq!(mb.head_deliver_at(), Some(WallNs(42)));
    }

    #[test]
    fn many_producers_one_consumer_threads() {
        use std::sync::Arc;
        let mb = Arc::new(Mailbox::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let mb = Arc::clone(&mb);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        mb.push(WallNs::ZERO, (p, i));
                    }
                })
            })
            .collect();
        for t in producers {
            t.join().unwrap();
        }
        let mut per_producer_last = [None::<u64>; 4];
        let mut count = 0;
        while let Some((p, i)) = mb.pop_ready(WallNs::ZERO) {
            // FIFO per producer.
            if let Some(last) = per_producer_last[p] {
                assert!(i > last);
            }
            per_producer_last[p] = Some(i);
            count += 1;
        }
        assert_eq!(count, 400);
    }
}
