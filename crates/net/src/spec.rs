//! Cluster topology and wall-clock cost model.
//!
//! [`CostModel::knl_cluster`] is the calibrated preset used by the figure
//! harness; it encodes the magnitudes of the paper's platform (KNL 7230 at
//! 1.3 GHz, mpich-3.3 over 10 GbE). Absolute numbers are order-of-magnitude
//! estimates — what the reproduction relies on is the *ratios* (EPG work vs
//! message costs vs wire latency), which drive who wins between the GVT
//! algorithms.

use cagvt_base::time::WallNs;

/// How MPI work is assigned to threads within a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MpiMode {
    /// The paper's proposal: one dedicated thread per node does all MPI and
    /// no event processing.
    Dedicated,
    /// The baseline from Wang et al. \[31\]: one thread per node does all
    /// MPI *and* normal event processing (worker lane 0).
    InlineWorker,
    /// The motivating pathology: every worker performs its own MPI calls
    /// through the contended library lock.
    PerWorker,
}

impl MpiMode {
    pub fn label(self) -> &'static str {
        match self {
            MpiMode::Dedicated => "dedicated",
            MpiMode::InlineWorker => "inline",
            MpiMode::PerWorker => "per-worker",
        }
    }
}

/// Cluster shape: `nodes` KNL sockets, `workers` simulation threads each.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    pub nodes: u16,
    pub workers_per_node: u16,
    pub mpi_mode: MpiMode,
}

impl ClusterSpec {
    pub fn new(nodes: u16, workers_per_node: u16, mpi_mode: MpiMode) -> Self {
        assert!(nodes >= 1, "cluster needs at least one node");
        assert!(workers_per_node >= 1, "node needs at least one worker");
        ClusterSpec { nodes, workers_per_node, mpi_mode }
    }

    /// Paper configuration: 60 worker threads per node.
    pub fn paper(nodes: u16) -> Self {
        ClusterSpec::new(nodes, 60, MpiMode::Dedicated)
    }

    #[inline]
    pub fn total_workers(&self) -> u32 {
        self.nodes as u32 * self.workers_per_node as u32
    }

    /// Does this topology run a separate MPI actor per node?
    #[inline]
    pub fn has_dedicated_mpi_actor(&self) -> bool {
        matches!(self.mpi_mode, MpiMode::Dedicated)
    }
}

/// Every wall-clock cost of the modeled cluster, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    // -- compute ---------------------------------------------------------
    /// Nanoseconds per EPG unit ("approximately one FLOP" in the paper).
    pub epg_unit_ns: f64,
    /// Fixed engine overhead per processed event (queue pop, history push,
    /// state snapshot).
    pub event_overhead: WallNs,
    /// Cost of undoing one processed event during a rollback.
    pub rollback_per_event: WallNs,
    /// Cost of one idle poll (checking queues/flags and finding nothing).
    pub idle_poll: WallNs,
    /// Cost of fossil-collecting one committed event.
    pub fossil_per_event: WallNs,

    // -- messaging -------------------------------------------------------
    /// Enqueue into the sender's own pending set (local message).
    pub local_send: WallNs,
    /// Enqueue into another worker's shared-memory queue (lock + copy).
    pub regional_send: WallNs,
    /// Shared-memory propagation delay before a regional message can be
    /// observed by the destination worker.
    pub regional_latency: WallNs,
    /// Per-message dequeue-and-insert cost at the receiving worker.
    pub recv_handling: WallNs,
    /// Worker-side cost of posting a remote message to the node's MPI
    /// outbox.
    pub remote_post: WallNs,

    // -- MPI layer -------------------------------------------------------
    /// Cost of one MPI progress-engine poll (probe + queue scan), paid on
    /// every pump invocation whether or not traffic moved. This is what
    /// makes the inline-MPI baseline pay even on computation-dominated
    /// workloads (paper Figure 3).
    pub mpi_poll: WallNs,
    /// MPI-thread cost per outgoing message (mpich send path).
    pub mpi_send: WallNs,
    /// MPI-thread cost per incoming message (probe + recv + route).
    pub mpi_recv: WallNs,
    /// Hold time of the MPI library lock per call (paid on top of
    /// `mpi_send`/`mpi_recv` in `PerWorker` mode; the queueing delay behind
    /// the lock is what destroys threaded MPI).
    pub mpi_lock_hold: WallNs,
    /// One-way network latency (10 GbE + kernel stack + mpich rendezvous).
    pub wire_latency: WallNs,
    /// NIC serialization per message (bandwidth term; messages queue behind
    /// each other on the transmit side).
    pub wire_per_msg: WallNs,

    // -- synchronization -------------------------------------------------
    /// Overhead per pthread-barrier arrival within a node.
    pub node_barrier_arrival: WallNs,
    /// Completion latency of a cluster collective (MPI barrier/allreduce)
    /// after the last node arrives, per `ceil(log2(nodes))` stage.
    pub collective_stage: WallNs,
    /// Cost of CA-GVT's per-round efficiency computation (the paper reports
    /// this makes CA-GVT slightly slower than pure Mattern in
    /// computation-dominated runs).
    pub efficiency_check: WallNs,
    /// Small per-operation cost of asynchronous GVT bookkeeping (color
    /// transition, control-message accumulation, check-in).
    pub gvt_bookkeeping: WallNs,
}

impl CostModel {
    /// Calibrated preset for the paper's platform.
    pub fn knl_cluster() -> Self {
        CostModel {
            epg_unit_ns: 0.8, // ~1.3 GHz in-order-ish KNL core, 1 unit ~ 1 FLOP
            event_overhead: WallNs(900),
            rollback_per_event: WallNs(500),
            idle_poll: WallNs(150),
            fossil_per_event: WallNs(40),

            local_send: WallNs(60),
            regional_send: WallNs(400),
            regional_latency: WallNs(2_000),
            recv_handling: WallNs(200),
            remote_post: WallNs(250),

            mpi_poll: WallNs(3_000),
            mpi_send: WallNs(1_200),
            mpi_recv: WallNs(1_000),
            mpi_lock_hold: WallNs(900),
            wire_latency: WallNs(30_000),
            wire_per_msg: WallNs(550),

            node_barrier_arrival: WallNs(500),
            collective_stage: WallNs(3_500),
            efficiency_check: WallNs(2_500),
            gvt_bookkeeping: WallNs(300),
        }
    }

    /// Cost of processing one event with the given EPG (excluding engine
    /// overhead).
    #[inline]
    pub fn epg_cost(&self, epg_units: u64) -> WallNs {
        WallNs((epg_units as f64 * self.epg_unit_ns) as u64)
    }

    /// Completion latency of a cluster collective over `nodes` nodes.
    #[inline]
    pub fn collective_latency(&self, nodes: u16) -> WallNs {
        let stages = (nodes.max(1) as f64).log2().ceil().max(1.0) as u64;
        WallNs(self.collective_stage.0 * stages)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::knl_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_shape() {
        let spec = ClusterSpec::paper(8);
        assert_eq!(spec.nodes, 8);
        assert_eq!(spec.workers_per_node, 60);
        assert_eq!(spec.total_workers(), 480);
        assert!(spec.has_dedicated_mpi_actor());
    }

    #[test]
    fn inline_mode_has_no_dedicated_actor() {
        let spec = ClusterSpec::new(2, 4, MpiMode::InlineWorker);
        assert!(!spec.has_dedicated_mpi_actor());
        assert_eq!(spec.mpi_mode.label(), "inline");
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        let _ = ClusterSpec::new(0, 4, MpiMode::Dedicated);
    }

    #[test]
    fn epg_cost_scales_linearly() {
        let cm = CostModel::knl_cluster();
        let c10k = cm.epg_cost(10_000);
        let c40k = cm.epg_cost(40_000);
        assert_eq!(c40k.0, 4 * c10k.0);
        // 10K EPG should be in the microseconds range, as on KNL.
        assert!(c10k.0 > 1_000 && c10k.0 < 100_000);
    }

    #[test]
    fn collective_latency_grows_logarithmically() {
        let cm = CostModel::knl_cluster();
        let l1 = cm.collective_latency(1);
        let l2 = cm.collective_latency(2);
        let l8 = cm.collective_latency(8);
        assert_eq!(l1, l2, "1 and 2 nodes are both a single stage");
        assert_eq!(l8.0, 3 * l2.0);
    }
}
