//! Queueing model of a contended lock.
//!
//! Threaded MPI serializes all library calls behind a global lock; Amer et
//! al. showed the queueing delay behind that lock, not the critical section
//! itself, is what destroys MPI+threads performance. [`VirtualMutex`] models
//! exactly that: acquisitions serialize in time. A caller arriving at `now`
//! begins its critical section at `max(now, lock_free_at)`, holds for
//! `hold`, and is charged the whole interval. The paper's `PerWorker` MPI
//! mode routes every worker's MPI calls through one of these.

use cagvt_base::time::WallNs;
use std::sync::atomic::{AtomicU64, Ordering};

/// A lock whose contention is expressed as simulated waiting time.
///
/// ```
/// use cagvt_net::VirtualMutex;
/// use cagvt_base::WallNs;
///
/// let lock = VirtualMutex::new();
/// // Three callers arrive simultaneously, each holding for 100ns: they
/// // serialize, and each is charged its queueing delay plus the hold.
/// assert_eq!(lock.acquire(WallNs(0), WallNs(100)), WallNs(100));
/// assert_eq!(lock.acquire(WallNs(0), WallNs(100)), WallNs(200));
/// assert_eq!(lock.acquire(WallNs(0), WallNs(100)), WallNs(300));
/// assert_eq!(lock.total_wait(), WallNs(300));
/// ```
#[derive(Debug, Default)]
pub struct VirtualMutex {
    free_at: AtomicU64,
    acquisitions: AtomicU64,
    total_wait: AtomicU64,
}

impl VirtualMutex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire at `now`, hold for `hold`. Returns the total wall-clock
    /// charge for the caller (queueing delay + hold time).
    ///
    /// Under the virtual scheduler calls are sequential and the CAS always
    /// succeeds on the first try; under real threads the loop linearizes
    /// concurrent acquisitions in some order, which is all the model needs.
    pub fn acquire(&self, now: WallNs, hold: WallNs) -> WallNs {
        loop {
            let free = self.free_at.load(Ordering::Acquire);
            let start = now.0.max(free);
            let new_free = start + hold.0;
            if self
                .free_at
                .compare_exchange(free, new_free, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                let wait = start - now.0;
                self.acquisitions.fetch_add(1, Ordering::Relaxed);
                self.total_wait.fetch_add(wait, Ordering::Relaxed);
                return WallNs(new_free - now.0);
            }
        }
    }

    /// Number of acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.load(Ordering::Relaxed)
    }

    /// Accumulated queueing delay across all acquisitions (the contention
    /// signal the dedicated-MPI-thread experiments visualize).
    pub fn total_wait(&self) -> WallNs {
        WallNs(self.total_wait.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_charges_only_hold() {
        let m = VirtualMutex::new();
        let charge = m.acquire(WallNs(1_000), WallNs(100));
        assert_eq!(charge, WallNs(100));
        assert_eq!(m.total_wait(), WallNs::ZERO);
    }

    #[test]
    fn back_to_back_acquires_queue_up() {
        let m = VirtualMutex::new();
        // Three callers all arrive at t=0 wanting 100ns each.
        assert_eq!(m.acquire(WallNs(0), WallNs(100)), WallNs(100));
        assert_eq!(m.acquire(WallNs(0), WallNs(100)), WallNs(200));
        assert_eq!(m.acquire(WallNs(0), WallNs(100)), WallNs(300));
        assert_eq!(m.acquisitions(), 3);
        assert_eq!(m.total_wait(), WallNs(300)); // 0 + 100 + 200
    }

    #[test]
    fn late_arrival_after_free_pays_no_wait() {
        let m = VirtualMutex::new();
        m.acquire(WallNs(0), WallNs(100));
        let charge = m.acquire(WallNs(500), WallNs(100));
        assert_eq!(charge, WallNs(100));
        assert_eq!(m.total_wait(), WallNs::ZERO);
    }

    #[test]
    fn interleaved_arrivals() {
        let m = VirtualMutex::new();
        m.acquire(WallNs(0), WallNs(1_000)); // free at 1000
        let charge = m.acquire(WallNs(400), WallNs(200)); // waits 600, holds 200
        assert_eq!(charge, WallNs(800));
        assert_eq!(m.total_wait(), WallNs(600));
    }

    #[test]
    fn concurrent_acquires_linearize() {
        use std::sync::Arc;
        let m = Arc::new(VirtualMutex::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        m.acquire(WallNs(0), WallNs(10));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.acquisitions(), 8_000);
        // All arrived at t=0 holding 10ns each: the lock is finally free at
        // exactly 80_000 regardless of interleaving.
        assert_eq!(m.free_at.load(Ordering::Relaxed), 80_000);
    }
}
