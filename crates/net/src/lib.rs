//! Simulated many-core cluster communication substrate.
//!
//! This crate stands in for the hardware/software stack the paper runs on —
//! an 8-node Intel KNL cluster with mpich over 10 GbE — as a set of
//! *cost-modeled, polled* communication primitives that work identically
//! under the deterministic virtual scheduler and under real OS threads:
//!
//! * [`CostModel`] / [`ClusterSpec`] — every tunable wall-clock cost of the
//!   modeled cluster (EPG unit cost, per-message MPI overheads, NIC
//!   bandwidth, wire latency, lock hold times, barrier costs), with a
//!   calibrated KNL-cluster preset.
//! * [`Mailbox`] — FIFO channel with delivery-time gating; used for
//!   intra-node (regional) queues and node-level MPI in/out queues.
//! * [`VirtualMutex`] — queueing model of a contended lock; reproduces the
//!   threaded-MPI lock contention of Amer et al. that motivates the paper's
//!   dedicated MPI thread.
//! * [`Nic`] — transmit-side serialization (bandwidth) plus wire latency.
//! * [`MpiFabric`] — node-to-node FIFO channels for event traffic and a
//!   control plane (ring messages) for GVT algorithms.
//! * [`collective`] — polled node-level barriers/reductions (the paper's
//!   pthread barrier) and cluster-level collectives with modeled completion
//!   latency (the paper's MPI barrier / allreduce).
//!
//! Nothing here blocks: waiting is expressed by polling, so the engine's
//! actors stay non-blocking state machines.

pub mod collective;
pub mod envelope;
pub mod link;
pub mod mailbox;
pub mod mpi;
pub mod spec;
pub mod vmutex;

pub use collective::{ClusterCollective, NodeBarrier, NodeReduce, ReduceValue};
pub use envelope::{MsgClass, NetMsg};
pub use link::Nic;
pub use mailbox::Mailbox;
pub use mpi::{
    fabric_pair, fabric_pair_faulted, fabric_pair_traced, CtrlMsg, CtrlPlane, MpiFabric,
};
pub use spec::{ClusterSpec, CostModel, MpiMode};
pub use vmutex::VirtualMutex;
