//! Message classification and the delivery envelope.

use cagvt_base::time::WallNs;

/// The paper's three message classes, by destination locality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgClass {
    /// Sent by an LP to an LP on the same worker thread: no interconnect,
    /// fastest.
    Local,
    /// Destination is another core on the same node: shared memory, needs
    /// locking.
    Regional,
    /// Destination is on a different node: crosses the network via MPI,
    /// slowest.
    Remote,
}

impl MsgClass {
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Local => "local",
            MsgClass::Regional => "regional",
            MsgClass::Remote => "remote",
        }
    }
}

/// A payload wrapped with the simulated wall-clock instant at which it
/// becomes observable at its destination.
#[derive(Clone, Debug)]
pub struct NetMsg<T> {
    pub deliver_at: WallNs,
    pub payload: T,
}

impl<T> NetMsg<T> {
    #[inline]
    pub fn new(deliver_at: WallNs, payload: T) -> Self {
        NetMsg { deliver_at, payload }
    }

    /// Immediately observable (zero modeled propagation).
    #[inline]
    pub fn immediate(payload: T) -> Self {
        NetMsg { deliver_at: WallNs::ZERO, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(MsgClass::Local.label(), "local");
        assert_eq!(MsgClass::Regional.label(), "regional");
        assert_eq!(MsgClass::Remote.label(), "remote");
    }

    #[test]
    fn immediate_is_observable_at_time_zero() {
        let m = NetMsg::immediate(42u32);
        assert_eq!(m.deliver_at, WallNs::ZERO);
        assert_eq!(m.payload, 42);
    }
}
