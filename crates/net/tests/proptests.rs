//! Property tests for the cluster substrate's time-queueing primitives.

use cagvt_base::time::WallNs;
use cagvt_net::{Mailbox, Nic, VirtualMutex};
use proptest::prelude::*;

proptest! {
    /// A sequence of lock acquisitions never overlaps in time: each
    /// caller's critical section starts at or after the previous one's
    /// end, and the charge equals wait + hold.
    #[test]
    fn vmutex_serializes(ops in prop::collection::vec((0u64..1_000_000, 1u64..10_000), 1..100)) {
        let m = VirtualMutex::new();
        let mut sections: Vec<(u64, u64)> = Vec::new();
        for (now, hold) in ops {
            let charge = m.acquire(WallNs(now), WallNs(hold));
            let end = now + charge.as_nanos();
            let start = end - hold;
            prop_assert!(start >= now, "section cannot start before arrival");
            sections.push((start, end));
        }
        // Sections are disjoint in acquisition order.
        for w in sections.windows(2) {
            prop_assert!(w[1].0 >= w[0].1, "overlap: {:?}", w);
        }
    }

    /// NIC deliveries per sender are monotone in transmit completion and
    /// each message occupies the wire exclusively.
    #[test]
    fn nic_serializes(ops in prop::collection::vec(0u64..1_000_000, 1..100),
                      per_msg in 1u64..5_000, latency in 0u64..100_000) {
        let nic = Nic::new();
        let mut last_tx_done = 0u64;
        for &now in &ops {
            let deliver = nic.send(WallNs(now), WallNs(per_msg), WallNs(latency));
            let tx_done = deliver.as_nanos() - latency;
            let tx_start = tx_done - per_msg;
            prop_assert!(tx_start >= last_tx_done, "transmissions overlap");
            prop_assert!(tx_start >= now);
            last_tx_done = tx_done;
        }
        prop_assert_eq!(nic.sent(), ops.len() as u64);
    }
}

proptest! {
    /// Mailbox delivers every message exactly once, in push order, never
    /// before its deliver_at.
    #[test]
    fn mailbox_fifo_exactly_once(msgs in prop::collection::vec(0u64..100_000, 1..200)) {
        let mb: Mailbox<usize> = Mailbox::new();
        for (i, &t) in msgs.iter().enumerate() {
            mb.push(WallNs(t), i);
        }
        let mut got = Vec::new();
        let mut now = 0u64;
        while got.len() < msgs.len() {
            now += 1_000;
            prop_assert!(now < 1_000_000_000, "livelock");
            while let Some(i) = mb.pop_ready(WallNs(now)) {
                prop_assert!(now >= msgs[i], "delivered before deliver_at");
                got.push(i);
            }
        }
        // FIFO: indices in push order.
        let expected: Vec<usize> = (0..msgs.len()).collect();
        prop_assert_eq!(got, expected);
        prop_assert!(mb.is_empty());
    }
}
