//! Online-metrics hook points.
//!
//! Where [`crate::trace::TraceSink`] observes *individual* engine actions
//! (one record per event, message, rollback…), the metrics hook observes
//! the engine at the granularity the CA-GVT *controller* operates on: one
//! [`MetricsEpoch`] per published GVT round, carrying the windowed —
//! not cumulative — counter deltas, the per-worker LVT lag horizon and the
//! controller's own mode/cause decision for that round.
//!
//! The discipline is identical to tracing: the engine consults an optional
//! [`MetricsSink`] but never branches on it, a sink only records and never
//! charges wall-clock cost, and per-worker counters are deposited into
//! lock-free cells that are merged *at GVT rounds* — the per-event hot
//! path is untouched. Metered and unmetered runs are therefore
//! bit-identical (the `metrics_never_perturb` proptest pins this).
//!
//! The concrete registry, the CSV/JSONL/Prometheus exporters and the
//! [`HealthMonitor`](../../cagvt_metrics) rules live in the
//! `cagvt-metrics` crate; this module defines only the trait and the epoch
//! record so every layer can hold the hook without a dependency cycle
//! (mirroring [`crate::fault::FaultInjector`] and
//! [`crate::trace::TraceSink`]).

use crate::time::WallNs;

/// Controller mode a GVT round ran under, as seen by the epoch stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EpochMode {
    /// The GVT algorithm has no sync/async controller (Barrier and plain
    /// Mattern rounds).
    #[default]
    Uncontrolled,
    /// CA-GVT ran the round asynchronously (plain Mattern behavior).
    Async,
    /// CA-GVT armed the conditional barriers and ran the round
    /// synchronously.
    Sync,
}

impl EpochMode {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            EpochMode::Uncontrolled => "uncontrolled",
            EpochMode::Async => "async",
            EpochMode::Sync => "sync",
        }
    }
}

/// Why CA-GVT armed its conditional barriers for a synchronous round.
///
/// The controller decides at the *previous* publication: a round is run
/// synchronously when the last windowed efficiency fell below the
/// threshold and/or the MPI queues were deeper than the optional queue
/// threshold (paper §5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SyncCause {
    /// Asynchronous round (or no controller): nothing was armed.
    #[default]
    None,
    /// Windowed efficiency fell below the controller threshold.
    Efficiency,
    /// MPI queue occupancy exceeded the queue threshold.
    QueueDepth,
    /// Both triggers fired at the arming publication.
    Both,
}

impl SyncCause {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            SyncCause::None => "none",
            SyncCause::Efficiency => "efficiency",
            SyncCause::QueueDepth => "queue-depth",
            SyncCause::Both => "efficiency+queue",
        }
    }

    /// Compact wire form for atomics (see [`SyncCause::from_u8`]).
    pub fn as_u8(self) -> u8 {
        match self {
            SyncCause::None => 0,
            SyncCause::Efficiency => 1,
            SyncCause::QueueDepth => 2,
            SyncCause::Both => 3,
        }
    }

    /// Inverse of [`SyncCause::as_u8`]; unknown encodings collapse to
    /// `None`.
    pub fn from_u8(v: u8) -> SyncCause {
        match v {
            1 => SyncCause::Efficiency,
            2 => SyncCause::QueueDepth,
            3 => SyncCause::Both,
            _ => SyncCause::None,
        }
    }

    /// Combine the two trigger predicates into a cause.
    pub fn from_flags(efficiency: bool, queue: bool) -> SyncCause {
        match (efficiency, queue) {
            (true, true) => SyncCause::Both,
            (true, false) => SyncCause::Efficiency,
            (false, true) => SyncCause::QueueDepth,
            (false, false) => SyncCause::None,
        }
    }
}

/// Conditional-barrier bitmask: which of CA-GVT's barriers A/B/C the round
/// passed through (`barriers` field of [`MetricsEpoch`]).
pub const BARRIER_A: u8 = 1 << 0;
/// See [`BARRIER_A`].
pub const BARRIER_B: u8 = 1 << 1;
/// See [`BARRIER_A`].
pub const BARRIER_C: u8 = 1 << 2;

/// Render a barrier bitmask as `"A+B+C"` / `"-"` for the exporters.
pub fn barrier_label(mask: u8) -> String {
    let mut parts = Vec::new();
    if mask & BARRIER_A != 0 {
        parts.push("A");
    }
    if mask & BARRIER_B != 0 {
        parts.push("B");
    }
    if mask & BARRIER_C != 0 {
        parts.push("C");
    }
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join("+")
    }
}

/// One GVT epoch of controller telemetry.
///
/// All `*_delta` fields are windowed over the epoch — the difference of
/// the cluster-wide counter totals between this publication and the
/// previous one — so the series shows the signal the CA-GVT controller
/// actually reacts to, not a cumulative average. Counter totals include
/// the per-worker cells deposited at round boundaries; a worker's cell may
/// lag the very latest events by at most one round (it is refreshed when
/// the worker passes its own round completion), which keeps the event loop
/// free of any metrics cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsEpoch {
    /// GVT round number (1-based, as published).
    pub round: u64,
    /// Simulated wall-clock time of the publication.
    pub t: WallNs,
    /// The published GVT value.
    pub gvt: f64,
    /// Events committed during the epoch.
    pub committed_delta: u64,
    /// Events processed (committed + later rolled back) during the epoch.
    pub processed_delta: u64,
    /// Events rolled back during the epoch.
    pub rolled_back_delta: u64,
    /// Rollback episodes during the epoch.
    pub rollbacks_delta: u64,
    /// Anti-messages sent during the epoch.
    pub antis_sent_delta: u64,
    /// Event/anti pairs annihilated during the epoch.
    pub annihilated_delta: u64,
    /// Messages routed out of workers during the epoch.
    pub msgs_sent_delta: u64,
    /// Messages drained by workers during the epoch.
    pub msgs_received_delta: u64,
    /// Windowed efficiency `committed / (committed + rolled_back)` over
    /// the epoch; `1.0` when the epoch committed nothing.
    pub efficiency_window: f64,
    /// Cumulative run efficiency at the publication, for reference.
    pub efficiency_cum: f64,
    /// Per-worker LVT lag `lvt - gvt` at the publication, indexed by
    /// global worker id; `NaN` for workers at infinite LVT (idle).
    pub worker_lag: Vec<f64>,
    /// `max - min` over the finite worker LVTs (0 when fewer than one
    /// finite sample).
    pub horizon_width: f64,
    /// Standard deviation of the finite worker lags — the horizon
    /// "roughness" of the Shchur–Novotny time-horizon analysis.
    pub horizon_roughness: f64,
    /// Mean of the finite worker lags.
    pub mean_lag: f64,
    /// Per-node MPI outbox occupancy at the publication.
    pub mpi_queue_depths: Vec<u64>,
    /// `max` over [`MetricsEpoch::mpi_queue_depths`].
    pub mpi_queue_max: u64,
    /// Controller mode of the round.
    pub mode: EpochMode,
    /// Which conditional barriers the round passed through
    /// ([`BARRIER_A`]`|`[`BARRIER_B`]`|`[`BARRIER_C`]; 0 for async or
    /// uncontrolled rounds).
    pub barriers: u8,
    /// Why the controller armed the barriers (sync rounds only).
    pub cause: SyncCause,
}

impl MetricsEpoch {
    /// Finite worker count contributing to the horizon statistics.
    pub fn finite_workers(&self) -> usize {
        self.worker_lag.iter().filter(|l| l.is_finite()).count()
    }
}

/// Observation hook consulted once per published GVT round.
///
/// Same contract as [`crate::trace::TraceSink`]: implementations may
/// allocate and lock internally but must never feed anything back into
/// engine state, and the engine never charges virtual time for a sink
/// call. Call sites assemble the epoch lazily, so a disabled sink costs
/// one virtual call per round.
pub trait MetricsSink: Send + Sync {
    /// Cheap global gate. The engine skips epoch assembly — including the
    /// per-worker cell deposits — when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one epoch published at simulated wall-clock time `t`.
    fn on_epoch(&self, t: WallNs, epoch: &MetricsEpoch);
}

/// The no-op sink: `enabled()` is `false`, so the engine skips epoch
/// assembly entirely and the per-round overhead reduces to one virtual
/// call — the overhead the `metrics_overhead` micro-bench pins to noise.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {
    fn enabled(&self) -> bool {
        false
    }

    fn on_epoch(&self, _t: WallNs, _epoch: &MetricsEpoch) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let s = NullMetrics;
        assert!(!s.enabled());
        s.on_epoch(WallNs(1), &MetricsEpoch::default()); // no-op
    }

    #[test]
    fn sync_cause_round_trips_through_u8() {
        for cause in
            [SyncCause::None, SyncCause::Efficiency, SyncCause::QueueDepth, SyncCause::Both]
        {
            assert_eq!(SyncCause::from_u8(cause.as_u8()), cause);
        }
        assert_eq!(SyncCause::from_u8(250), SyncCause::None);
    }

    #[test]
    fn sync_cause_from_flags_covers_the_truth_table() {
        assert_eq!(SyncCause::from_flags(false, false), SyncCause::None);
        assert_eq!(SyncCause::from_flags(true, false), SyncCause::Efficiency);
        assert_eq!(SyncCause::from_flags(false, true), SyncCause::QueueDepth);
        assert_eq!(SyncCause::from_flags(true, true), SyncCause::Both);
    }

    #[test]
    fn barrier_labels_are_stable() {
        assert_eq!(barrier_label(0), "-");
        assert_eq!(barrier_label(BARRIER_A), "A");
        assert_eq!(barrier_label(BARRIER_A | BARRIER_C), "A+C");
        assert_eq!(barrier_label(BARRIER_A | BARRIER_B | BARRIER_C), "A+B+C");
    }

    #[test]
    fn finite_workers_skips_nan_lags() {
        let e =
            MetricsEpoch { worker_lag: vec![1.0, f64::NAN, 0.5, f64::NAN], ..Default::default() };
        assert_eq!(e.finite_workers(), 2);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EpochMode::Uncontrolled.label(), "uncontrolled");
        assert_eq!(EpochMode::Async.label(), "async");
        assert_eq!(EpochMode::Sync.label(), "sync");
        assert_eq!(SyncCause::Both.label(), "efficiency+queue");
    }
}
