//! Structured-tracing hook points.
//!
//! The engine is observed from the *outside*: workers, the MPI pumps, the
//! GVT algorithms and the scheduler each consult an optional [`TraceSink`]
//! at the moments the paper's analysis cares about — when an event is
//! processed or rolled back, when a GVT round changes phase, when a worker
//! blocks on a barrier, when an MPI queue is sampled, and when the
//! per-worker LVT horizon is snapshotted. Engine logic never branches on
//! tracing; a sink only *records*, it never charges wall-clock cost, which
//! is what keeps traced and untraced runs observationally identical (the
//! `tracing_never_perturbs` proptest pins this).
//!
//! All records are stamped in simulated wall-clock nanoseconds ([`WallNs`]),
//! so under the serialized `VirtualScheduler` a trace is bit-deterministic:
//! the same configuration produces the same record sequence, byte for byte.
//! The same hooks fire from `ThreadRuntime` (sinks are `Send + Sync`); there
//! the interleaving — and hence the trace — is only as deterministic as the
//! thread schedule.
//!
//! The concrete ring-buffer recorder and the Chrome-trace / CSV exporters
//! live in the `cagvt-trace` crate; this module only defines the trait and
//! the record vocabulary so every layer can hold a hook without a
//! dependency cycle (mirroring [`crate::fault::FaultInjector`]).

use crate::ids::{EventId, LpId};
use crate::time::{VirtualTime, WallNs};
use std::fmt;
use std::sync::Arc;

/// The track (≈ Perfetto thread) a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A worker, by global worker index.
    Worker(u32),
    /// A node's MPI actor / progress engine.
    Mpi(u16),
    /// Cluster-global records (GVT publications, scheduler events).
    Global,
}

/// Phase transitions of one GVT round, in the vocabulary shared by all
/// three algorithms (request → local min → reduce → publish).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GvtPhaseKind {
    /// A participant joined the requested round.
    RoundStart,
    /// Mattern white→red cutpoint: the local white-message bucket is
    /// flushed and the red minimum starts accumulating.
    TurnRed,
    /// The participant contributed its local minimum to the reduction.
    CheckIn,
    /// A reduction pass over in-transit message counts (Mattern's ring
    /// SUM pass; the barrier algorithm's sum-until-drained loop).
    SumPass,
    /// A reduction pass over the timestamp minima.
    MinPass,
    /// The participant blocked on a synchronization barrier (Barrier GVT
    /// always; CA-GVT's conditional barriers A/B/C).
    BarrierEnter,
    /// The barrier released the participant.
    BarrierExit,
    /// The round's GVT value was published.
    Publish,
}

impl GvtPhaseKind {
    /// Stable lower-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            GvtPhaseKind::RoundStart => "round-start",
            GvtPhaseKind::TurnRed => "turn-red",
            GvtPhaseKind::CheckIn => "check-in",
            GvtPhaseKind::SumPass => "sum-pass",
            GvtPhaseKind::MinPass => "min-pass",
            GvtPhaseKind::BarrierEnter => "barrier-enter",
            GvtPhaseKind::BarrierExit => "barrier-exit",
            GvtPhaseKind::Publish => "publish",
        }
    }
}

/// One typed trace record.
///
/// Records are small and `Copy`; a sink that keeps them (the ring recorder)
/// stores them verbatim, and a sink that formats them (the stderr sink)
/// pays formatting cost only for records that pass its filter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceRecord {
    /// One committed-or-optimistic event processed by a worker: `vt` is the
    /// event's receive time, `dur` the wall-clock charge of the step.
    EventSpan { worker: u32, id: EventId, dst: LpId, vt: VirtualTime, dur: WallNs },
    /// A message (event or anti-message) routed out of a worker.
    MsgSend { worker: u32, id: EventId, dst: LpId, vt: VirtualTime, anti: bool, remote: bool },
    /// A message drained from a worker's inbound lane.
    MsgRecv { worker: u32, id: EventId, vt: VirtualTime, anti: bool },
    /// A rolled-back event re-enqueued for reprocessing.
    Reenqueue { worker: u32, id: EventId, vt: VirtualTime },
    /// An anti-message that arrived before its positive copy and was
    /// deferred.
    AntiDeferred { worker: u32, id: EventId, vt: VirtualTime },
    /// An event/anti pair annihilated (`pending`: the positive copy was
    /// still unprocessed).
    Annihilate { worker: u32, id: EventId, pending: bool },
    /// A rollback undoing `undone` events (`straggler`: caused by a
    /// straggler arrival rather than an anti-message).
    Rollback { worker: u32, undone: u64, straggler: bool },
    /// A GVT round phase transition on some track.
    GvtRound { track: Track, round: u64, phase: GvtPhaseKind },
    /// A round's GVT value was published cluster-wide.
    GvtPublish { round: u64, gvt: VirtualTime },
    /// One contiguous blocked stretch of a worker inside a GVT barrier.
    BarrierWait { worker: u32, dur: WallNs },
    /// MPI queue occupancy sample (`inbound`: fabric inbox rather than the
    /// node's outbox).
    MpiQueue { node: u16, depth: u64, inbound: bool },
    /// Per-worker LVT sample of one virtual-time-horizon snapshot.
    Lvt { worker: u32, lvt: VirtualTime },
    /// An actor retired from the scheduler.
    ActorDone { actor: u32 },
}

impl TraceRecord {
    /// The track this record belongs to.
    pub fn track(&self) -> Track {
        match *self {
            TraceRecord::EventSpan { worker, .. }
            | TraceRecord::MsgSend { worker, .. }
            | TraceRecord::MsgRecv { worker, .. }
            | TraceRecord::Reenqueue { worker, .. }
            | TraceRecord::AntiDeferred { worker, .. }
            | TraceRecord::Annihilate { worker, .. }
            | TraceRecord::Rollback { worker, .. }
            | TraceRecord::BarrierWait { worker, .. }
            | TraceRecord::Lvt { worker, .. } => Track::Worker(worker),
            TraceRecord::GvtRound { track, .. } => track,
            TraceRecord::MpiQueue { node, .. } => Track::Mpi(node),
            TraceRecord::GvtPublish { .. } | TraceRecord::ActorDone { .. } => Track::Global,
        }
    }

    /// The event identity this record is about, if any (the stderr sink's
    /// single-event filter keys on this).
    pub fn event_id(&self) -> Option<EventId> {
        match *self {
            TraceRecord::EventSpan { id, .. }
            | TraceRecord::MsgSend { id, .. }
            | TraceRecord::MsgRecv { id, .. }
            | TraceRecord::Reenqueue { id, .. }
            | TraceRecord::AntiDeferred { id, .. }
            | TraceRecord::Annihilate { id, .. } => Some(id),
            _ => None,
        }
    }

    /// Stable lower-case record-kind label used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceRecord::EventSpan { .. } => "event",
            TraceRecord::MsgSend { .. } => "send",
            TraceRecord::MsgRecv { .. } => "recv",
            TraceRecord::Reenqueue { .. } => "reenqueue",
            TraceRecord::AntiDeferred { .. } => "anti-deferred",
            TraceRecord::Annihilate { .. } => "annihilate",
            TraceRecord::Rollback { .. } => "rollback",
            TraceRecord::GvtRound { .. } => "gvt-phase",
            TraceRecord::GvtPublish { .. } => "gvt-publish",
            TraceRecord::BarrierWait { .. } => "barrier-wait",
            TraceRecord::MpiQueue { .. } => "mpi-queue",
            TraceRecord::Lvt { .. } => "lvt",
            TraceRecord::ActorDone { .. } => "actor-done",
        }
    }
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceRecord::EventSpan { worker, id, dst, vt, dur } => {
                write!(f, "w{worker} PROCESS {id} @ {dst} t={vt} cost={dur}")
            }
            TraceRecord::MsgSend { worker, id, dst, vt, anti, remote } => {
                let kind = if anti { "anti" } else { "event" };
                let scope = if remote { "remote" } else { "local" };
                write!(f, "w{worker} SEND {kind} {id} -> {dst} t={vt} ({scope})")
            }
            TraceRecord::MsgRecv { worker, id, vt, anti } => {
                let kind = if anti { "anti" } else { "event" };
                write!(f, "w{worker} RECV {kind} {id} t={vt}")
            }
            TraceRecord::Reenqueue { worker, id, vt } => {
                write!(f, "w{worker} REENQ {id} t={vt}")
            }
            TraceRecord::AntiDeferred { worker, id, vt } => {
                write!(f, "w{worker} ANTI-DEFER {id} t={vt}")
            }
            TraceRecord::Annihilate { worker, id, pending } => {
                let which = if pending { "pending" } else { "processed" };
                write!(f, "w{worker} ANNIHILATE {id} ({which})")
            }
            TraceRecord::Rollback { worker, undone, straggler } => {
                let cause = if straggler { "straggler" } else { "anti" };
                write!(f, "w{worker} ROLLBACK undone={undone} ({cause})")
            }
            TraceRecord::GvtRound { track, round, phase } => {
                write!(f, "{track:?} GVT round={round} {}", phase.label())
            }
            TraceRecord::GvtPublish { round, gvt } => {
                write!(f, "GVT-PUBLISH round={round} gvt={gvt}")
            }
            TraceRecord::BarrierWait { worker, dur } => {
                write!(f, "w{worker} BARRIER-WAIT {dur}")
            }
            TraceRecord::MpiQueue { node, depth, inbound } => {
                let which = if inbound { "inbox" } else { "outbox" };
                write!(f, "n{node} MPI-{which} depth={depth}")
            }
            TraceRecord::Lvt { worker, lvt } => write!(f, "w{worker} LVT {lvt}"),
            TraceRecord::ActorDone { actor } => write!(f, "a{actor} DONE"),
        }
    }
}

/// Observation hook consulted by every instrumented layer.
///
/// Implementations must be cheap and side-effect-free with respect to the
/// simulation: a sink may allocate and lock internally, but it must never
/// feed anything back into engine state. Call sites construct records
/// lazily, so a disabled sink costs one virtual call.
pub trait TraceSink: Send + Sync {
    /// Cheap global gate. Call sites skip record construction entirely
    /// when this returns `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Record one observation at simulated wall-clock time `t`.
    fn record(&self, t: WallNs, rec: &TraceRecord);
}

/// The no-op sink: `enabled()` is `false`, so instrumented call sites skip
/// record construction and the hot path reduces to one virtual call per
/// hook — the overhead the `trace_overhead` micro-bench pins to noise.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _t: WallNs, _rec: &TraceRecord) {}
}

/// A stderr sink with an optional single-event filter — the successor of
/// the old `CAGVT_TRACE` eprintln macro in `worker.rs`. With a filter it
/// prints only records about event `lp:seq`; without one it prints every
/// record (verbose!).
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink {
    /// Print only records whose [`TraceRecord::event_id`] matches.
    pub filter: Option<(LpId, u64)>,
}

impl TraceSink for StderrSink {
    fn record(&self, t: WallNs, rec: &TraceRecord) {
        if let Some((lp, seq)) = self.filter {
            match rec.event_id() {
                Some(id) if id.src == lp && id.seq == seq => {}
                _ => return,
            }
        }
        eprintln!("[trace {}] {rec}", t.0);
    }
}

/// Build the convenience sink selected by the `CAGVT_TRACE` environment
/// variable: `CAGVT_TRACE=<lp>:<seq>` yields a [`StderrSink`] filtered to
/// that one event's lifecycle; `CAGVT_TRACE=all` yields an unfiltered
/// stderr sink; unset/unparsable yields `None`.
pub fn env_sink() -> Option<Arc<dyn TraceSink>> {
    let spec = std::env::var("CAGVT_TRACE").ok()?;
    if spec == "all" {
        return Some(Arc::new(StderrSink { filter: None }));
    }
    let (lp, seq) = spec.split_once(':')?;
    let filter = Some((LpId(lp.parse().ok()?), seq.parse().ok()?));
    Some(Arc::new(StderrSink { filter }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(lp: u32, seq: u64) -> EventId {
        EventId::new(LpId(lp), seq)
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullTrace;
        assert!(!s.enabled());
        s.record(WallNs(1), &TraceRecord::ActorDone { actor: 0 }); // no-op
    }

    #[test]
    fn tracks_route_records_to_their_actor() {
        assert_eq!(
            TraceRecord::EventSpan {
                worker: 3,
                id: id(1, 2),
                dst: LpId(9),
                vt: VirtualTime::new(1.0),
                dur: WallNs(10),
            }
            .track(),
            Track::Worker(3)
        );
        assert_eq!(
            TraceRecord::MpiQueue { node: 2, depth: 5, inbound: false }.track(),
            Track::Mpi(2)
        );
        assert_eq!(
            TraceRecord::GvtPublish { round: 1, gvt: VirtualTime::ZERO }.track(),
            Track::Global
        );
        assert_eq!(
            TraceRecord::GvtRound { track: Track::Mpi(1), round: 2, phase: GvtPhaseKind::SumPass }
                .track(),
            Track::Mpi(1)
        );
    }

    #[test]
    fn event_id_exposed_only_for_message_records() {
        let rec = TraceRecord::MsgSend {
            worker: 0,
            id: id(4, 7),
            dst: LpId(1),
            vt: VirtualTime::new(2.0),
            anti: true,
            remote: false,
        };
        assert_eq!(rec.event_id(), Some(id(4, 7)));
        assert_eq!(
            TraceRecord::Rollback { worker: 0, undone: 3, straggler: true }.event_id(),
            None
        );
    }

    #[test]
    fn stderr_filter_matches_exactly() {
        // Behavioural check of the filter predicate, not the printing.
        let sink = StderrSink { filter: Some((LpId(4), 7)) };
        let hit =
            TraceRecord::MsgRecv { worker: 0, id: id(4, 7), vt: VirtualTime::ZERO, anti: false };
        let miss =
            TraceRecord::MsgRecv { worker: 0, id: id(4, 8), vt: VirtualTime::ZERO, anti: false };
        // `record` returns unit; the observable contract is that only `hit`
        // prints. Exercise both paths for coverage.
        sink.record(WallNs(0), &hit);
        sink.record(WallNs(0), &miss);
        assert_eq!(hit.event_id(), Some(id(4, 7)));
        assert_ne!(miss.event_id(), Some(id(4, 7)));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(GvtPhaseKind::TurnRed.label(), "turn-red");
        assert_eq!(GvtPhaseKind::Publish.label(), "publish");
        assert_eq!(TraceRecord::ActorDone { actor: 1 }.kind(), "actor-done");
        let shown = format!(
            "{}",
            TraceRecord::MsgSend {
                worker: 2,
                id: id(1, 5),
                dst: LpId(3),
                vt: VirtualTime::new(0.5),
                anti: false,
                remote: true,
            }
        );
        assert!(shown.contains("SEND") && shown.contains("remote"), "{shown}");
    }
}
