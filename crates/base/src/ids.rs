//! Identifier newtypes for cluster topology and simulation entities.
//!
//! Topology vocabulary mirrors the paper's setup: a *cluster* of *nodes*
//! (KNL sockets), each running several *lanes* (hardware threads pinned one
//! per core: worker threads plus, optionally, a dedicated MPI thread). Each
//! worker lane owns a fixed, static partition of the *logical processes*
//! (LPs).

use std::fmt;

/// A node of the cluster (one simulation instance / MPI rank in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A lane within a node: worker lanes are `0..workers`, the dedicated MPI
/// lane (when present) is lane `workers`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LaneId(pub u16);

impl LaneId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Globally unique actor identifier, dense in `0..actor_count`, used by the
/// schedulers and for deterministic tie-breaking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ActorId(pub u32);

impl ActorId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A logical process. Dense global index `0..total_lps`; the cluster builder
/// maps LPs onto (node, worker lane) blocks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LpId(pub u32);

impl LpId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lp{}", self.0)
    }
}

/// Globally unique event identity: the sending LP plus that LP's
/// monotonically increasing send sequence number.
///
/// Anti-messages carry the `EventId` of the positive message they cancel;
/// annihilation matches on it. The pair also serves as the deterministic
/// tie-breaker in the total event order `(recv_time, src, seq)` shared by
/// the optimistic engine and the sequential reference simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId {
    pub src: LpId,
    pub seq: u64,
}

impl EventId {
    #[inline]
    pub fn new(src: LpId, seq: u64) -> Self {
        EventId { src, seq }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.src, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ordering_and_indexing() {
        assert!(NodeId(0) < NodeId(3));
        assert_eq!(NodeId(3).index(), 3);
        assert_eq!(LaneId(7).index(), 7);
        assert_eq!(ActorId(9).index(), 9);
        assert_eq!(LpId(11).index(), 11);
    }

    #[test]
    fn event_id_orders_by_src_then_seq() {
        let a = EventId::new(LpId(1), 5);
        let b = EventId::new(LpId(1), 6);
        let c = EventId::new(LpId(2), 0);
        assert!(a < b && b < c);
        assert_eq!(format!("{a}"), "lp1#5");
    }
}
