//! Time types: model virtual time and simulated wall-clock nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Virtual (model) time of the discrete event simulation.
///
/// A totally ordered wrapper around a finite, non-negative `f64`. `NaN` is
/// rejected at construction, which makes `Ord` sound. Use
/// [`VirtualTime::INFINITY`] as the "no event" sentinel (e.g. Mattern's
/// `min_red` starts at infinity).
///
/// ```
/// use cagvt_base::VirtualTime;
///
/// let a = VirtualTime::new(1.5);
/// let b = VirtualTime::new(2.0);
/// assert!(a < b && b < VirtualTime::INFINITY);
///
/// // The ordered-bits encoding lets virtual times live in atomics while
/// // preserving comparison order (used for min-reductions).
/// assert!(a.to_ordered_bits() < b.to_ordered_bits());
/// assert_eq!(VirtualTime::from_ordered_bits(a.to_ordered_bits()), a);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct VirtualTime(f64);

impl VirtualTime {
    pub const ZERO: VirtualTime = VirtualTime(0.0);
    pub const INFINITY: VirtualTime = VirtualTime(f64::INFINITY);

    /// Construct from a raw `f64`.
    ///
    /// # Panics
    /// Panics on `NaN` or negative values: virtual time is a forward-only
    /// axis and every ordering in the engine relies on totality.
    #[inline]
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan() && t >= 0.0, "invalid virtual time: {t}");
        VirtualTime(t)
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    #[inline]
    pub fn min(self, other: Self) -> Self {
        if other < self {
            other
        } else {
            self
        }
    }

    #[inline]
    pub fn max(self, other: Self) -> Self {
        if other > self {
            other
        } else {
            self
        }
    }

    /// Encode as a totally ordered `u64` so the value can live in an
    /// `AtomicU64` (used for shared LVT publication and atomic min-reduce).
    ///
    /// For non-negative finite floats and `+inf`, the IEEE-754 bit pattern
    /// interpreted as an unsigned integer is monotone in the float value, so
    /// `a <= b  <=>  a.to_bits() <= b.to_bits()`.
    #[inline]
    pub fn to_ordered_bits(self) -> u64 {
        self.0.to_bits()
    }

    /// Inverse of [`Self::to_ordered_bits`].
    #[inline]
    pub fn from_ordered_bits(bits: u64) -> Self {
        let t = f64::from_bits(bits);
        debug_assert!(!t.is_nan() && t >= 0.0);
        VirtualTime(t)
    }
}

impl Eq for VirtualTime {}

impl std::hash::Hash for VirtualTime {
    /// Hash of the ordered bit pattern; consistent with `Eq` because
    /// construction forbids `NaN` and negative values (so `-0.0`, the one
    /// value with two representations, cannot occur alongside `0.0`).
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.to_ordered_bits().hash(state);
    }
}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for VirtualTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: construction forbids NaN.
        self.0.partial_cmp(&other.0).expect("VirtualTime is never NaN")
    }
}

impl Add<f64> for VirtualTime {
    type Output = VirtualTime;
    #[inline]
    fn add(self, rhs: f64) -> VirtualTime {
        VirtualTime::new(self.0 + rhs)
    }
}

impl fmt::Debug for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vt({})", self.0)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Simulated wall-clock time in nanoseconds.
///
/// The virtual-cluster substrate charges every action (event processing,
/// message handling, lock waits, barrier waits) in `WallNs`; the scheduler
/// advances each actor's clock by the charges its step accrued. Committed
/// event *rates* reported by the harness are committed events divided by the
/// final `WallNs` horizon, in simulated seconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WallNs(pub u64);

impl WallNs {
    pub const ZERO: WallNs = WallNs(0);

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        WallNs(us * 1_000)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        WallNs(ms * 1_000_000)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    #[inline]
    pub fn saturating_sub(self, other: Self) -> Self {
        WallNs(self.0.saturating_sub(other.0))
    }

    #[inline]
    pub fn min(self, other: Self) -> Self {
        WallNs(self.0.min(other.0))
    }

    #[inline]
    pub fn max(self, other: Self) -> Self {
        WallNs(self.0.max(other.0))
    }
}

impl Add for WallNs {
    type Output = WallNs;
    #[inline]
    fn add(self, rhs: WallNs) -> WallNs {
        WallNs(self.0 + rhs.0)
    }
}

impl AddAssign for WallNs {
    #[inline]
    fn add_assign(&mut self, rhs: WallNs) {
        self.0 += rhs.0;
    }
}

impl Sub for WallNs {
    type Output = WallNs;
    #[inline]
    fn sub(self, rhs: WallNs) -> WallNs {
        WallNs(self.0 - rhs.0)
    }
}

impl fmt::Debug for WallNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for WallNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_time_orders_totally() {
        let a = VirtualTime::new(1.0);
        let b = VirtualTime::new(2.0);
        assert!(a < b);
        assert!(b < VirtualTime::INFINITY);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(VirtualTime::ZERO.as_f64(), 0.0);
    }

    #[test]
    #[should_panic]
    fn virtual_time_rejects_nan() {
        let _ = VirtualTime::new(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn virtual_time_rejects_negative() {
        let _ = VirtualTime::new(-1.0);
    }

    #[test]
    fn ordered_bits_roundtrip_and_monotone() {
        let ts = [0.0, 0.5, 1.0, 1.5, 100.25, 1e12, f64::INFINITY];
        for w in ts.windows(2) {
            let (a, b) = (VirtualTime::new(w[0]), VirtualTime::new(w[1]));
            assert!(a.to_ordered_bits() < b.to_ordered_bits());
            assert_eq!(VirtualTime::from_ordered_bits(a.to_ordered_bits()), a);
        }
        let inf = VirtualTime::INFINITY;
        assert_eq!(VirtualTime::from_ordered_bits(inf.to_ordered_bits()), inf);
    }

    #[test]
    fn wall_ns_arithmetic() {
        let a = WallNs::from_micros(3);
        let b = WallNs(500);
        assert_eq!((a + b).as_nanos(), 3_500);
        assert_eq!((a - b).as_nanos(), 2_500);
        assert_eq!(b.saturating_sub(a), WallNs::ZERO);
        assert_eq!(WallNs::from_millis(2).as_secs_f64(), 0.002);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 3_500);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn wall_ns_display_units() {
        assert_eq!(format!("{}", WallNs(12)), "12ns");
        assert_eq!(format!("{}", WallNs(1_500)), "1.500us");
        assert_eq!(format!("{}", WallNs(2_000_000)), "2.000ms");
        assert_eq!(format!("{}", WallNs(1_500_000_000)), "1.500s");
    }
}
