//! Fault-injection hook points.
//!
//! The virtual cluster is perturbed from the *outside*: the scheduler,
//! the network fabric and the MPI pumps each consult an optional
//! [`FaultInjector`] at the moments where real clusters degrade — when an
//! actor's step cost is charged (straggling nodes), when a message is
//! handed to a NIC (degraded links, dropped packets) and when an MPI
//! thread polls (stalled progress engines). Engine logic never branches on
//! faults; it only observes their timing consequences, which is what keeps
//! the sequential-equivalence oracle valid under every fault plan:
//! perturbations move *wall-clock* costs and delivery instants, never
//! virtual-time event content.
//!
//! The concrete injector lives in the `cagvt-fault` crate; this module
//! only defines the trait so every layer can hold a hook without a
//! dependency cycle. All hooks take `&self` and must be deterministic
//! under the serialized virtual scheduler: with an identical plan and an
//! identical call sequence they must return identical answers.

use crate::ids::{ActorId, NodeId};
use crate::time::WallNs;

/// The shaped cost of one message handed to a NIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkShape {
    /// NIC serialization (bandwidth term) actually charged.
    pub per_msg: WallNs,
    /// One-way wire latency actually charged.
    pub latency: WallNs,
    /// Additional delivery delay from loss recovery: a dropped message is
    /// modeled as `k` retransmit timeouts appended to its delivery instant,
    /// never as silent loss — the message still arrives exactly once, so
    /// Mattern's white-message conservation (every send is eventually
    /// received and counted) holds under every fault plan.
    pub retransmit_delay: WallNs,
}

impl LinkShape {
    /// The unperturbed shape.
    pub fn clean(per_msg: WallNs, latency: WallNs) -> Self {
        LinkShape { per_msg, latency, retransmit_delay: WallNs::ZERO }
    }
}

/// Aggregate fault activity of one run, folded into the run report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages that lost at least one transmission attempt.
    pub dropped_msgs: u64,
    /// Total retransmit attempts across all dropped messages.
    pub retransmits: u64,
    /// Total delivery delay injected by retransmit timeouts.
    pub retransmit_delay: WallNs,
    /// Actor steps whose cost was inflated by a straggle window.
    pub straggled_steps: u64,
    /// MPI pump invocations that hit a stall window.
    pub stalled_pumps: u64,
}

/// Injection hooks consulted by the execution and communication layers.
///
/// Every method has a no-op default, so an injector only overrides the
/// fault classes its plan contains.
pub trait FaultInjector: Send + Sync {
    /// Scale the wall-clock cost of one actor step (node straggle). Called
    /// by the virtual scheduler for every step of every actor.
    fn actor_cost(&self, actor: ActorId, now: WallNs, cost: WallNs) -> WallNs {
        let _ = (actor, now);
        cost
    }

    /// Shape one message handed to node `from`'s NIC toward `to` (link
    /// degradation and message drop with retransmit-timeout recovery).
    fn link(
        &self,
        from: NodeId,
        to: NodeId,
        now: WallNs,
        per_msg: WallNs,
        latency: WallNs,
    ) -> LinkShape {
        let _ = (from, to, now);
        LinkShape::clean(per_msg, latency)
    }

    /// Extra charge for one MPI pump invocation on `node` (MPI-thread
    /// stall).
    fn mpi_stall(&self, node: NodeId, now: WallNs) -> WallNs {
        let _ = (node, now);
        WallNs::ZERO
    }

    /// Aggregate activity so far (reported at run end).
    fn stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// The identity injector: useful as an explicit "no faults" value.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_identity() {
        let f = NoFaults;
        assert_eq!(f.actor_cost(ActorId(3), WallNs(10), WallNs(77)), WallNs(77));
        let shape = f.link(NodeId(0), NodeId(1), WallNs(5), WallNs(500), WallNs(30_000));
        assert_eq!(shape, LinkShape::clean(WallNs(500), WallNs(30_000)));
        assert_eq!(shape.retransmit_delay, WallNs::ZERO);
        assert_eq!(f.mpi_stall(NodeId(0), WallNs(9)), WallNs::ZERO);
        assert_eq!(f.stats(), FaultStats::default());
    }
}
