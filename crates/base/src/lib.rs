//! Foundation types shared by every crate in the CA-GVT stack.
//!
//! This crate is dependency-free and holds the vocabulary of the whole
//! system:
//!
//! * [`VirtualTime`] — the simulated *model* time that logical processes
//!   advance through (the thing GVT is computed over).
//! * [`WallNs`] — simulated *wall-clock* nanoseconds used by the virtual
//!   cluster substrate to account for compute and communication costs.
//! * Identifier newtypes ([`NodeId`], [`LaneId`], [`ActorId`], [`LpId`],
//!   [`EventId`]).
//! * [`rng`] — a small deterministic, snapshottable PCG generator. LP state
//!   embeds its generator so rollback restores the random stream exactly.
//! * [`stats`] — Welford mean/variance and simple accumulators used for the
//!   paper's efficiency / LVT-disparity metrics.
//! * [`Actor`] — the unit of execution both runtimes (virtual scheduler and
//!   OS threads) know how to drive.
//! * [`trace`] — the [`TraceSink`] observation hook and typed record
//!   vocabulary (the ring recorder and exporters live in `cagvt-trace`).
//! * [`metrics`] — the [`MetricsSink`] per-GVT-epoch observation hook and
//!   the [`MetricsEpoch`] record (the registry, exporters and health rules
//!   live in `cagvt-metrics`).

pub mod actor;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use actor::{Actor, StepOutcome, StepResult};
pub use fault::{FaultInjector, FaultStats, LinkShape, NoFaults};
pub use ids::{ActorId, EventId, LaneId, LpId, NodeId};
pub use metrics::{EpochMode, MetricsEpoch, MetricsSink, NullMetrics, SyncCause};
pub use rng::{Pcg32, SplitMix64};
pub use stats::Welford;
pub use time::{VirtualTime, WallNs};
pub use trace::{GvtPhaseKind, NullTrace, StderrSink, TraceRecord, TraceSink, Track};
