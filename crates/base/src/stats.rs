//! Statistics accumulators used by the engine's instrumentation.
//!
//! The paper reports committed event rate, efficiency, rollback counts, and
//! an "LVT disparity" metric: the standard deviation of worker LVTs sampled
//! at each GVT round, averaged over rounds. [`Welford`] provides the
//! numerically stable single-pass mean/variance behind these.

/// Welford's online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (the paper's disparity metric is a population
    /// std-dev over the worker LVTs of one round).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (Chan et al. parallel
    /// combination). Used when aggregating per-worker accumulators into a
    /// run report.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        *self = Welford { n, mean, m2 };
    }
}

/// Min/max/sum tracker for durations and counters.
#[derive(Clone, Copy, Debug)]
pub struct MinMaxSum {
    pub n: u64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
}

impl Default for MinMaxSum {
    fn default() -> Self {
        MinMaxSum { n: 0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0 }
    }
}

impl MinMaxSum {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    pub fn merge(&mut self, other: &MinMaxSum) {
        if other.n == 0 {
            return;
        }
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn welford_merge_equals_combined_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0 + 3.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let empty = Welford::new();
        let mut b = a;
        b.merge(&empty);
        assert!((b.mean() - 2.0).abs() < 1e-12);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c.count(), 2);
        assert!((c.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn minmaxsum_tracks_extremes() {
        let mut m = MinMaxSum::new();
        for x in [3.0, -1.0, 7.0, 2.0] {
            m.push(x);
        }
        assert_eq!(m.n, 4);
        assert_eq!(m.min, -1.0);
        assert_eq!(m.max, 7.0);
        assert!((m.mean() - 2.75).abs() < 1e-12);

        let mut other = MinMaxSum::new();
        other.push(100.0);
        m.merge(&other);
        assert_eq!(m.max, 100.0);
        assert_eq!(m.n, 5);
    }
}
