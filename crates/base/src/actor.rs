//! The actor abstraction both execution substrates drive.
//!
//! Every engine participant — a worker thread processing events, a dedicated
//! MPI thread pumping the network — is an [`Actor`]: a state machine whose
//! [`Actor::step`] performs one bounded unit of work and reports what it
//! cost in simulated wall-clock time.
//!
//! * The **virtual scheduler** (`cagvt-exec`) always steps the actor with
//!   the smallest virtual clock and advances that clock by the reported
//!   cost, producing the interleaving a real cluster would exhibit under
//!   those costs — deterministically, on any host.
//! * The **thread runtime** runs `loop {{ step() }}` on one OS thread per
//!   actor; there the reported cost is realized by actually spinning for
//!   the compute portion.
//!
//! Steps must be *non-blocking*: an actor that is waiting (for a message,
//! for a barrier) returns [`StepOutcome::Idle`] and will be polled again
//! later, with its clock advanced by an idle-poll cost. This polled style is
//! what lets the identical algorithm code run under both substrates.

use crate::ids::ActorId;
use crate::time::WallNs;

/// What a step accomplished.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// Useful work was done; poll again as soon as the clock allows.
    Progress,
    /// Nothing to do right now (empty queues, waiting at a barrier). The
    /// scheduler still re-polls, charging the idle-poll cost, because
    /// wake-up conditions are observed by polling shared state.
    Idle,
    /// The actor has observed global termination and will never make
    /// progress again.
    Done,
}

/// Result of one actor step.
#[derive(Clone, Copy, Debug)]
pub struct StepResult {
    /// Simulated wall-clock cost of the step. The virtual scheduler
    /// advances the actor's clock by `cost` (using a configured minimum for
    /// zero-cost idle polls so virtual time always advances).
    pub cost: WallNs,
    pub outcome: StepOutcome,
}

impl StepResult {
    #[inline]
    pub fn progress(cost: WallNs) -> Self {
        StepResult { cost, outcome: StepOutcome::Progress }
    }

    #[inline]
    pub fn idle(cost: WallNs) -> Self {
        StepResult { cost, outcome: StepOutcome::Idle }
    }

    #[inline]
    pub fn done() -> Self {
        StepResult { cost: WallNs::ZERO, outcome: StepOutcome::Done }
    }
}

/// A deterministic, non-blocking state machine driven by a scheduler.
pub trait Actor: Send {
    /// Dense global identifier; also the deterministic tie-break when two
    /// actors' clocks are equal under the virtual scheduler.
    fn id(&self) -> ActorId;

    /// Perform one bounded unit of work at simulated wall-clock `now`.
    fn step(&mut self, now: WallNs) -> StepResult;

    /// Human-readable label for traces and error messages.
    fn label(&self) -> String {
        format!("actor{}", self.id().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        id: ActorId,
        left: u32,
    }

    impl Actor for Counter {
        fn id(&self) -> ActorId {
            self.id
        }
        fn step(&mut self, _now: WallNs) -> StepResult {
            if self.left == 0 {
                return StepResult::done();
            }
            self.left -= 1;
            StepResult::progress(WallNs(10))
        }
    }

    #[test]
    fn step_results_carry_cost_and_outcome() {
        let mut a = Counter { id: ActorId(0), left: 2 };
        let r = a.step(WallNs::ZERO);
        assert_eq!(r.outcome, StepOutcome::Progress);
        assert_eq!(r.cost, WallNs(10));
        a.step(WallNs(10));
        assert_eq!(a.step(WallNs(20)).outcome, StepOutcome::Done);
        assert_eq!(a.label(), "actor0");
    }

    #[test]
    fn idle_constructor() {
        let r = StepResult::idle(WallNs(5));
        assert_eq!(r.outcome, StepOutcome::Idle);
        assert_eq!(r.cost, WallNs(5));
    }
}
