//! Deterministic, snapshottable random number generation.
//!
//! The optimistic engine requires that rolling an LP back restores its
//! random stream exactly: a re-executed event must draw the same numbers it
//! drew the first time. The engine achieves this by keeping the generator
//! *inside* the LP state snapshot, so the generator itself only needs to be
//! small, fast and `Clone`. [`Pcg32`] (PCG-XSH-RR 64/32) fits: 16 bytes of
//! state, good statistical quality, and a cheap `advance`/`rewind` via LCG
//! skip-ahead for tests.
//!
//! [`SplitMix64`] is used only for seeding: it decorrelates per-LP streams
//! derived from `(run_seed, lp_id)`.

/// SplitMix64 — seed scrambler (Steele et al., "Fast splittable
/// pseudorandom number generators").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

const PCG_MULT: u64 = 6364136223846793005;

/// PCG-XSH-RR 64/32: 64-bit LCG state, 32-bit output with xorshift+rotate.
///
/// ```
/// use cagvt_base::rng::Pcg32;
///
/// let mut rng = Pcg32::new(42, 7);
/// let snapshot = rng; // Copy: 16 bytes
/// let a: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
///
/// // Restoring the snapshot replays the identical stream — the property
/// // optimistic rollback depends on.
/// let mut replay = snapshot;
/// let b: Vec<u32> = (0..4).map(|_| replay.next_u32()).collect();
/// assert_eq!(a, b);
///
/// // And the generator can be stepped backwards.
/// replay.rewind(4);
/// assert_eq!(replay, snapshot);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; always odd.
    inc: u64,
}

impl Pcg32 {
    /// Create a generator for `(seed, stream)`. Distinct streams are
    /// statistically independent; the cluster builder derives one stream per
    /// LP.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
        let inc = (sm.next_u64() << 1) | 1;
        let mut rng = Pcg32 { state: sm.next_u64(), inc };
        // Standard PCG initialization: one step to mix the seed in.
        rng.state = rng.state.wrapping_add(inc);
        let _ = rng.next_u32();
        rng
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform in `[0, 1)` with 32 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.next_u32() as f64 * (1.0 / 4294967296.0)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift (slightly
    /// biased for huge bounds, irrelevant for model routing draws; the bias
    /// is < 2^-32).
    #[inline]
    pub fn next_bounded(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        ((self.next_u32() as u64 * bound as u64) >> 32) as u32
    }

    /// Exponential variate with the given mean (inverse-CDF method). Always
    /// finite and strictly positive.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // 1 - u in (0, 1]; ln of it is finite and <= 0.
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Jump the generator `delta` steps forward in O(log delta) (Brown's LCG
    /// skip-ahead). `rewind(n)` is `advance(2^64 - n)`.
    pub fn advance(&mut self, mut delta: u64) {
        let mut acc_mult: u64 = 1;
        let mut acc_plus: u64 = 0;
        let mut cur_mult = PCG_MULT;
        let mut cur_plus = self.inc;
        while delta > 0 {
            if delta & 1 == 1 {
                acc_mult = acc_mult.wrapping_mul(cur_mult);
                acc_plus = acc_plus.wrapping_mul(cur_mult).wrapping_add(cur_plus);
            }
            cur_plus = cur_mult.wrapping_add(1).wrapping_mul(cur_plus);
            cur_mult = cur_mult.wrapping_mul(cur_mult);
            delta >>= 1;
        }
        self.state = acc_mult.wrapping_mul(self.state).wrapping_add(acc_plus);
    }

    /// Step the generator backwards `delta` steps.
    pub fn rewind(&mut self, delta: u64) {
        self.advance(delta.wrapping_neg());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg32::new(7, 0);
        let mut b = Pcg32::new(7, 1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be decorrelated, got {same} collisions");
    }

    #[test]
    fn pcg_clone_restores_stream() {
        let mut rng = Pcg32::new(123, 9);
        for _ in 0..10 {
            rng.next_u32();
        }
        let snapshot = rng;
        let run1: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        let mut restored = snapshot;
        let run2: Vec<u32> = (0..32).map(|_| restored.next_u32()).collect();
        assert_eq!(run1, run2, "snapshot/restore must replay the stream");
    }

    #[test]
    fn advance_matches_stepping() {
        let mut a = Pcg32::new(5, 5);
        let mut b = a;
        for _ in 0..1000 {
            a.next_u32();
        }
        b.advance(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn rewind_inverts_advance() {
        let orig = Pcg32::new(99, 3);
        let mut rng = orig;
        for _ in 0..137 {
            rng.next_u32();
        }
        rng.rewind(137);
        assert_eq!(rng, orig);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg32::new(1, 1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_is_positive_finite_with_roughly_right_mean() {
        let mut rng = Pcg32::new(2, 2);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_exp(2.0);
            assert!(x.is_finite() && x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "sample mean {mean}");
    }

    #[test]
    fn bounded_covers_range_without_overflow() {
        let mut rng = Pcg32::new(3, 3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.next_bounded(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
