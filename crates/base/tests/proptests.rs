//! Property tests for the foundation types.

use cagvt_base::rng::{Pcg32, SplitMix64};
use cagvt_base::stats::Welford;
use cagvt_base::time::{VirtualTime, WallNs};
use proptest::prelude::*;

proptest! {
    /// `to_ordered_bits` is a strictly monotone embedding of virtual time
    /// into `u64`.
    #[test]
    fn ordered_bits_monotone(a in 0.0f64..1e18, b in 0.0f64..1e18) {
        let (ta, tb) = (VirtualTime::new(a), VirtualTime::new(b));
        prop_assert_eq!(ta.cmp(&tb), ta.to_ordered_bits().cmp(&tb.to_ordered_bits()));
        prop_assert_eq!(VirtualTime::from_ordered_bits(ta.to_ordered_bits()), ta);
    }

    /// advance(n) == n single steps; rewind inverts advance.
    #[test]
    fn pcg_skip_ahead(seed in any::<u64>(), stream in any::<u64>(), n in 0u64..5_000) {
        let mut stepped = Pcg32::new(seed, stream);
        let mut jumped = stepped;
        for _ in 0..n {
            stepped.next_u32();
        }
        jumped.advance(n);
        prop_assert_eq!(stepped, jumped);
        jumped.rewind(n);
        prop_assert_eq!(jumped, Pcg32::new(seed, stream));
    }

    /// Exponential draws are finite, positive, and uniform draws live in
    /// [0, 1).
    #[test]
    fn pcg_distribution_ranges(seed in any::<u64>(), mean in 0.01f64..100.0) {
        let mut rng = Pcg32::new(seed, 7);
        for _ in 0..100 {
            let e = rng.next_exp(mean);
            prop_assert!(e.is_finite() && e > 0.0);
            let u = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    /// bounded draws respect the bound and splitmix is a pure function of
    /// its seed.
    #[test]
    fn bounded_and_splitmix(seed in any::<u64>(), bound in 1u32..10_000) {
        let mut rng = Pcg32::new(seed, 3);
        for _ in 0..50 {
            prop_assert!(rng.next_bounded(bound) < bound);
        }
        let a = SplitMix64::new(seed).next_u64();
        let b = SplitMix64::new(seed).next_u64();
        prop_assert_eq!(a, b);
    }

    /// Welford matches the two-pass formulas on arbitrary data, and
    /// merging any split equals the whole.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..200), split in any::<u16>()) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() <= 1e-5 * (1.0 + var));

        let k = (split as usize) % xs.len();
        let (left, right) = xs.split_at(k);
        let mut a = Welford::new();
        let mut b = Welford::new();
        left.iter().for_each(|&x| a.push(x));
        right.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), w.count());
        prop_assert!((a.mean() - w.mean()).abs() <= 1e-6 * (1.0 + w.mean().abs()));
    }

    /// WallNs saturating subtraction never underflows and max/min agree
    /// with ordering.
    #[test]
    fn wall_ns_algebra(a in any::<u32>(), b in any::<u32>()) {
        let (wa, wb) = (WallNs(a as u64), WallNs(b as u64));
        // max = min + |a - b|, with |a - b| expressed via saturating subs.
        let abs_diff = wa.saturating_sub(wb) + wb.saturating_sub(wa);
        prop_assert_eq!(wa.max(wb), wa.min(wb) + abs_diff);
        prop_assert!(wa.max(wb) >= wa.min(wb));
        prop_assert_eq!((wa + wb).as_nanos(), a as u64 + b as u64);
    }
}
