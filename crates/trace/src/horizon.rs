//! Virtual-time-horizon statistics, à la Kolakowska–Novotny / Korniss.
//!
//! The *virtual time horizon* is the per-worker LVT profile
//! `{lvt_i(t)}`. Its **width** `max_i lvt_i − min_i lvt_i` and
//! **roughness** `sqrt((1/N) Σ_i (lvt_i − <lvt>)²)` measure how
//! desynchronized the optimistic computation is; its growth-rate relation
//! to the GVT gives a per-round **utilization** `Δgvt / Δ<lvt>` — the
//! fraction of horizon progress that is commit progress (1.0 = no wasted
//! optimism, as in a conservative/barrier scheme; small values = deep
//! speculation that fossil collection lags behind).
//!
//! Statistics are computed from the `Lvt` snapshot records that follow
//! each `GvtPublish` in a recorded stream.

use crate::ring::TraceEvent;
use cagvt_base::TraceRecord;
use std::fmt::Write as _;

/// Horizon profile of one GVT round snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundHorizon {
    pub round: u64,
    /// Simulated wall-clock instant of the snapshot.
    pub t_ns: u64,
    /// The GVT published for this round.
    pub gvt: f64,
    /// Mean of the finite per-worker LVTs.
    pub mean_lvt: f64,
    /// `max − min` of the finite per-worker LVTs.
    pub width: f64,
    /// Population standard deviation of the finite per-worker LVTs.
    pub roughness: f64,
    /// `Δgvt / Δmean_lvt` against the previous snapshot, clamped to
    /// `[0, 1]`; `None` for the first round or a stalled horizon.
    pub utilization: Option<f64>,
    /// Finite LVT samples in the snapshot.
    pub samples: u32,
}

/// Aggregate horizon statistics of one run.
#[derive(Clone, Debug, Default)]
pub struct HorizonStats {
    pub rounds: Vec<RoundHorizon>,
    /// Mean snapshot width across rounds.
    pub mean_width: f64,
    /// Mean snapshot roughness across rounds.
    pub mean_roughness: f64,
    /// Mean per-round utilization (over rounds where it is defined).
    pub mean_utilization: f64,
}

impl HorizonStats {
    /// Compute from a merged record stream (`TraceRecorder::snapshot`
    /// order): each `GvtPublish` opens a snapshot that collects the `Lvt`
    /// records following it.
    pub fn compute(events: &[TraceEvent]) -> HorizonStats {
        struct Open {
            round: u64,
            t_ns: u64,
            gvt: f64,
            lvts: Vec<f64>,
        }
        let mut open: Option<Open> = None;
        let mut rounds: Vec<RoundHorizon> = Vec::new();
        let close = |o: Option<Open>, rounds: &mut Vec<RoundHorizon>| {
            let Some(o) = o else { return };
            if o.lvts.is_empty() {
                return;
            }
            let n = o.lvts.len() as f64;
            let mean = o.lvts.iter().sum::<f64>() / n;
            let min = o.lvts.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = o.lvts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let var = o.lvts.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
            rounds.push(RoundHorizon {
                round: o.round,
                t_ns: o.t_ns,
                gvt: o.gvt,
                mean_lvt: mean,
                width: max - min,
                roughness: var.sqrt(),
                utilization: None,
                samples: o.lvts.len() as u32,
            });
        };
        for ev in events {
            match ev.rec {
                TraceRecord::GvtPublish { round, gvt } => {
                    close(open.take(), &mut rounds);
                    if gvt.is_finite() {
                        open =
                            Some(Open { round, t_ns: ev.t.0, gvt: gvt.as_f64(), lvts: Vec::new() });
                    }
                }
                TraceRecord::Lvt { lvt, .. } => {
                    if let Some(o) = open.as_mut() {
                        if lvt.is_finite() {
                            o.lvts.push(lvt.as_f64());
                        }
                    }
                }
                _ => {}
            }
        }
        close(open.take(), &mut rounds);

        // Per-round utilization against the previous snapshot.
        for i in 1..rounds.len() {
            let d_gvt = rounds[i].gvt - rounds[i - 1].gvt;
            let d_lvt = rounds[i].mean_lvt - rounds[i - 1].mean_lvt;
            if d_lvt > 0.0 && d_gvt >= 0.0 {
                rounds[i].utilization = Some((d_gvt / d_lvt).clamp(0.0, 1.0));
            }
        }

        let n = rounds.len() as f64;
        let (mut mw, mut mr) = (0.0, 0.0);
        let mut used = 0u32;
        let mut mu = 0.0;
        for r in &rounds {
            mw += r.width;
            mr += r.roughness;
            if let Some(u) = r.utilization {
                mu += u;
                used += 1;
            }
        }
        HorizonStats {
            rounds,
            mean_width: if n > 0.0 { mw / n } else { 0.0 },
            mean_roughness: if n > 0.0 { mr / n } else { 0.0 },
            mean_utilization: if used > 0 { mu / used as f64 } else { 0.0 },
        }
    }

    /// Per-round time series as tidy CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("round,t_ns,gvt,mean_lvt,width,roughness,utilization,samples\n");
        for r in &self.rounds {
            let util = r.utilization.map(|u| format!("{u:.6}")).unwrap_or_default();
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                r.round, r.t_ns, r.gvt, r.mean_lvt, r.width, r.roughness, util, r.samples
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::time::{VirtualTime, WallNs};

    fn publish(seq: u64, t: u64, round: u64, gvt: f64) -> TraceEvent {
        TraceEvent {
            seq,
            t: WallNs(t),
            rec: TraceRecord::GvtPublish { round, gvt: VirtualTime::new(gvt) },
        }
    }

    fn lvt(seq: u64, t: u64, worker: u32, v: f64) -> TraceEvent {
        TraceEvent { seq, t: WallNs(t), rec: TraceRecord::Lvt { worker, lvt: VirtualTime::new(v) } }
    }

    #[test]
    fn width_roughness_and_utilization() {
        let events = vec![
            publish(0, 100, 1, 1.0),
            lvt(1, 100, 0, 2.0),
            lvt(2, 100, 1, 4.0),
            publish(3, 200, 2, 2.0),
            lvt(4, 200, 0, 4.0),
            lvt(5, 200, 1, 6.0),
        ];
        let h = HorizonStats::compute(&events);
        assert_eq!(h.rounds.len(), 2);
        let r1 = h.rounds[0];
        assert_eq!(r1.width, 2.0);
        assert_eq!(r1.mean_lvt, 3.0);
        assert!((r1.roughness - 1.0).abs() < 1e-12, "pop std-dev of {{2,4}} is 1");
        assert_eq!(r1.utilization, None, "first round has no predecessor");
        let r2 = h.rounds[1];
        // Δgvt = 1, Δmean_lvt = 2 → utilization 0.5.
        assert_eq!(r2.utilization, Some(0.5));
        assert_eq!(h.mean_width, 2.0);
        assert_eq!(h.mean_utilization, 0.5);
    }

    #[test]
    fn infinite_samples_are_ignored() {
        let events = vec![
            publish(0, 10, 1, 0.5),
            lvt(1, 10, 0, 1.0),
            TraceEvent {
                seq: 2,
                t: WallNs(10),
                rec: TraceRecord::Lvt { worker: 1, lvt: VirtualTime::INFINITY },
            },
        ];
        let h = HorizonStats::compute(&events);
        assert_eq!(h.rounds.len(), 1);
        assert_eq!(h.rounds[0].samples, 1);
        assert_eq!(h.rounds[0].width, 0.0);
    }

    #[test]
    fn empty_stream_yields_empty_stats() {
        let h = HorizonStats::compute(&[]);
        assert!(h.rounds.is_empty());
        assert_eq!(h.mean_width, 0.0);
        assert_eq!(h.to_csv().lines().count(), 1, "header only");
    }

    #[test]
    fn csv_rows_match_rounds() {
        let events = vec![
            publish(0, 1, 1, 0.0),
            lvt(1, 1, 0, 1.0),
            publish(2, 2, 2, 0.5),
            lvt(3, 2, 0, 2.0),
        ];
        let h = HorizonStats::compute(&events);
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 1 + h.rounds.len());
        assert!(csv.starts_with("round,t_ns,"));
    }
}
