//! Chrome trace-event JSON exporter (Perfetto-loadable).
//!
//! Layout: each virtual node is a *process* (`pid` = node index) whose
//! *threads* are its workers (`tid` = lane) and its MPI actor (`tid` =
//! workers-per-node); one extra process (`pid` = node count) carries the
//! cluster-global track (GVT publications). GVT rounds are stitched across
//! tracks with flow events (`ph: s/t/f`, `id` = round), phase transitions
//! are thread-scoped instants, queue depths and LVTs are counter series,
//! and event-processing / barrier-wait stretches are complete spans
//! (`ph: X`).
//!
//! Timestamps: the trace-event format counts in microseconds; records are
//! stamped in simulated wall-clock nanoseconds, exported as `ns/1000` with
//! three decimals so the JSON is byte-deterministic for a deterministic
//! record stream.

use crate::ring::TraceEvent;
use cagvt_base::{GvtPhaseKind, TraceRecord, Track};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Cluster shape the exporter needs to label tracks.
#[derive(Clone, Copy, Debug)]
pub struct TraceMeta {
    pub nodes: u16,
    pub workers_per_node: u16,
}

impl TraceMeta {
    fn pid_tid(&self, track: Track) -> (u32, u32) {
        let wpn = self.workers_per_node as u32;
        match track {
            Track::Worker(w) => (w / wpn, w % wpn),
            Track::Mpi(n) => (n as u32, wpn),
            Track::Global => (self.nodes as u32, 0),
        }
    }
}

fn ts(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn f64_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Infinity literal; clamp (only reachable if a caller
        // records a non-finite virtual time, which the engine filters).
        format!("{}", f64::MAX)
    }
}

struct Out {
    buf: String,
    first: bool,
}

impl Out {
    fn new() -> Self {
        Out { buf: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"), first: true }
    }

    /// Append one pre-rendered JSON object.
    fn push(&mut self, obj: String) {
        if !self.first {
            self.buf.push_str(",\n");
        }
        self.first = false;
        self.buf.push_str(&obj);
    }

    fn finish(mut self) -> String {
        self.buf.push_str("\n]}\n");
        self.buf
    }
}

fn meta_event(name: &str, pid: u32, tid: u32, value: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{value}\"}}}}"
    )
}

/// Render a merged record stream (from `TraceRecorder::snapshot`) as a
/// Chrome trace-event JSON document.
pub fn chrome_trace(meta: &TraceMeta, events: &[TraceEvent]) -> String {
    let mut out = Out::new();
    let wpn = meta.workers_per_node as u32;

    // Track naming metadata: one process per node plus the cluster track.
    for n in 0..meta.nodes as u32 {
        out.push(meta_event("process_name", n, 0, &format!("node{n}")));
        for lane in 0..wpn {
            out.push(meta_event("thread_name", n, lane, &format!("worker@{n}.{lane}")));
        }
        out.push(meta_event("thread_name", n, wpn, &format!("mpi@{n}")));
    }
    out.push(meta_event("process_name", meta.nodes as u32, 0, "cluster"));
    out.push(meta_event("thread_name", meta.nodes as u32, 0, "gvt"));

    // Flow-event bookkeeping: the first phase record of a round starts the
    // flow ("s"), the publish finishes it ("f"), everything between steps
    // it ("t").
    let mut rounds_seen: BTreeSet<u64> = BTreeSet::new();

    for ev in events {
        let (pid, tid) = meta.pid_tid(ev.rec.track());
        let t = ts(ev.t.0);
        match ev.rec {
            TraceRecord::EventSpan { id, dst, vt, dur, .. } => out.push(format!(
                "{{\"ph\":\"X\",\"name\":\"event\",\"cat\":\"lp\",\"pid\":{pid},\"tid\":{tid},\
                 \"ts\":{t},\"dur\":{dur},\"args\":{{\"id\":\"{id}\",\"lp\":\"{dst}\",\
                 \"vt\":{vt}}}}}",
                dur = ts(dur.0),
                vt = f64_json(vt.as_f64()),
            )),
            TraceRecord::BarrierWait { dur, .. } => out.push(format!(
                "{{\"ph\":\"X\",\"name\":\"barrier-wait\",\"cat\":\"gvt\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{t},\"dur\":{dur}}}",
                dur = ts(dur.0),
            )),
            TraceRecord::MsgSend { id, dst, vt, anti, remote, .. } => out.push(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"send\",\"cat\":\"msg\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{t},\"args\":{{\"id\":\"{id}\",\"dst\":\"{dst}\",\
                 \"vt\":{vt},\"anti\":{anti},\"remote\":{remote}}}}}",
                vt = f64_json(vt.as_f64()),
            )),
            TraceRecord::MsgRecv { id, vt, anti, .. } => out.push(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"recv\",\"cat\":\"msg\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{t},\"args\":{{\"id\":\"{id}\",\"vt\":{vt},\
                 \"anti\":{anti}}}}}",
                vt = f64_json(vt.as_f64()),
            )),
            TraceRecord::Reenqueue { id, vt, .. } | TraceRecord::AntiDeferred { id, vt, .. } => out
                .push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{name}\",\"cat\":\"msg\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{t},\"args\":{{\"id\":\"{id}\",\
                     \"vt\":{vt}}}}}",
                    name = ev.rec.kind(),
                    vt = f64_json(vt.as_f64()),
                )),
            TraceRecord::Annihilate { id, pending, .. } => out.push(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"annihilate\",\"cat\":\"msg\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{t},\"args\":{{\"id\":\"{id}\",\
                 \"pending\":{pending}}}}}",
            )),
            TraceRecord::Rollback { undone, straggler, .. } => out.push(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"rollback\",\"cat\":\"lp\",\"pid\":{pid},\
                 \"tid\":{tid},\"ts\":{t},\"args\":{{\"undone\":{undone},\
                 \"straggler\":{straggler}}}}}",
            )),
            TraceRecord::GvtRound { round, phase, .. } => {
                out.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"gvt:{label}\",\"cat\":\"gvt\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{t},\"args\":{{\"round\":{round}}}}}",
                    label = phase.label(),
                ));
                let ph = if rounds_seen.insert(round) {
                    's'
                } else if phase == GvtPhaseKind::Publish {
                    'f'
                } else {
                    't'
                };
                let bp = if ph == 'f' { ",\"bp\":\"e\"" } else { "" };
                out.push(format!(
                    "{{\"ph\":\"{ph}\",\"name\":\"gvt-round\",\"cat\":\"gvt\",\"id\":{round},\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{t}{bp}}}",
                ));
            }
            TraceRecord::GvtPublish { round, gvt } => {
                out.push(format!(
                    "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"gvt-publish\",\"cat\":\"gvt\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{t},\"args\":{{\"round\":{round},\
                     \"gvt\":{gvt}}}}}",
                    gvt = f64_json(gvt.as_f64()),
                ));
                out.push(format!(
                    "{{\"ph\":\"C\",\"name\":\"gvt\",\"pid\":{pid},\"tid\":{tid},\"ts\":{t},\
                     \"args\":{{\"gvt\":{gvt}}}}}",
                    gvt = f64_json(gvt.as_f64()),
                ));
            }
            TraceRecord::MpiQueue { depth, inbound, .. } => out.push(format!(
                "{{\"ph\":\"C\",\"name\":\"{name}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{t},\
                 \"args\":{{\"depth\":{depth}}}}}",
                name = if inbound { "mpi-inbox" } else { "mpi-outbox" },
            )),
            TraceRecord::Lvt { worker, lvt } => out.push(format!(
                "{{\"ph\":\"C\",\"name\":\"lvt\",\"pid\":{pid},\"tid\":{tid},\"ts\":{t},\
                 \"args\":{{\"w{worker}\":{lvt}}}}}",
                lvt = f64_json(lvt.as_f64()),
            )),
            TraceRecord::ActorDone { actor } => out.push(format!(
                "{{\"ph\":\"i\",\"s\":\"g\",\"name\":\"actor-done\",\"cat\":\"sched\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{t},\"args\":{{\"actor\":{actor}}}}}",
            )),
        }
    }
    out.finish()
}

/// Tidy-CSV exporter: one record per row, stable column set.
pub fn csv_trace(events: &[TraceEvent]) -> String {
    let mut out = String::from("seq,t_ns,track,kind,round,phase,id,vt,dur_ns,value,tags\n");
    for ev in events {
        let track = match ev.rec.track() {
            Track::Worker(w) => format!("w{w}"),
            Track::Mpi(n) => format!("mpi{n}"),
            Track::Global => "global".to_string(),
        };
        let id = ev.rec.event_id().map(|i| i.to_string()).unwrap_or_default();
        let (round, phase, vt, dur, value, tags) = match ev.rec {
            TraceRecord::EventSpan { vt, dur, .. } => {
                (String::new(), "", fmt_vt(vt), dur.0.to_string(), String::new(), String::new())
            }
            TraceRecord::MsgSend { vt, anti, remote, .. } => (
                String::new(),
                "",
                fmt_vt(vt),
                String::new(),
                String::new(),
                tag_list(&[("anti", anti), ("remote", remote)]),
            ),
            TraceRecord::MsgRecv { vt, anti, .. } => (
                String::new(),
                "",
                fmt_vt(vt),
                String::new(),
                String::new(),
                tag_list(&[("anti", anti)]),
            ),
            TraceRecord::Reenqueue { vt, .. } | TraceRecord::AntiDeferred { vt, .. } => {
                (String::new(), "", fmt_vt(vt), String::new(), String::new(), String::new())
            }
            TraceRecord::Annihilate { pending, .. } => (
                String::new(),
                "",
                String::new(),
                String::new(),
                String::new(),
                tag_list(&[("pending", pending)]),
            ),
            TraceRecord::Rollback { undone, straggler, .. } => (
                String::new(),
                "",
                String::new(),
                String::new(),
                undone.to_string(),
                tag_list(&[("straggler", straggler)]),
            ),
            TraceRecord::GvtRound { round, phase, .. } => (
                round.to_string(),
                phase.label(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
            TraceRecord::GvtPublish { round, gvt } => (
                round.to_string(),
                "publish",
                fmt_vt(gvt),
                String::new(),
                String::new(),
                String::new(),
            ),
            TraceRecord::BarrierWait { dur, .. } => {
                (String::new(), "", String::new(), dur.0.to_string(), String::new(), String::new())
            }
            TraceRecord::MpiQueue { depth, inbound, .. } => (
                String::new(),
                "",
                String::new(),
                String::new(),
                depth.to_string(),
                tag_list(&[("inbound", inbound)]),
            ),
            TraceRecord::Lvt { lvt, .. } => {
                (String::new(), "", fmt_vt(lvt), String::new(), String::new(), String::new())
            }
            TraceRecord::ActorDone { actor } => {
                (String::new(), "", String::new(), String::new(), actor.to_string(), String::new())
            }
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{}",
            ev.seq,
            ev.t.0,
            track,
            ev.rec.kind(),
            round,
            phase,
            id,
            vt,
            dur,
            value,
            tags
        );
    }
    out
}

fn fmt_vt(vt: cagvt_base::VirtualTime) -> String {
    if vt.is_finite() {
        format!("{}", vt.as_f64())
    } else {
        "inf".to_string()
    }
}

fn tag_list(tags: &[(&str, bool)]) -> String {
    tags.iter().filter(|(_, on)| *on).map(|(n, _)| *n).collect::<Vec<_>>().join(";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::ids::{EventId, LpId};
    use cagvt_base::time::{VirtualTime, WallNs};

    fn sample_events() -> Vec<TraceEvent> {
        let id = EventId::new(LpId(4), 2);
        vec![
            TraceEvent {
                seq: 0,
                t: WallNs(1_500),
                rec: TraceRecord::GvtRound {
                    track: Track::Worker(0),
                    round: 1,
                    phase: GvtPhaseKind::RoundStart,
                },
            },
            TraceEvent {
                seq: 1,
                t: WallNs(2_000),
                rec: TraceRecord::EventSpan {
                    worker: 1,
                    id,
                    dst: LpId(9),
                    vt: VirtualTime::new(0.25),
                    dur: WallNs(750),
                },
            },
            TraceEvent {
                seq: 2,
                t: WallNs(2_500),
                rec: TraceRecord::MpiQueue { node: 1, depth: 4, inbound: false },
            },
            TraceEvent {
                seq: 3,
                t: WallNs(3_000),
                rec: TraceRecord::GvtRound {
                    track: Track::Mpi(0),
                    round: 1,
                    phase: GvtPhaseKind::Publish,
                },
            },
            TraceEvent {
                seq: 4,
                t: WallNs(3_000),
                rec: TraceRecord::GvtPublish { round: 1, gvt: VirtualTime::new(0.5) },
            },
        ]
    }

    #[test]
    fn chrome_export_is_valid_json_with_flows() {
        let meta = TraceMeta { nodes: 2, workers_per_node: 2 };
        let json = chrome_trace(&meta, &sample_events());
        let doc = serde_json::from_str(&json).expect("exporter output must be valid JSON");
        let evs = doc["traceEvents"].as_array().unwrap();
        // 2 nodes × (1 process + 2 workers + 1 mpi) + cluster process+thread
        // metadata, then the payload events.
        let phs: Vec<&str> = evs.iter().map(|e| e["ph"].as_str().unwrap()).collect();
        assert!(phs.contains(&"M") && phs.contains(&"X") && phs.contains(&"C"));
        assert!(phs.contains(&"s"), "first phase record starts the round flow");
        assert!(phs.contains(&"f"), "publish finishes the round flow");
        // Timestamps are µs strings with 3 decimals: 1500ns -> 1.5.
        let span = evs.iter().find(|e| e["ph"].as_str() == Some("X")).unwrap();
        assert_eq!(span["ts"].as_f64(), Some(2.0));
        assert_eq!(span["dur"].as_f64(), Some(0.75));
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let csv = csv_trace(&sample_events());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 5);
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
        }
        assert!(lines.iter().any(|l| l.contains("gvt-publish")));
    }
}
