//! `cagvt-trace` — the concrete observability layer behind the
//! [`TraceSink`](cagvt_base::TraceSink) hook defined in `cagvt-base`
//! (sibling of `FaultInjector`).
//!
//! * [`TraceRecorder`] — per-actor ring-buffer recorder with a global
//!   sequence number; deterministic under the virtual scheduler, safe (and
//!   low-contention) under `ThreadRuntime`.
//! * [`chrome_trace`] — Chrome trace-event JSON export, loadable in
//!   Perfetto (<https://ui.perfetto.dev>): nodes as processes, workers and
//!   MPI actors as threads, GVT rounds as flow events, queue depths and
//!   LVTs as counters.
//! * [`csv_trace`] — the same stream as tidy CSV for notebook analysis.
//! * [`HorizonStats`] — virtual-time-horizon statistics (width, roughness,
//!   per-round utilization) computed from the LVT snapshots in a trace.
//!
//! Recording charges no simulated wall-clock cost: the trace observes the
//! run, it never participates in it. The `tracing_never_perturbs` proptest
//! in the workspace root holds traced and untraced runs to bit-identical
//! results.

pub mod chrome;
pub mod horizon;
pub mod recorder;
pub mod ring;

pub use chrome::{chrome_trace, csv_trace, TraceMeta};
pub use horizon::{HorizonStats, RoundHorizon};
pub use recorder::{TraceRecorder, DEFAULT_RING_CAP};
pub use ring::{Ring, TraceEvent};
