//! The concrete [`TraceSink`]: per-actor rings behind a global sequence.

use crate::ring::{Ring, TraceEvent};
use cagvt_base::time::WallNs;
use cagvt_base::{TraceRecord, TraceSink, Track};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-track ring capacity: enough to keep a full small-run trace
/// and a meaningful tail of a large one.
pub const DEFAULT_RING_CAP: usize = 65_536;

/// Low-overhead trace recorder.
///
/// Each [`Track`] (worker, MPI actor, global) gets its own [`Ring`], so
/// under `ThreadRuntime` concurrent workers contend only on their own
/// ring's lock; a global `AtomicU64` sequence number gives every record a
/// total order, which [`TraceRecorder::snapshot`] uses to merge the rings
/// back into one stream. Under the serialized `VirtualScheduler` that
/// stream is bit-deterministic.
pub struct TraceRecorder {
    cap: usize,
    seq: AtomicU64,
    workers: RwLock<Vec<Arc<Mutex<Ring>>>>,
    mpi: RwLock<Vec<Arc<Mutex<Ring>>>>,
    global: Mutex<Ring>,
}

impl TraceRecorder {
    pub fn new() -> Arc<Self> {
        Self::with_capacity(DEFAULT_RING_CAP)
    }

    /// `cap` is the per-track ring capacity (flight-recorder: when a track
    /// overflows, its oldest records are dropped and counted).
    pub fn with_capacity(cap: usize) -> Arc<Self> {
        Arc::new(TraceRecorder {
            cap,
            seq: AtomicU64::new(0),
            workers: RwLock::new(Vec::new()),
            mpi: RwLock::new(Vec::new()),
            global: Mutex::new(Ring::new(cap)),
        })
    }

    fn ring(&self, group: &RwLock<Vec<Arc<Mutex<Ring>>>>, idx: usize) -> Arc<Mutex<Ring>> {
        if let Some(r) = group.read().get(idx) {
            return Arc::clone(r);
        }
        let mut w = group.write();
        while w.len() <= idx {
            w.push(Arc::new(Mutex::new(Ring::new(self.cap))));
        }
        Arc::clone(&w[idx])
    }

    /// All retained records merged across tracks, ordered by the global
    /// sequence number (i.e. recording order).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for r in self.workers.read().iter().chain(self.mpi.read().iter()) {
            out.extend(r.lock().iter().copied());
        }
        out.extend(self.global.lock().iter().copied());
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Exact total of records lost to ring wrap-around, across all tracks.
    pub fn dropped(&self) -> u64 {
        let mut n = 0;
        for r in self.workers.read().iter().chain(self.mpi.read().iter()) {
            n += r.lock().dropped();
        }
        n + self.global.lock().dropped()
    }

    /// Total records ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl TraceSink for TraceRecorder {
    fn record(&self, t: WallNs, rec: &TraceRecord) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = TraceEvent { seq, t, rec: *rec };
        match rec.track() {
            Track::Worker(w) => self.ring(&self.workers, w as usize).lock().push(ev),
            Track::Mpi(n) => self.ring(&self.mpi, n as usize).lock().push(ev),
            Track::Global => self.global.lock().push(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::ids::{EventId, LpId};
    use cagvt_base::time::VirtualTime;

    #[test]
    fn records_merge_in_recording_order() {
        let r = TraceRecorder::with_capacity(16);
        r.record(WallNs(5), &TraceRecord::Lvt { worker: 1, lvt: VirtualTime::new(1.0) });
        r.record(WallNs(6), &TraceRecord::MpiQueue { node: 0, depth: 3, inbound: false });
        r.record(WallNs(7), &TraceRecord::Lvt { worker: 0, lvt: VirtualTime::new(2.0) });
        r.record(WallNs(8), &TraceRecord::GvtPublish { round: 1, gvt: VirtualTime::new(0.5) });
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3], "merged stream follows the global sequence");
        assert_eq!(r.recorded(), 4);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn per_track_overflow_counts_exactly() {
        let r = TraceRecorder::with_capacity(2);
        for i in 0..5 {
            r.record(WallNs(i), &TraceRecord::Lvt { worker: 0, lvt: VirtualTime::new(i as f64) });
        }
        // A different track is unaffected by worker 0's overflow.
        r.record(WallNs(9), &TraceRecord::MpiQueue { node: 0, depth: 1, inbound: true });
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.recorded(), 6);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3, "2 retained worker records + 1 mpi record");
    }

    #[test]
    fn rings_grow_on_demand_per_track() {
        let r = TraceRecorder::with_capacity(8);
        let id = EventId::new(LpId(1), 0);
        r.record(WallNs(0), &TraceRecord::Annihilate { worker: 17, id, pending: false });
        r.record(WallNs(1), &TraceRecord::MpiQueue { node: 3, depth: 0, inbound: false });
        assert_eq!(r.workers.read().len(), 18);
        assert_eq!(r.mpi.read().len(), 4);
        assert_eq!(r.snapshot().len(), 2);
    }
}
