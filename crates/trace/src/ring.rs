//! Fixed-capacity flight-recorder ring for trace records.

use cagvt_base::time::WallNs;
use cagvt_base::TraceRecord;

/// One recorded observation: a global sequence number (total order across
/// all rings), its simulated wall-clock timestamp and the record itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    pub seq: u64,
    pub t: WallNs,
    pub rec: TraceRecord,
}

/// A bounded ring that keeps the *latest* `cap` records (flight-recorder
/// semantics): when full, each push overwrites the oldest record and the
/// dropped counter increments — exactly once per lost record.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest record (only meaningful once wrapped).
    head: usize,
    /// Records overwritten since creation.
    dropped: u64,
}

impl Ring {
    /// `cap` must be at least 1.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        Ring { buf: Vec::new(), cap, head: 0, dropped: 0 }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Exact count of records lost to wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent { seq, t: WallNs(seq * 10), rec: TraceRecord::ActorDone { actor: seq as u32 } }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Ring::new(4);
        for s in 0..3 {
            r.push(ev(s));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn wraps_keeping_latest_with_exact_drop_count() {
        let mut r = Ring::new(4);
        for s in 0..10 {
            r.push(ev(s));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6, "10 pushed into cap 4 drops exactly 6");
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "latest records retained, oldest first");
    }

    #[test]
    fn boundary_exactly_full_drops_nothing() {
        let mut r = Ring::new(3);
        for s in 0..3 {
            r.push(ev(s));
        }
        assert_eq!((r.len(), r.dropped()), (3, 0));
        r.push(ev(3));
        assert_eq!((r.len(), r.dropped()), (3, 1));
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut r = Ring::new(1);
        for s in 0..5 {
            r.push(ev(s));
        }
        assert_eq!((r.len(), r.dropped()), (1, 4));
        assert_eq!(r.iter().next().unwrap().seq, 4);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = Ring::new(0);
    }
}
