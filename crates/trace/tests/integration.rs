//! End-to-end tests of the tracing subsystem against real engine runs:
//! deterministic record streams under the virtual scheduler, and a
//! Perfetto/Chrome export of a 4-node communication-dominated PHOLD run
//! whose track and phase structure is verified through the JSON parser.

use cagvt_core::cluster::run_virtual_with;
use cagvt_core::{RunReport, SimConfig};
use cagvt_exec::VirtualConfig;
use cagvt_gvt::{make_bundle, GvtKind};
use cagvt_models::presets::comm_dominated;
use cagvt_trace::{chrome_trace, csv_trace, HorizonStats, TraceMeta, TraceRecorder};
use std::sync::Arc;

const NODES: u16 = 4;
const WPN: u16 = 4;

fn config(gvt_interval: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(NODES);
    cfg.spec = cagvt_net::ClusterSpec::new(NODES, WPN, cagvt_net::MpiMode::Dedicated);
    cfg.lps_per_worker = 8;
    cfg.end_time = 2.0;
    cfg.gvt_interval = gvt_interval;
    cfg.max_outstanding = 600;
    cfg.seed = 0x7ACE;
    cfg
}

fn traced_run_at(kind: GvtKind, gvt_interval: u64) -> (Arc<TraceRecorder>, RunReport) {
    let cfg = config(gvt_interval);
    let workload = comm_dominated(&cfg);
    let recorder = TraceRecorder::new();
    let model = Arc::new(workload.model.clone());
    let vcfg = VirtualConfig {
        trace: Some(recorder.clone() as Arc<dyn cagvt_base::TraceSink>),
        ..Default::default()
    };
    let report = run_virtual_with(model, cfg, vcfg, |shared| make_bundle(kind, shared));
    (recorder, report)
}

fn traced_run(kind: GvtKind) -> (Arc<TraceRecorder>, RunReport) {
    traced_run_at(kind, 25)
}

/// Two identical runs under the virtual scheduler must record the exact
/// same event stream: same order, same timestamps, same payloads.
#[test]
fn record_stream_is_deterministic() {
    let (a, ra) = traced_run(GvtKind::Mattern);
    let (b, rb) = traced_run(GvtKind::Mattern);
    assert_eq!(ra.state_fingerprint, rb.state_fingerprint);
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert!(!sa.is_empty());
    assert_eq!(sa, sb, "traced record streams diverged between identical runs");
    assert_eq!(a.dropped(), b.dropped());
}

/// The Chrome export of a 4-node COMM-PHOLD run must parse as JSON and
/// carry the expected structure: one named thread per worker, per MPI
/// actor and for the GVT track, spans, GVT phase instants and flow events.
#[test]
fn chrome_export_has_expected_track_and_phase_structure() {
    let (recorder, report) = traced_run(GvtKind::Barrier);
    assert!(report.completed);
    let events = recorder.snapshot();
    let json = chrome_trace(&TraceMeta { nodes: NODES, workers_per_node: WPN }, &events);
    let v = serde_json::from_str(&json).expect("chrome trace must be valid JSON");
    let evs = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!evs.is_empty());

    let mut threads = std::collections::BTreeSet::new();
    let mut spans = 0u64;
    let mut phases = std::collections::BTreeSet::new();
    let (mut flow_starts, mut flow_ends) = (0u64, 0u64);
    for e in evs {
        match e["ph"].as_str().expect("ph") {
            "M" if e["name"].as_str() == Some("thread_name") => {
                threads.insert(e["args"]["name"].as_str().expect("thread name").to_string());
            }
            "X" => spans += 1,
            "i" => {
                if let Some(name) = e["name"].as_str() {
                    if let Some(label) = name.strip_prefix("gvt:") {
                        phases.insert(label.to_string());
                    }
                }
            }
            "s" => flow_starts += 1,
            "f" => flow_ends += 1,
            _ => {}
        }
    }
    // Tracks: every worker lane, every MPI actor, and the global GVT line.
    for n in 0..NODES {
        for l in 0..WPN {
            assert!(threads.contains(&format!("worker@{n}.{l}")), "missing worker@{n}.{l}");
        }
        assert!(threads.contains(&format!("mpi@{n}")), "missing mpi@{n}");
    }
    assert!(threads.contains("gvt"), "missing global gvt track");
    assert!(spans > 0, "no event-processing spans exported");
    // Barrier rounds go through enter -> sum -> exit -> publish.
    for label in ["barrier-enter", "sum-pass", "barrier-exit", "publish"] {
        assert!(phases.contains(label), "missing gvt phase instant {label}");
    }
    assert!(flow_starts > 0, "rounds must open flow events");
    assert!(flow_ends > 0, "published rounds must close flow events");
    assert!(flow_ends <= flow_starts);
}

/// Horizon statistics derived from the trace must cover the run's rounds
/// and stay internally consistent with the CSV exporter.
#[test]
fn horizon_statistics_cover_published_rounds() {
    // A short round interval forces several finite mid-run publications
    // (a drained run's final publish is infinite and carries no horizon).
    let (recorder, report) = traced_run_at(GvtKind::Mattern, 5);
    let events = recorder.snapshot();
    let stats = HorizonStats::compute(&events);
    assert!(!stats.rounds.is_empty(), "no horizon snapshots recorded");
    assert!(
        stats.rounds.len() as u64 <= report.gvt_rounds,
        "{} horizon rounds vs {} gvt rounds",
        stats.rounds.len(),
        report.gvt_rounds
    );
    for r in &stats.rounds {
        assert!(r.width >= 0.0 && r.roughness >= 0.0);
        if let Some(u) = r.utilization {
            assert!((0.0..=1.0).contains(&u));
        }
    }
    let csv = stats.to_csv();
    assert_eq!(csv.lines().count(), stats.rounds.len() + 1);
    // The tidy record CSV matches its header width on every line.
    let records = csv_trace(&events);
    let mut lines = records.lines();
    let width = lines.next().expect("header").split(',').count();
    for l in lines.take(50) {
        assert_eq!(l.split(',').count(), width, "ragged csv line: {l}");
    }
}
