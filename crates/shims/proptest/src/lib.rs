//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest's API its tests actually use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute;
//! * [`Strategy`] implemented for ranges, tuples, [`strategy::Just`],
//!   [`strategy::Union`] (via [`prop_oneof!`]), [`strategy::Map`]
//!   (via `prop_map`) and [`collection::vec`];
//! * `any::<T>()` for the primitive integers and `bool`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, chosen for simplicity: no shrinking
//! (a failing case reports its case index and RNG seed instead of a
//! minimized input) and no failure persistence. Case generation is fully
//! deterministic: the RNG seed is derived from the test's module path and
//! name, so a failure reproduces on every run until the test changes.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirror of real proptest's `prop` prelude alias: lets tests write
/// `prop::collection::vec(..)`.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Per-block configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; this shim never rejects.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 1024 }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                for case in 0..config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed (rng seed {:#018x}; \
                             no shrinking in this offline shim)",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// `prop_oneof![a, b, c]`: choose uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
