//! Deterministic case-generation RNG (SplitMix64).

/// Derive a stable 64-bit seed from a test's fully qualified name (FNV-1a,
/// then one SplitMix64 scramble). Stable across runs and platforms, so a
/// reported failure reproduces exactly.
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix(h)
}

#[inline]
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generation RNG handed to strategies.
#[derive(Clone, Copy, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix(self.state)
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn rng_is_deterministic_and_in_range() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            b.next_f64();
            let v = a.next_below(13);
            assert!(v < 13);
            b.next_below(13);
        }
    }
}
