//! The [`Strategy`] trait and its core combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike real proptest there
/// is no value tree and no shrinking: `generate` draws one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a full-domain `any::<T>()` strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_ints {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128) + 1;
                if span > u64::MAX as u128 {
                    // Full u64/usize domain.
                    rng.next_u64() as $t
                } else {
                    lo + rng.next_below(span as u64) as $t
                }
            }
        }
    )*};
}
range_ints!(u8, u16, u32, u64, usize);

macro_rules! range_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) + 1;
                if span > u64::MAX as i128 {
                    rng.next_u64() as $t
                } else {
                    (lo as i128 + rng.next_below(span as u64) as i128) as $t
                }
            }
        }
    )*};
}
range_signed!(i8, i16, i32, i64, isize);

macro_rules! range_floats {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Rejection keeps the half-open bound exact despite
                // floating-point rounding at the top of the range.
                loop {
                    let v = self.start
                        + (rng.next_f64() as $t) * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}
range_floats!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0xDEAD_BEEF)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (5u16..=7).generate(&mut r);
            assert!((5..=7).contains(&w));
            let f = (-2.0f64..3.0).generate(&mut r);
            assert!((-2.0..3.0).contains(&f));
            let s = (-10i64..-2).generate(&mut r);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn map_union_and_tuples_compose() {
        let mut r = rng();
        let strat = crate::prop_oneof![Just(0u32), (1u32..5, 10u32..20).prop_map(|(a, b)| a + b),];
        let mut saw_zero = false;
        let mut saw_sum = false;
        for _ in 0..200 {
            match strat.generate(&mut r) {
                0 => saw_zero = true,
                v if (11..25).contains(&v) => saw_sum = true,
                v => panic!("impossible value {v}"),
            }
        }
        assert!(saw_zero && saw_sum, "both arms should be exercised");
    }

    #[test]
    fn full_domain_any_covers_extremes_eventually() {
        let mut r = rng();
        let mut top = 0u64;
        for _ in 0..64 {
            top = top.max(any::<u64>().generate(&mut r));
        }
        assert!(top > u64::MAX / 2, "full-domain draw looks truncated");
    }
}
