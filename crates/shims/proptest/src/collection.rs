//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        let strat = vec(0u32..5, 2..6);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
