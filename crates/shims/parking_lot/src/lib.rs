//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of parking_lot's API it actually uses: `Mutex`
//! and `RwLock` whose lock methods return guards directly instead of
//! `Result`s. Poisoning is deliberately ignored (parking_lot's locks do
//! not poison): a panic while holding a lock propagates through the test
//! harness anyway, and the engine never relies on observing poison.

use std::sync::{self, TryLockError};

/// A mutex with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
