//! Offline stand-in for `serde_json`, covering the subset this workspace
//! uses: parse a JSON document into an owned [`Value`] tree
//! ([`from_str`]), navigate it (`as_*` accessors and `Index`), and
//! serialize it back ([`to_string`]). There is no `serde` data model or
//! derive support — the real crate's `Value` API is what the tests need.
//!
//! The parser is strict JSON (RFC 8259): no trailing commas, no comments,
//! no `NaN`/`Infinity` literals. Numbers are stored as `f64`, which is
//! lossless for the integer ranges the exporters emit (|n| < 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// An owned JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup that tolerates non-objects (returns `None`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// `serde_json`-style indexing: missing members and non-objects yield
    /// `Value::Null` instead of panicking.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// A parse error with byte offset and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document. The full input must be consumed (trailing
/// whitespace allowed).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Serialize a value to compact JSON. Object members are emitted in key
/// order (the tree is a `BTreeMap`), so output is deterministic and
/// `from_str(to_string(v)) == v` for every finite tree.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            // JSON has no non-finite literals; mirror serde_json by
            // emitting null for them (they never appear in our exporters).
            if n.is_finite() {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(v, out);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, v)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { offset: self.i, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.b[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.i + 4 > self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = from_str(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_i64(), Some(-300));
        assert_eq!(v["b"].as_str(), Some("x\ny"));
        assert_eq!(v["c"].as_bool(), Some(true));
        assert!(v["d"].is_null());
        assert!(v["missing"].is_null());
        assert!(v["a"][99].is_null());
    }

    #[test]
    fn round_trips() {
        let src = r#"{"trace":[{"ph":"X","ts":1.5,"args":{"n":"a\"b"}},{"ph":"C"}],"u":"\u00e9"}"#;
        let v = from_str(src).unwrap();
        let s = to_string(&v);
        assert_eq!(from_str(&s).unwrap(), v);
        assert_eq!(v["u"].as_str(), Some("é"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"abc", "1.2.3", "[1] x", "\"\\q\""] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(to_string(&Value::Number(3.0)), "3");
        assert_eq!(to_string(&Value::Number(3.25)), "3.25");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }
}
