//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion's API its benches use: benchmark
//! groups, `bench_function`, `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery it runs each benchmark `sample_size` times and
//! prints the mean and minimum wall time — enough to eyeball regressions
//! without the dependency.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; all variants behave identically in
/// this shim (one setup per timed invocation, setup excluded from timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Times closures for one benchmark function.
pub struct Bencher {
    samples: u64,
    total: Duration,
    min: Duration,
    timed: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher { samples, total: Duration::ZERO, min: Duration::MAX, timed: 0 }
    }

    fn record(&mut self, d: Duration) {
        self.total += d;
        self.min = self.min.min(d);
        self.timed += 1;
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(routine());
            self.record(t0.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.record(t0.elapsed());
        }
    }
}

/// A named group of benchmark functions.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let mean = if b.timed > 0 { b.total / b.timed as u32 } else { Duration::ZERO };
        println!("{}/{}: mean {:?}, min {:?} over {} samples", self.name, id, mean, b.min, b.timed);
        let _ = &self.criterion;
        self
    }

    pub fn finish(&mut self) {}
}

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        let mut batched = 0;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 5u64, |x| batched += x, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(batched, 15);
    }
}
