//! Execution substrates for CA-GVT actors.
//!
//! The engine's workers and MPI threads are non-blocking state machines
//! ([`cagvt_base::Actor`]); this crate provides the two ways of driving
//! them:
//!
//! * [`VirtualScheduler`] — the reproduction substrate. Maintains one
//!   virtual wall-clock per actor and always steps the actor whose clock is
//!   smallest, advancing it by the step's reported cost. This yields the
//!   interleaving a real cluster would produce under the
//!   [`cagvt_net::CostModel`](../cagvt_net/spec/struct.CostModel.html)
//!   costs — deterministically, on a single host core, at any modeled
//!   cluster size.
//! * [`ThreadRuntime`] — one OS thread per actor, for running the library
//!   as an actual parallel simulator. Costs are *realized* by spinning the
//!   reported duration, so modeled delays (message latencies, lock holds)
//!   stay meaningful in real time.

pub mod clock;
pub mod thread_rt;
pub mod virtual_sched;

pub use clock::RealClock;
pub use thread_rt::{ThreadConfig, ThreadRuntime};
pub use virtual_sched::{VirtualConfig, VirtualRunStats, VirtualScheduler};
