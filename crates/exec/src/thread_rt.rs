//! Real OS-thread runtime.
//!
//! Runs the identical actor state machines on one thread each, which makes
//! the library usable as an actual parallel simulator on multicore hosts.
//! Modeled step costs are *realized* by spinning until the shared clock
//! passes `now + cost`, so the cost model's delays (EPG work, message
//! latencies) remain meaningful in real time. Tests and examples use small
//! topologies; the figure harness uses the virtual scheduler instead.

use cagvt_base::actor::{Actor, StepOutcome};
use cagvt_base::time::WallNs;
use std::sync::Arc;

use crate::clock::RealClock;

/// Tunables of the thread runtime.
#[derive(Clone, Copy, Debug)]
pub struct ThreadConfig {
    /// Spin out each step's modeled cost in real time. Disable to run the
    /// engine flat-out (useful for functional tests where only the event
    /// outcomes matter, not the timing).
    pub realize_costs: bool,
    /// Yield the OS thread after this many consecutive idle polls. Keeps
    /// oversubscribed hosts (more actors than cores) live.
    pub idle_polls_before_yield: u32,
    /// After this many consecutive yields (on top of the spin phase),
    /// escalate to sleeping `idle_sleep` per poll. Long-idle actors (a
    /// worker blocked on a barrier straggler, a drained model) stop
    /// burning their core; any message delivery ends the nap at the next
    /// poll.
    pub idle_yields_before_sleep: u32,
    /// Sleep length of the deepest backoff stage. Zero disables sleeping
    /// (the runtime then caps out at yielding, the pre-backoff behavior).
    pub idle_sleep: std::time::Duration,
    /// Abort the run if it exceeds this much real time.
    pub timeout: Option<std::time::Duration>,
}

impl Default for ThreadConfig {
    fn default() -> Self {
        ThreadConfig {
            realize_costs: true,
            idle_polls_before_yield: 64,
            idle_yields_before_sleep: 16,
            idle_sleep: std::time::Duration::from_micros(50),
            timeout: Some(std::time::Duration::from_secs(60)),
        }
    }
}

/// Statistics from a threaded run.
#[derive(Clone, Copy, Debug)]
pub struct ThreadRunStats {
    /// Real time from start until the last actor finished.
    pub elapsed: WallNs,
    pub steps: u64,
    pub completed: bool,
}

/// Drives actors on dedicated OS threads.
pub struct ThreadRuntime {
    cfg: ThreadConfig,
}

impl ThreadRuntime {
    pub fn new(cfg: ThreadConfig) -> Self {
        ThreadRuntime { cfg }
    }

    /// Run all actors to completion. Panics in actor threads propagate.
    pub fn run(&self, actors: Vec<Box<dyn Actor>>) -> ThreadRunStats {
        assert!(!actors.is_empty(), "no actors to run");
        let clock = Arc::new(RealClock::new());
        let cfg = self.cfg;
        let deadline = cfg.timeout.map(|d| WallNs(d.as_nanos() as u64));

        let mut total_steps = 0u64;
        let mut completed = true;
        std::thread::scope(|scope| {
            let handles: Vec<_> = actors
                .into_iter()
                .map(|mut actor| {
                    let clock = Arc::clone(&clock);
                    scope.spawn(move || {
                        let mut steps = 0u64;
                        let mut idle_streak = 0u32;
                        loop {
                            let now = clock.now();
                            if let Some(d) = deadline {
                                if now > d {
                                    return (steps, false);
                                }
                            }
                            let result = actor.step(now);
                            steps += 1;
                            match result.outcome {
                                StepOutcome::Done => return (steps, true),
                                StepOutcome::Progress => {
                                    idle_streak = 0;
                                    if cfg.realize_costs && result.cost > WallNs::ZERO {
                                        clock.spin_until(now + result.cost);
                                    }
                                }
                                StepOutcome::Idle => {
                                    // Escalating backoff: spin (latency-
                                    // critical handoffs), then yield (other
                                    // runnable actors), then sleep (idle
                                    // actors stop burning their core). Any
                                    // progress resets the streak.
                                    idle_streak = idle_streak.saturating_add(1);
                                    let yield_after = cfg.idle_polls_before_yield;
                                    let sleep_after =
                                        yield_after.saturating_add(cfg.idle_yields_before_sleep);
                                    if idle_streak < yield_after {
                                        std::hint::spin_loop();
                                    } else if idle_streak < sleep_after || cfg.idle_sleep.is_zero()
                                    {
                                        std::thread::yield_now();
                                    } else {
                                        std::thread::sleep(cfg.idle_sleep);
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                let (steps, ok) = h.join().expect("actor thread panicked");
                total_steps += steps;
                completed &= ok;
            }
        });

        ThreadRunStats { elapsed: clock.now(), steps: total_steps, completed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::actor::StepResult;
    use cagvt_base::ids::ActorId;
    use cagvt_net::Mailbox;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Passes a hop-counting token back and forth. The consumer of hop
    /// `max_hops` stops; the *sender* of hop `max_hops` also knows the
    /// exchange is over, so both sides terminate.
    struct PingPong {
        id: ActorId,
        rx: Arc<Mailbox<u64>>,
        tx: Arc<Mailbox<u64>>,
        max_hops: u64,
        serve_first: bool,
        finished: bool,
        sum: Arc<AtomicU64>,
    }

    impl Actor for PingPong {
        fn id(&self) -> ActorId {
            self.id
        }
        fn step(&mut self, now: WallNs) -> StepResult {
            if self.finished {
                return StepResult::done();
            }
            if self.serve_first {
                self.serve_first = false;
                self.tx.push(now, 1);
                return StepResult::progress(WallNs(100));
            }
            match self.rx.pop_ready(now) {
                Some(v) => {
                    self.sum.fetch_add(v, Ordering::Relaxed);
                    if v >= self.max_hops {
                        self.finished = true;
                    } else {
                        self.tx.push(now + WallNs(1_000), v + 1);
                        if v + 1 >= self.max_hops {
                            self.finished = true;
                        }
                    }
                    StepResult::progress(WallNs(100))
                }
                None => StepResult::idle(WallNs(50)),
            }
        }
    }

    #[test]
    fn ping_pong_across_threads() {
        let a_to_b = Arc::new(Mailbox::new());
        let b_to_a = Arc::new(Mailbox::new());
        let sum = Arc::new(AtomicU64::new(0));
        let max_hops = 39;
        let actors: Vec<Box<dyn Actor>> = vec![
            Box::new(PingPong {
                id: ActorId(0),
                rx: b_to_a.clone(),
                tx: a_to_b.clone(),
                max_hops,
                serve_first: true,
                finished: false,
                sum: sum.clone(),
            }),
            Box::new(PingPong {
                id: ActorId(1),
                rx: a_to_b.clone(),
                tx: b_to_a.clone(),
                max_hops,
                serve_first: false,
                finished: false,
                sum: sum.clone(),
            }),
        ];
        let cfg = ThreadConfig { realize_costs: false, ..Default::default() };
        let stats = ThreadRuntime::new(cfg).run(actors);
        assert!(stats.completed);
        // Every hop value 1..=max_hops was consumed exactly once.
        let expected: u64 = (1..=max_hops).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn timeout_prevents_hangs() {
        struct Stuck {
            id: ActorId,
        }
        impl Actor for Stuck {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, _now: WallNs) -> StepResult {
                StepResult::idle(WallNs(10))
            }
        }
        let cfg = ThreadConfig {
            timeout: Some(std::time::Duration::from_millis(50)),
            ..Default::default()
        };
        let stats = ThreadRuntime::new(cfg).run(vec![Box::new(Stuck { id: ActorId(0) })]);
        assert!(!stats.completed);
    }

    #[test]
    fn deep_idle_backoff_does_not_lose_wakeups() {
        // Consumer goes idle long enough to reach the sleep stage while the
        // producer dawdles; the message must still be consumed.
        struct SlowProducer {
            id: ActorId,
            tx: Arc<Mailbox<u64>>,
            polls: u32,
        }
        impl Actor for SlowProducer {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, now: WallNs) -> StepResult {
                if self.polls > 0 {
                    self.polls -= 1;
                    return StepResult::idle(WallNs(10));
                }
                self.tx.push(now, 7);
                StepResult::done()
            }
        }
        struct Consumer {
            id: ActorId,
            rx: Arc<Mailbox<u64>>,
            got: Arc<AtomicU64>,
        }
        impl Actor for Consumer {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, now: WallNs) -> StepResult {
                match self.rx.pop_ready(now) {
                    Some(v) => {
                        self.got.store(v, Ordering::Relaxed);
                        StepResult::done()
                    }
                    None => StepResult::idle(WallNs(10)),
                }
            }
        }
        let mb = Arc::new(Mailbox::new());
        let got = Arc::new(AtomicU64::new(0));
        let cfg = ThreadConfig {
            realize_costs: false,
            // Reach the sleep stage almost immediately.
            idle_polls_before_yield: 2,
            idle_yields_before_sleep: 2,
            idle_sleep: std::time::Duration::from_micros(200),
            timeout: Some(std::time::Duration::from_secs(10)),
        };
        let actors: Vec<Box<dyn Actor>> = vec![
            Box::new(Consumer { id: ActorId(0), rx: mb.clone(), got: got.clone() }),
            Box::new(SlowProducer { id: ActorId(1), tx: mb.clone(), polls: 10_000 }),
        ];
        let stats = ThreadRuntime::new(cfg).run(actors);
        assert!(stats.completed);
        assert_eq!(got.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn realized_costs_take_real_time() {
        struct Worker {
            id: ActorId,
            left: u32,
        }
        impl Actor for Worker {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, _now: WallNs) -> StepResult {
                if self.left == 0 {
                    return StepResult::done();
                }
                self.left -= 1;
                StepResult::progress(WallNs(100_000)) // 0.1 ms per step
            }
        }
        let stats = ThreadRuntime::new(ThreadConfig::default())
            .run(vec![Box::new(Worker { id: ActorId(0), left: 10 })]);
        assert!(stats.completed);
        assert!(stats.elapsed >= WallNs(1_000_000), "10 x 0.1ms must take >= 1ms");
    }
}
