//! Shared wall clock for the thread runtime.

use cagvt_base::time::WallNs;
use std::time::Instant;

/// Monotonic nanoseconds since runtime start, shared by all actor threads
/// so their `now` values are mutually coherent.
#[derive(Debug)]
pub struct RealClock {
    start: Instant,
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl RealClock {
    pub fn new() -> Self {
        RealClock { start: Instant::now() }
    }

    #[inline]
    pub fn now(&self) -> WallNs {
        WallNs(self.start.elapsed().as_nanos() as u64)
    }

    /// Busy-wait until the clock reaches `until`. Used to realize modeled
    /// step costs in real time.
    pub fn spin_until(&self, until: WallNs) {
        while self.now() < until {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn spin_until_reaches_target() {
        let c = RealClock::new();
        let target = c.now() + WallNs(200_000); // 0.2 ms
        c.spin_until(target);
        assert!(c.now() >= target);
    }
}
