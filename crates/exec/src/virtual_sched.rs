//! Deterministic virtual-cluster scheduler.

use cagvt_base::actor::{Actor, StepOutcome};
use cagvt_base::fault::FaultInjector;
use cagvt_base::ids::ActorId;
use cagvt_base::metrics::MetricsSink;
use cagvt_base::time::WallNs;
use cagvt_base::trace::{TraceRecord, TraceSink};
use std::cmp::Reverse;
use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Tunables of the virtual scheduler.
#[derive(Clone)]
pub struct VirtualConfig {
    /// Minimum clock advance for a step that reported zero cost. Keeps
    /// virtual time strictly advancing so idle polling cannot livelock the
    /// scheduler.
    pub min_advance: WallNs,
    /// Hard stop: abandon the run if any actor's clock would exceed this.
    /// `None` trusts the actors to terminate.
    pub horizon: Option<WallNs>,
    /// Hard stop on total step count (debugging aid).
    pub max_steps: Option<u64>,
    /// Fault injector consulted to scale each step's charged cost (node
    /// straggle). `None` runs the cluster clean.
    pub faults: Option<Arc<dyn FaultInjector>>,
    /// Trace sink observing the run (actor retirements here; the engine
    /// layers record through their own handles to the same sink). Purely
    /// observational: recording never changes a charged cost.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Per-GVT-epoch metrics sink (consumed by the engine's GVT core; the
    /// scheduler itself never consults it). Same observational contract as
    /// `trace`.
    pub metrics: Option<Arc<dyn MetricsSink>>,
}

impl Default for VirtualConfig {
    fn default() -> Self {
        VirtualConfig {
            min_advance: WallNs(50),
            horizon: None,
            max_steps: None,
            faults: None,
            trace: None,
            metrics: None,
        }
    }
}

impl std::fmt::Debug for VirtualConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualConfig")
            .field("min_advance", &self.min_advance)
            .field("horizon", &self.horizon)
            .field("max_steps", &self.max_steps)
            .field("faults", &self.faults.is_some())
            .field("trace", &self.trace.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

/// Outcome of a virtual run.
#[derive(Clone, Copy, Debug)]
pub struct VirtualRunStats {
    /// Wall-clock instant at which the last actor finished — the simulated
    /// makespan of the run.
    pub final_time: WallNs,
    /// Total actor steps executed.
    pub steps: u64,
    /// Steps that reported [`StepOutcome::Idle`].
    pub idle_steps: u64,
    /// False if the run was cut off by `horizon` or `max_steps`.
    pub completed: bool,
}

/// Drives a set of actors in virtual time.
///
/// Invariant: the actor stepped next is always the one with the minimum
/// clock (ties broken by [`ActorId`](cagvt_base::ActorId)), so all shared
/// state mutations happen in a globally ordered, reproducible sequence.
pub struct VirtualScheduler {
    cfg: VirtualConfig,
}

impl VirtualScheduler {
    pub fn new(cfg: VirtualConfig) -> Self {
        VirtualScheduler { cfg }
    }

    /// Run the actors to completion (all [`StepOutcome::Done`]) or until a
    /// safety valve triggers.
    pub fn run(&self, mut actors: Vec<Box<dyn Actor>>) -> VirtualRunStats {
        assert!(!actors.is_empty(), "no actors to schedule");
        // Heap of (clock, actor-id, slot) — min-first via Reverse.
        let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> =
            actors.iter().enumerate().map(|(slot, a)| Reverse((0u64, a.id().0, slot))).collect();

        let mut live = actors.len();
        let mut steps = 0u64;
        let mut idle_steps = 0u64;
        let mut final_time = WallNs::ZERO;
        let mut completed = true;

        while live > 0 {
            if let Some(max) = self.cfg.max_steps {
                if steps >= max {
                    completed = false;
                    break;
                }
            }
            let mut top = heap.peek_mut().expect("live > 0 implies non-empty heap");
            let Reverse((clock, id, slot)) = *top;
            let now = WallNs(clock);
            if let Some(horizon) = self.cfg.horizon {
                if now > horizon {
                    completed = false;
                    break;
                }
            }
            let result = actors[slot].step(now);
            steps += 1;
            match result.outcome {
                StepOutcome::Done => {
                    PeekMut::pop(top);
                    live -= 1;
                    final_time = final_time.max(now);
                    if let Some(tr) = &self.cfg.trace {
                        if tr.enabled() {
                            tr.record(now, &TraceRecord::ActorDone { actor: id });
                        }
                    }
                }
                outcome => {
                    if outcome == StepOutcome::Idle {
                        idle_steps += 1;
                    }
                    let cost = match &self.cfg.faults {
                        Some(f) => f.actor_cost(ActorId(id), now, result.cost),
                        None => result.cost,
                    };
                    let advance = cost.max(self.cfg.min_advance);
                    // Reposition in place: one sift-down on drop instead of
                    // a pop (sift-down) plus push (sift-up). When the
                    // actor's new clock is still the heap minimum — the
                    // common case for a worker streaming cheap events — the
                    // sift terminates at the root. The comparator is a
                    // total order over (clock, id, slot), so the step
                    // sequence is identical to the pop/push formulation.
                    *top = Reverse((clock + advance.0, id, slot));
                }
            }
        }

        VirtualRunStats { final_time, steps, idle_steps, completed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::actor::StepResult;
    use cagvt_base::ids::ActorId;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Appends (actor, step-time) to a shared trace; finishes after `n`
    /// steps of fixed cost.
    struct Tracer {
        id: ActorId,
        cost: WallNs,
        left: u32,
        trace: Arc<parking_lot::Mutex<Vec<(u32, u64)>>>,
    }

    impl Actor for Tracer {
        fn id(&self) -> ActorId {
            self.id
        }
        fn step(&mut self, now: WallNs) -> StepResult {
            if self.left == 0 {
                return StepResult::done();
            }
            self.left -= 1;
            self.trace.lock().push((self.id.0, now.0));
            StepResult::progress(self.cost)
        }
    }

    #[test]
    fn steps_lowest_clock_first() {
        let trace = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let actors: Vec<Box<dyn Actor>> = vec![
            Box::new(Tracer { id: ActorId(0), cost: WallNs(100), left: 3, trace: trace.clone() }),
            Box::new(Tracer { id: ActorId(1), cost: WallNs(30), left: 10, trace: trace.clone() }),
        ];
        let stats = VirtualScheduler::new(VirtualConfig::default()).run(actors);
        assert!(stats.completed);
        let t = trace.lock();
        // Times must be globally non-decreasing: min-clock-first scheduling.
        for w in t.windows(2) {
            assert!(w[0].1 <= w[1].1, "out of order: {:?}", *t);
        }
        // Actor 1 (cheap steps) runs several times between actor 0's steps.
        assert_eq!(t.iter().filter(|(id, _)| *id == 1).count(), 10);
    }

    #[test]
    fn ties_break_by_actor_id_deterministically() {
        let run = || {
            let trace = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let actors: Vec<Box<dyn Actor>> = (0..4)
                .map(|i| {
                    Box::new(Tracer {
                        id: ActorId(i),
                        cost: WallNs(10),
                        left: 5,
                        trace: trace.clone(),
                    }) as Box<dyn Actor>
                })
                .collect();
            VirtualScheduler::new(VirtualConfig::default()).run(actors);
            let t = trace.lock().clone();
            t
        };
        assert_eq!(run(), run(), "identical inputs must produce identical schedules");
    }

    #[test]
    fn zero_cost_steps_still_advance() {
        struct Zeno {
            id: ActorId,
            left: u32,
        }
        impl Actor for Zeno {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, _now: WallNs) -> StepResult {
                if self.left == 0 {
                    return StepResult::done();
                }
                self.left -= 1;
                StepResult::progress(WallNs::ZERO)
            }
        }
        let stats = VirtualScheduler::new(VirtualConfig::default())
            .run(vec![Box::new(Zeno { id: ActorId(0), left: 100 })]);
        assert!(stats.completed);
        // 100 zero-cost steps advanced by min_advance each.
        assert_eq!(stats.final_time, WallNs(100 * 50));
    }

    #[test]
    fn horizon_cuts_off_runaway_actors() {
        struct Forever {
            id: ActorId,
        }
        impl Actor for Forever {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, _now: WallNs) -> StepResult {
                StepResult::idle(WallNs(1_000))
            }
        }
        let cfg = VirtualConfig { horizon: Some(WallNs(100_000)), ..Default::default() };
        let stats = VirtualScheduler::new(cfg).run(vec![Box::new(Forever { id: ActorId(0) })]);
        assert!(!stats.completed);
        assert!(stats.idle_steps > 0);
    }

    #[test]
    fn max_steps_valve() {
        struct Forever {
            id: ActorId,
        }
        impl Actor for Forever {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, _now: WallNs) -> StepResult {
                StepResult::progress(WallNs(1))
            }
        }
        let cfg = VirtualConfig { max_steps: Some(500), ..Default::default() };
        let stats = VirtualScheduler::new(cfg).run(vec![Box::new(Forever { id: ActorId(0) })]);
        assert!(!stats.completed);
        assert_eq!(stats.steps, 500);
    }

    #[test]
    fn fault_injector_scales_charged_cost() {
        use cagvt_base::fault::FaultInjector;

        /// Doubles every step cost of actor 0; leaves others untouched.
        struct DoubleActorZero;
        impl FaultInjector for DoubleActorZero {
            fn actor_cost(&self, actor: ActorId, _now: WallNs, cost: WallNs) -> WallNs {
                if actor == ActorId(0) {
                    WallNs(cost.0 * 2)
                } else {
                    cost
                }
            }
        }

        let run = |faults: Option<Arc<dyn FaultInjector>>| {
            let trace = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let actors: Vec<Box<dyn Actor>> = vec![Box::new(Tracer {
                id: ActorId(0),
                cost: WallNs(100),
                left: 4,
                trace: trace.clone(),
            })];
            let cfg = VirtualConfig { faults, ..Default::default() };
            let stats = VirtualScheduler::new(cfg).run(actors);
            assert!(stats.completed);
            stats.final_time
        };
        // Clean: steps land at 0,100,200,300; done check at 400.
        assert_eq!(run(None), WallNs(400));
        // Straggled: each 100ns step is charged 200ns.
        assert_eq!(run(Some(Arc::new(DoubleActorZero))), WallNs(800));
    }

    #[test]
    fn message_passing_respects_deliver_times() {
        use cagvt_net::Mailbox;

        // Sender posts 10 messages spaced 1us apart in simulated time with
        // 5us propagation; receiver records the clock at which it observed
        // each. Observation must never precede deliver_at.
        struct Sender {
            id: ActorId,
            mb: Arc<Mailbox<u64>>,
            next: u32,
        }
        impl Actor for Sender {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, now: WallNs) -> StepResult {
                if self.next == 10 {
                    return StepResult::done();
                }
                let deliver_at = now + WallNs(5_000);
                self.mb.push(deliver_at, deliver_at.0);
                self.next += 1;
                StepResult::progress(WallNs(1_000))
            }
        }
        struct Receiver {
            id: ActorId,
            mb: Arc<Mailbox<u64>>,
            got: u32,
            violations: Arc<AtomicU64>,
        }
        impl Actor for Receiver {
            fn id(&self) -> ActorId {
                self.id
            }
            fn step(&mut self, now: WallNs) -> StepResult {
                if self.got == 10 {
                    return StepResult::done();
                }
                match self.mb.pop_ready(now) {
                    Some(deliver_at) => {
                        if now.0 < deliver_at {
                            self.violations.fetch_add(1, Ordering::Relaxed);
                        }
                        self.got += 1;
                        StepResult::progress(WallNs(200))
                    }
                    None => StepResult::idle(WallNs(100)),
                }
            }
        }

        let mb = Arc::new(Mailbox::new());
        let violations = Arc::new(AtomicU64::new(0));
        let actors: Vec<Box<dyn Actor>> = vec![
            Box::new(Sender { id: ActorId(0), mb: mb.clone(), next: 0 }),
            Box::new(Receiver {
                id: ActorId(1),
                mb: mb.clone(),
                got: 0,
                violations: violations.clone(),
            }),
        ];
        let stats = VirtualScheduler::new(VirtualConfig::default()).run(actors);
        assert!(stats.completed);
        assert_eq!(violations.load(Ordering::Relaxed), 0);
        assert!(mb.is_empty());
    }
}
