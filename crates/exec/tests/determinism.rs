//! Property tests for the virtual scheduler's determinism and ordering
//! guarantees.

use cagvt_base::actor::{Actor, StepResult};
use cagvt_base::ids::ActorId;
use cagvt_base::time::WallNs;
use cagvt_exec::{VirtualConfig, VirtualScheduler};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic pseudo-random actor: costs derived from a tiny LCG, and a
/// trace of (actor, time) appended to shared state.
struct Chaotic {
    id: ActorId,
    state: u64,
    steps_left: u32,
    trace: Arc<parking_lot::Mutex<Vec<(u32, u64)>>>,
    checksum: Arc<AtomicU64>,
}

impl Actor for Chaotic {
    fn id(&self) -> ActorId {
        self.id
    }
    fn step(&mut self, now: WallNs) -> StepResult {
        if self.steps_left == 0 {
            return StepResult::done();
        }
        self.steps_left -= 1;
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.trace.lock().push((self.id.0, now.as_nanos()));
        self.checksum.fetch_add(self.state ^ now.as_nanos(), Ordering::Relaxed);
        let cost = (self.state >> 33) % 5_000;
        if self.state.is_multiple_of(7) {
            StepResult::idle(WallNs(cost))
        } else {
            StepResult::progress(WallNs(cost))
        }
    }
}

fn run_once(seeds: &[u64], steps: u32) -> (Vec<(u32, u64)>, u64, u64) {
    let trace = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let checksum = Arc::new(AtomicU64::new(0));
    let actors: Vec<Box<dyn Actor>> = seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            Box::new(Chaotic {
                id: ActorId(i as u32),
                state: s,
                steps_left: steps,
                trace: Arc::clone(&trace),
                checksum: Arc::clone(&checksum),
            }) as Box<dyn Actor>
        })
        .collect();
    let stats = VirtualScheduler::new(VirtualConfig::default()).run(actors);
    let t = trace.lock().clone();
    (t, checksum.load(Ordering::Relaxed), stats.final_time.as_nanos())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Identical actor sets produce identical traces, checksums and
    /// makespans, and the trace is globally ordered by time.
    #[test]
    fn schedule_is_deterministic_and_ordered(
        seeds in prop::collection::vec(any::<u64>(), 1..12),
        steps in 1u32..200,
    ) {
        let (ta, ca, fa) = run_once(&seeds, steps);
        let (tb, cb, fb) = run_once(&seeds, steps);
        prop_assert_eq!(&ta, &tb);
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(fa, fb);
        for w in ta.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "time went backwards in the schedule");
        }
        // Every actor stepped exactly `steps` times.
        for (i, _) in seeds.iter().enumerate() {
            let n = ta.iter().filter(|(id, _)| *id == i as u32).count();
            prop_assert_eq!(n, steps as usize);
        }
    }
}
