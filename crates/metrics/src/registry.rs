//! The concrete [`MetricsSink`]: an in-memory epoch store with optional
//! per-epoch file exporters.
//!
//! Export discipline matches `cagvt-trace`'s sinks: everything is
//! file-based (no sockets — the build environment is offline and the
//! virtual cluster has no real network), writes happen inside the sink
//! call and are therefore virtual-time-neutral, and nothing ever flows
//! back into engine state. CSV and JSONL are appended one line per epoch;
//! the Prometheus exposition is a *snapshot* rewritten atomically-enough
//! (single `write`) each round so a textfile-collector-style scraper
//! always reads the latest epoch.

use cagvt_base::metrics::{barrier_label, MetricsEpoch, MetricsSink};
use cagvt_base::WallNs;
use parking_lot::Mutex;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::epoch_csv::{epoch_csv_header, epoch_csv_row, epoch_jsonl_row};
use crate::prometheus::prometheus_exposition;

#[derive(Debug, Default)]
struct Inner {
    epochs: Vec<MetricsEpoch>,
    csv: Option<fs::File>,
    jsonl: Option<fs::File>,
    prom_path: Option<PathBuf>,
}

/// In-memory metrics registry and exporter front-end. Construct, chain
/// `with_*` exporters, wrap in an `Arc` and hand it to the engine as its
/// `MetricsSink` (e.g. via `VirtualConfig::metrics`); read the recorded
/// series back with [`MetricsRegistry::epochs`] after the run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Labels stamped on every Prometheus sample (and the ticker prefix).
    labels: Vec<(String, String)>,
    ticker: bool,
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// In-memory-only registry (no exporters, no ticker).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a label stamped on every exported Prometheus sample
    /// (typically `algorithm`, `nodes`, `workers`, `workload`).
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// Append one tidy-CSV line per epoch to `path` (truncates and writes
    /// the header immediately).
    pub fn with_csv(self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", epoch_csv_header())?;
        self.inner.lock().csv = Some(f);
        Ok(self)
    }

    /// Append one JSON object per epoch to `path` (truncates).
    pub fn with_jsonl(self, path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = fs::File::create(path)?;
        self.inner.lock().jsonl = Some(f);
        Ok(self)
    }

    /// Rewrite a Prometheus text exposition of the latest epoch at `path`
    /// after every publication.
    pub fn with_prometheus(self, path: impl AsRef<Path>) -> Self {
        self.inner.lock().prom_path = Some(path.as_ref().to_path_buf());
        self
    }

    /// Print a one-line stderr ticker per epoch (off by default; for
    /// watching long harness runs live).
    pub fn with_ticker(mut self) -> Self {
        self.ticker = true;
        self
    }

    /// Snapshot of the recorded series so far.
    pub fn epochs(&self) -> Vec<MetricsEpoch> {
        self.inner.lock().epochs.clone()
    }

    /// Number of epochs recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().epochs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn ticker_line(&self, e: &MetricsEpoch) -> String {
        let who = self
            .labels
            .iter()
            .find(|(k, _)| k == "algorithm")
            .map(|(_, v)| v.as_str())
            .unwrap_or("run");
        format!(
            "[metrics {who}] round {:>4} gvt {:>10.3} eff {:.3} horizon {:.3} \
             mode {} barriers {} cause {}",
            e.round,
            e.gvt,
            e.efficiency_window,
            e.horizon_width,
            e.mode.label(),
            barrier_label(e.barriers),
            e.cause.label(),
        )
    }
}

impl MetricsSink for MetricsRegistry {
    fn on_epoch(&self, _t: WallNs, epoch: &MetricsEpoch) {
        let mut inner = self.inner.lock();
        inner.epochs.push(epoch.clone());
        // Export failures are swallowed: observation must never abort the
        // run it observes (same contract as the trace sinks).
        if let Some(f) = inner.csv.as_mut() {
            let _ = writeln!(f, "{}", epoch_csv_row(epoch));
        }
        if let Some(f) = inner.jsonl.as_mut() {
            let _ = writeln!(f, "{}", epoch_jsonl_row(epoch));
        }
        if let Some(path) = inner.prom_path.clone() {
            let _ = fs::write(path, prometheus_exposition(epoch, &self.labels));
        }
        drop(inner);
        if self.ticker {
            eprintln!("{}", self.ticker_line(epoch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prometheus::parse_exposition;
    use cagvt_base::metrics::{EpochMode, SyncCause, BARRIER_A};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "cagvt-metrics-registry-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn epoch(round: u64) -> MetricsEpoch {
        MetricsEpoch {
            round,
            t: WallNs(round * 100),
            gvt: round as f64 * 2.0,
            committed_delta: 10 * round,
            rolled_back_delta: round,
            efficiency_window: 0.9,
            worker_lag: vec![0.5, 1.5],
            mpi_queue_depths: vec![round],
            mpi_queue_max: round,
            mode: EpochMode::Sync,
            barriers: BARRIER_A,
            cause: SyncCause::Efficiency,
            ..MetricsEpoch::default()
        }
    }

    #[test]
    fn registry_records_epochs_in_order() {
        let reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        reg.on_epoch(WallNs(1), &epoch(1));
        reg.on_epoch(WallNs(2), &epoch(2));
        assert_eq!(reg.len(), 2);
        let es = reg.epochs();
        assert_eq!(es[0].round, 1);
        assert_eq!(es[1].round, 2);
        assert!(reg.enabled(), "a live registry reports enabled");
    }

    #[test]
    fn file_exporters_write_per_epoch() {
        let dir = scratch_dir();
        let csv_path = dir.join("epochs.csv");
        let jsonl_path = dir.join("epochs.jsonl");
        let prom_path = dir.join("latest.prom");
        let reg = MetricsRegistry::new()
            .with_label("algorithm", "ca-gvt")
            .with_csv(&csv_path)
            .unwrap()
            .with_jsonl(&jsonl_path)
            .unwrap()
            .with_prometheus(&prom_path);
        reg.on_epoch(WallNs(1), &epoch(1));
        reg.on_epoch(WallNs(2), &epoch(2));

        let csv = fs::read_to_string(&csv_path).unwrap();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 epochs: {csv}");
        assert_eq!(lines[0], epoch_csv_header());
        assert!(lines[2].starts_with("2,200,4,"), "row: {}", lines[2]);

        let jsonl = fs::read_to_string(&jsonl_path).unwrap();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.lines().nth(1).unwrap().contains("\"round\":2"));

        // The Prometheus file is a snapshot of the *latest* epoch only.
        let prom = fs::read_to_string(&prom_path).unwrap();
        let samples = parse_exposition(&prom).expect("snapshot must parse");
        let round = samples.iter().find(|s| s.name == "cagvt_gvt_round").unwrap();
        assert_eq!(round.value, 2.0);
        assert_eq!(round.label("algorithm"), Some("ca-gvt"));

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ticker_line_summarizes_the_controller_decision() {
        let reg = MetricsRegistry::new().with_label("algorithm", "ca-gvt").with_ticker();
        let line = reg.ticker_line(&epoch(7));
        assert!(line.contains("[metrics ca-gvt]"), "line: {line}");
        assert!(line.contains("mode sync"), "line: {line}");
        assert!(line.contains("cause efficiency"), "line: {line}");
    }
}
