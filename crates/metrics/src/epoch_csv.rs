//! Tidy CSV and JSON-lines formatting for [`MetricsEpoch`] records.
//!
//! One row per published GVT round; the vector-valued fields (per-worker
//! lags, per-node queue depths) are summarized in the CSV (the full
//! vectors are in the JSONL and Prometheus exports) so the CSV stays
//! schema-stable across cluster shapes and loads directly into notebook
//! tooling.

use cagvt_base::metrics::{barrier_label, MetricsEpoch};

/// Header matching [`epoch_csv_row`].
pub fn epoch_csv_header() -> &'static str {
    "round,t_ns,gvt,committed_delta,processed_delta,rolled_back_delta,rollbacks_delta,\
     antis_sent_delta,annihilated_delta,msgs_sent_delta,msgs_received_delta,\
     efficiency_window,efficiency_cum,finite_workers,horizon_width,horizon_roughness,\
     mean_lag,mpi_queue_max,mode,barriers,cause"
}

/// One CSV row (no trailing newline).
pub fn epoch_csv_row(e: &MetricsEpoch) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{},{:.6},{:.6},{:.6},{},{},{},{}",
        e.round,
        e.t.0,
        e.gvt,
        e.committed_delta,
        e.processed_delta,
        e.rolled_back_delta,
        e.rollbacks_delta,
        e.antis_sent_delta,
        e.annihilated_delta,
        e.msgs_sent_delta,
        e.msgs_received_delta,
        e.efficiency_window,
        e.efficiency_cum,
        e.finite_workers(),
        e.horizon_width,
        e.horizon_roughness,
        e.mean_lag,
        e.mpi_queue_max,
        e.mode.label(),
        barrier_label(e.barriers),
        e.cause.label(),
    )
}

/// One JSON-lines object (no trailing newline), carrying the full
/// per-worker and per-node vectors. `NaN` lags (idle workers) are encoded
/// as `null` to stay strict-JSON parseable.
pub fn epoch_jsonl_row(e: &MetricsEpoch) -> String {
    let lags: Vec<String> = e
        .worker_lag
        .iter()
        .map(|l| if l.is_finite() { format!("{l}") } else { "null".to_string() })
        .collect();
    let queues: Vec<String> = e.mpi_queue_depths.iter().map(|q| q.to_string()).collect();
    format!(
        "{{\"round\":{},\"t_ns\":{},\"gvt\":{},\"committed_delta\":{},\
         \"processed_delta\":{},\"rolled_back_delta\":{},\"rollbacks_delta\":{},\
         \"antis_sent_delta\":{},\"annihilated_delta\":{},\"msgs_sent_delta\":{},\
         \"msgs_received_delta\":{},\"efficiency_window\":{},\"efficiency_cum\":{},\
         \"horizon_width\":{},\"horizon_roughness\":{},\"mean_lag\":{},\
         \"worker_lag\":[{}],\"mpi_queue_depths\":[{}],\"mpi_queue_max\":{},\
         \"mode\":\"{}\",\"barriers\":\"{}\",\"cause\":\"{}\"}}",
        e.round,
        e.t.0,
        e.gvt,
        e.committed_delta,
        e.processed_delta,
        e.rolled_back_delta,
        e.rollbacks_delta,
        e.antis_sent_delta,
        e.annihilated_delta,
        e.msgs_sent_delta,
        e.msgs_received_delta,
        e.efficiency_window,
        e.efficiency_cum,
        e.horizon_width,
        e.horizon_roughness,
        if e.mean_lag.is_finite() { e.mean_lag } else { 0.0 },
        lags.join(","),
        queues.join(","),
        e.mpi_queue_max,
        e.mode.label(),
        barrier_label(e.barriers),
        e.cause.label(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::metrics::{EpochMode, SyncCause, BARRIER_A, BARRIER_B, BARRIER_C};
    use cagvt_base::WallNs;

    fn epoch() -> MetricsEpoch {
        MetricsEpoch {
            round: 3,
            t: WallNs(1_000),
            gvt: 12.5,
            committed_delta: 40,
            processed_delta: 100,
            rolled_back_delta: 60,
            rollbacks_delta: 7,
            antis_sent_delta: 5,
            annihilated_delta: 2,
            msgs_sent_delta: 30,
            msgs_received_delta: 28,
            efficiency_window: 0.4,
            efficiency_cum: 0.8,
            worker_lag: vec![0.5, f64::NAN, 2.0],
            horizon_width: 1.5,
            horizon_roughness: 0.75,
            mean_lag: 1.25,
            mpi_queue_depths: vec![3, 0],
            mpi_queue_max: 3,
            mode: EpochMode::Sync,
            barriers: BARRIER_A | BARRIER_B | BARRIER_C,
            cause: SyncCause::Efficiency,
        }
    }

    #[test]
    fn header_and_row_column_counts_match() {
        let header_cols = epoch_csv_header().split(',').count();
        let row_cols = epoch_csv_row(&epoch()).split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn row_carries_mode_barriers_and_cause_labels() {
        let row = epoch_csv_row(&epoch());
        assert!(row.ends_with("sync,A+B+C,efficiency"), "row: {row}");
        assert!(row.starts_with("3,1000,12.5,40,100,60,"), "row: {row}");
    }

    #[test]
    fn jsonl_encodes_nan_lag_as_null() {
        let line = epoch_jsonl_row(&epoch());
        assert!(line.contains("\"worker_lag\":[0.5,null,2]"), "line: {line}");
        assert!(line.contains("\"mpi_queue_depths\":[3,0]"), "line: {line}");
        assert!(line.contains("\"cause\":\"efficiency\""), "line: {line}");
    }
}
