//! Prometheus text exposition (version 0.0.4) for [`MetricsEpoch`]
//! snapshots, plus a strict parser for the same format.
//!
//! The registry rewrites one exposition file per GVT round, so any
//! file-scraping collector (node-exporter textfile collector, CI
//! validation) always sees the latest epoch. Everything is exported as a
//! gauge: epochs are snapshots of windowed state, not monotone counters.
//! The parser exists because the build environment has no registry access
//! — it is the shim-level validator the tests and the CI smoke step use
//! in place of a real scrape.

use cagvt_base::metrics::{barrier_label, EpochMode, MetricsEpoch};

/// One parsed sample line of an exposition.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl PromSample {
    /// Label value lookup.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn fmt_labels(base: &[(String, String)], extra: &[(&str, String)]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(base.len() + extra.len());
    for (k, v) in base {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    for (k, v) in extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn gauge(out: &mut String, name: &str, help: &str, lines: &[(String, f64)]) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
    for (labels, value) in lines {
        out.push_str(&format!("{name}{labels} {value}\n"));
    }
}

/// Render one epoch as a complete Prometheus text exposition. `labels`
/// (e.g. `algorithm`, `nodes`, `workers`) are attached to every sample.
pub fn prometheus_exposition(e: &MetricsEpoch, labels: &[(String, String)]) -> String {
    let base = |extra: &[(&str, String)]| fmt_labels(labels, extra);
    let plain = base(&[]);
    let mut out = String::new();

    let scalars: [(&str, &str, f64); 12] = [
        ("cagvt_gvt_round", "GVT round number of this snapshot.", e.round as f64),
        ("cagvt_gvt", "Published global virtual time.", e.gvt),
        ("cagvt_committed_delta", "Events committed during the epoch.", e.committed_delta as f64),
        (
            "cagvt_rolled_back_delta",
            "Events rolled back during the epoch.",
            e.rolled_back_delta as f64,
        ),
        ("cagvt_rollbacks_delta", "Rollback episodes during the epoch.", e.rollbacks_delta as f64),
        (
            "cagvt_antis_sent_delta",
            "Anti-messages sent during the epoch.",
            e.antis_sent_delta as f64,
        ),
        (
            "cagvt_efficiency_window",
            "Windowed efficiency committed/(committed+rolled_back).",
            e.efficiency_window,
        ),
        ("cagvt_efficiency_cum", "Cumulative run efficiency.", e.efficiency_cum),
        ("cagvt_horizon_width", "max-min spread of finite worker LVT lags.", e.horizon_width),
        (
            "cagvt_horizon_roughness",
            "Standard deviation of finite worker LVT lags.",
            e.horizon_roughness,
        ),
        (
            "cagvt_mpi_queue_max",
            "Deepest per-node MPI outbox at the publication.",
            e.mpi_queue_max as f64,
        ),
        (
            "cagvt_sync_barriers",
            "Conditional-barrier count the round passed through (0-3).",
            e.barriers.count_ones() as f64,
        ),
    ];
    for (name, help, value) in scalars {
        gauge(&mut out, name, help, &[(plain.clone(), value)]);
    }

    // Controller mode as a state set: exactly one series is 1.
    let mode_lines: Vec<(String, f64)> =
        [EpochMode::Uncontrolled, EpochMode::Async, EpochMode::Sync]
            .iter()
            .map(|m| {
                (base(&[("mode", m.label().to_string())]), if e.mode == *m { 1.0 } else { 0.0 })
            })
            .collect();
    gauge(&mut out, "cagvt_mode", "Controller mode of the round (state set).", &mode_lines);

    let cause_lines =
        vec![(base(&[("cause", e.cause.label().to_string())]), f64::from(e.cause.as_u8()))];
    gauge(
        &mut out,
        "cagvt_sync_cause",
        "Why the conditional barriers were armed (labelled; 0 = async round).",
        &cause_lines,
    );
    let barrier_lines =
        vec![(base(&[("barriers", barrier_label(e.barriers))]), f64::from(e.barriers))];
    gauge(&mut out, "cagvt_sync_barrier_mask", "Barrier bitmask A|B|C.", &barrier_lines);

    let lag_lines: Vec<(String, f64)> = e
        .worker_lag
        .iter()
        .enumerate()
        .filter(|(_, l)| l.is_finite())
        .map(|(w, l)| (base(&[("worker", w.to_string())]), *l))
        .collect();
    gauge(&mut out, "cagvt_worker_lag", "Per-worker LVT lag above GVT.", &lag_lines);

    let queue_lines: Vec<(String, f64)> = e
        .mpi_queue_depths
        .iter()
        .enumerate()
        .map(|(n, q)| (base(&[("node", n.to_string())]), *q as f64))
        .collect();
    gauge(&mut out, "cagvt_mpi_queue_depth", "Per-node MPI outbox occupancy.", &queue_lines);

    out
}

/// Parse a text exposition back into its samples. Comment (`#`) and blank
/// lines are skipped; any other malformed line is an error. This is the
/// validation half of the offline-shim discipline: CI parses what the
/// registry wrote instead of scraping it.
pub fn parse_exposition(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    let (head, value) = match line.rfind(' ') {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => return Err(format!("no value separator in {line:?}")),
    };
    let value: f64 = value.parse().map_err(|_| format!("bad value {value:?}"))?;
    let (name, labels) = match head.find('{') {
        None => (head.trim().to_string(), Vec::new()),
        Some(i) => {
            let name = head[..i].trim().to_string();
            let rest = head[i + 1..]
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in {head:?}"))?;
            (name, parse_labels(rest)?)
        }
    };
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(PromSample { name, labels, value })
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("missing '=' in labels {s:?}"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value in {s:?}"))?;
        // Scan for the closing quote, honoring backslash escapes.
        let mut value = String::new();
        let mut chars = after.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in {s:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {s:?}"))?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start_matches(',').trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagvt_base::metrics::{SyncCause, BARRIER_A, BARRIER_B, BARRIER_C};
    use cagvt_base::WallNs;

    fn labelled_epoch() -> (MetricsEpoch, Vec<(String, String)>) {
        let e = MetricsEpoch {
            round: 5,
            t: WallNs(2_000),
            gvt: 40.0,
            committed_delta: 90,
            rolled_back_delta: 10,
            efficiency_window: 0.9,
            efficiency_cum: 0.93,
            worker_lag: vec![0.0, 1.0, f64::NAN, 3.0],
            horizon_width: 3.0,
            horizon_roughness: 1.247,
            mean_lag: 4.0 / 3.0,
            mpi_queue_depths: vec![2, 7],
            mpi_queue_max: 7,
            mode: cagvt_base::metrics::EpochMode::Sync,
            barriers: BARRIER_A | BARRIER_B | BARRIER_C,
            cause: SyncCause::QueueDepth,
            ..MetricsEpoch::default()
        };
        let labels = vec![
            ("algorithm".to_string(), "ca-gvt".to_string()),
            ("nodes".to_string(), "2".into()),
        ];
        (e, labels)
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let (e, labels) = labelled_epoch();
        let text = prometheus_exposition(&e, &labels);
        let samples = parse_exposition(&text).expect("exposition must parse");
        assert!(!samples.is_empty());
        // Every sample carries the base labels.
        for s in &samples {
            assert_eq!(s.label("algorithm"), Some("ca-gvt"), "sample {s:?}");
            assert_eq!(s.label("nodes"), Some("2"));
        }
        let gvt = samples.iter().find(|s| s.name == "cagvt_gvt").unwrap();
        assert_eq!(gvt.value, 40.0);
        let sync = samples
            .iter()
            .find(|s| s.name == "cagvt_mode" && s.label("mode") == Some("sync"))
            .unwrap();
        assert_eq!(sync.value, 1.0);
        let cause = samples.iter().find(|s| s.name == "cagvt_sync_cause").unwrap();
        assert_eq!(cause.label("cause"), Some("queue-depth"));
        // NaN lag (worker 2) is omitted; the rest are present.
        let lags: Vec<_> = samples.iter().filter(|s| s.name == "cagvt_worker_lag").collect();
        assert_eq!(lags.len(), 3);
        assert!(lags.iter().all(|s| s.label("worker") != Some("2")));
        let queues: Vec<_> = samples.iter().filter(|s| s.name == "cagvt_mpi_queue_depth").collect();
        assert_eq!(queues.len(), 2);
        assert_eq!(queues[1].label("node"), Some("1"));
        assert_eq!(queues[1].value, 7.0);
    }

    #[test]
    fn label_escapes_survive_the_round_trip() {
        let (e, _) = labelled_epoch();
        let labels = vec![("workload".to_string(), "odd \"name\"\\with\nnoise".to_string())];
        let text = prometheus_exposition(&e, &labels);
        let samples = parse_exposition(&text).expect("escaped exposition must parse");
        assert_eq!(samples[0].label("workload"), Some("odd \"name\"\\with\nnoise"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("cagvt_gvt{algorithm=\"x\" 1.0").is_err());
        assert!(parse_exposition("cagvt_gvt one_point_zero").is_err());
        assert!(parse_exposition("cagvt gvt 1.0").is_err());
        assert!(parse_exposition("cagvt_gvt{algorithm=unquoted} 1.0").is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# HELP x y\n# TYPE x gauge\n\nx 1\n";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples, vec![PromSample { name: "x".into(), labels: vec![], value: 1.0 }]);
    }
}
