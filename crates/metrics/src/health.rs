//! Stream-health rules over the per-epoch metrics series.
//!
//! The monitor is fed one [`MetricsEpoch`] at a time (online — the bench
//! harness replays a registry's store after the run, a live deployment
//! could feed it per round) and accumulates [`Alert`]s:
//!
//! * **Straggler** — a worker whose LVT lag sits far *below* the cluster
//!   median for several consecutive epochs. Stragglers have *low* lag:
//!   the slowest worker's LVT anchors GVT, so its lag is pinned near zero
//!   while healthy workers run ahead. The rule uses a robust z-score
//!   (median / MAD) so that even a whole straggling node — a correlated
//!   minority of workers — stands out against the healthy majority, where
//!   a mean/σ z-score would be dragged toward the stragglers.
//! * **Efficiency collapse** — windowed efficiency below a threshold for
//!   several consecutive epochs (the regime where CA-GVT's conditional
//!   barriers are supposed to engage).
//! * **Mode flapping** — the CA-GVT controller oscillating sync↔async
//!   faster than the hysteresis window allows; persistent flapping means
//!   the threshold sits on top of the workload's natural efficiency.
//!
//! Each rule latches: it fires once per episode and re-arms only after
//! the condition clears, so a long degradation yields one alert, not one
//! per epoch. When a fault plan is active the harness tags the monitor
//! ([`HealthMonitor::set_fault_context`]) and every alert carries the
//! plan's signature, separating "injected" from "organic" degradation.

use cagvt_base::metrics::{EpochMode, MetricsEpoch};

/// What kind of condition an [`Alert`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AlertKind {
    Straggler,
    EfficiencyCollapse,
    ModeFlapping,
}

impl AlertKind {
    /// Stable lower-case label used in report output.
    pub fn label(self) -> &'static str {
        match self {
            AlertKind::Straggler => "straggler",
            AlertKind::EfficiencyCollapse => "efficiency-collapse",
            AlertKind::ModeFlapping => "mode-flapping",
        }
    }
}

/// One fired health rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    pub kind: AlertKind,
    /// GVT round at which the rule fired (condition may have started
    /// `persistence` epochs earlier).
    pub round: u64,
    /// Human-readable description, including the fault-plan signature
    /// when one is active.
    pub message: String,
}

impl Alert {
    /// `kind: message` line for `RunReport::health`.
    pub fn render(&self) -> String {
        format!("{}: {}", self.kind.label(), self.message)
    }
}

/// Tunables for [`HealthMonitor`]. Defaults are calibrated on the bench
/// workloads: conservative enough to stay quiet on clean runs, sharp
/// enough to flag a 4-6x node slowdown within a handful of GVT rounds.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Robust z-score below which a worker's lag counts as straggling
    /// (stragglers sit *below* the median — the test is one-sided).
    pub straggler_z: f64,
    /// Consecutive flagged epochs before a straggler alert fires.
    pub straggler_persistence: usize,
    /// Minimum finite-lag workers for the straggler rule to apply; with
    /// fewer samples the median/MAD statistics are meaningless.
    pub straggler_min_workers: usize,
    /// Windowed efficiency below this counts toward a collapse.
    pub collapse_threshold: f64,
    /// Consecutive low-efficiency epochs before a collapse alert fires.
    pub collapse_persistence: usize,
    /// Sliding window (epochs) over which sync/async flips are counted.
    pub flap_window: usize,
    /// Flips within the window that trigger a mode-flapping alert.
    pub flap_threshold: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            straggler_z: 4.0,
            straggler_persistence: 3,
            straggler_min_workers: 8,
            collapse_threshold: 0.5,
            collapse_persistence: 4,
            flap_window: 16,
            flap_threshold: 6,
        }
    }
}

/// Consistency constant turning a MAD into a σ-equivalent scale for
/// normally-distributed data.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Degenerate-spread guard: when the lag MAD is below this the cluster is
/// marching in lockstep and a z-score would divide by ~0.
const MIN_MAD: f64 = 1e-12;

/// Online health-rule evaluator; see the module docs for the rules.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    fault_context: Option<String>,
    alerts: Vec<Alert>,
    /// Per-worker consecutive low-z streaks (indexed by worker id).
    straggle_streak: Vec<usize>,
    /// Workers whose straggler alert is latched until they recover.
    straggle_latched: Vec<bool>,
    collapse_streak: usize,
    collapse_latched: bool,
    /// Recent controller modes, newest last, capped at `flap_window`.
    recent_modes: Vec<EpochMode>,
    flap_latched: bool,
}

impl HealthMonitor {
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            fault_context: None,
            alerts: Vec::new(),
            straggle_streak: Vec::new(),
            straggle_latched: Vec::new(),
            collapse_streak: 0,
            collapse_latched: false,
            recent_modes: Vec::new(),
            flap_latched: false,
        }
    }

    /// Tag every subsequent alert with an active fault plan's signature.
    pub fn set_fault_context(&mut self, context: impl Into<String>) {
        self.fault_context = Some(context.into());
    }

    /// Alerts fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// `render()`ed alert lines for `RunReport::health`.
    pub fn report_lines(&self) -> Vec<String> {
        self.alerts.iter().map(Alert::render).collect()
    }

    /// Evaluate one published epoch.
    pub fn observe(&mut self, e: &MetricsEpoch) {
        self.observe_stragglers(e);
        self.observe_collapse(e);
        self.observe_flapping(e);
    }

    /// Feed a whole recorded series (the post-run harness path).
    pub fn observe_all<'a>(&mut self, epochs: impl IntoIterator<Item = &'a MetricsEpoch>) {
        for e in epochs {
            self.observe(e);
        }
    }

    fn push_alert(&mut self, kind: AlertKind, round: u64, message: String) {
        let message = match &self.fault_context {
            Some(ctx) => format!("{message} [fault plan active: {ctx}]"),
            None => message,
        };
        self.alerts.push(Alert { kind, round, message });
    }

    fn observe_stragglers(&mut self, e: &MetricsEpoch) {
        if self.straggle_streak.len() < e.worker_lag.len() {
            self.straggle_streak.resize(e.worker_lag.len(), 0);
            self.straggle_latched.resize(e.worker_lag.len(), false);
        }
        let finite: Vec<f64> = e.worker_lag.iter().copied().filter(|l| l.is_finite()).collect();
        if finite.len() < self.cfg.straggler_min_workers {
            return;
        }
        let med = median(&finite);
        let mut abs_dev: Vec<f64> = finite.iter().map(|l| (l - med).abs()).collect();
        let mad = median_mut(&mut abs_dev);
        if mad < MIN_MAD {
            // Lockstep horizon: no spread to straggle against.
            for s in &mut self.straggle_streak {
                *s = 0;
            }
            return;
        }
        let scale = MAD_TO_SIGMA * mad;
        for (w, lag) in e.worker_lag.iter().enumerate() {
            let z = if lag.is_finite() { (lag - med) / scale } else { 0.0 };
            if z < -self.cfg.straggler_z {
                self.straggle_streak[w] += 1;
                if self.straggle_streak[w] >= self.cfg.straggler_persistence
                    && !self.straggle_latched[w]
                {
                    self.straggle_latched[w] = true;
                    self.push_alert(
                        AlertKind::Straggler,
                        e.round,
                        format!(
                            "worker {w} lag {lag:.3} is {:.1} robust-sigma below the \
                             cluster median {med:.3} for {} consecutive epochs",
                            -z, self.straggle_streak[w],
                        ),
                    );
                }
            } else {
                self.straggle_streak[w] = 0;
                self.straggle_latched[w] = false;
            }
        }
    }

    fn observe_collapse(&mut self, e: &MetricsEpoch) {
        if e.efficiency_window < self.cfg.collapse_threshold {
            self.collapse_streak += 1;
            if self.collapse_streak >= self.cfg.collapse_persistence && !self.collapse_latched {
                self.collapse_latched = true;
                self.push_alert(
                    AlertKind::EfficiencyCollapse,
                    e.round,
                    format!(
                        "windowed efficiency {:.3} below {:.2} for {} consecutive epochs",
                        e.efficiency_window, self.cfg.collapse_threshold, self.collapse_streak,
                    ),
                );
            }
        } else {
            self.collapse_streak = 0;
            self.collapse_latched = false;
        }
    }

    fn observe_flapping(&mut self, e: &MetricsEpoch) {
        // Only controller-bearing rounds participate; Barrier/Mattern
        // streams are all Uncontrolled and never flap.
        if e.mode == EpochMode::Uncontrolled {
            return;
        }
        self.recent_modes.push(e.mode);
        if self.recent_modes.len() > self.cfg.flap_window {
            self.recent_modes.remove(0);
        }
        let flips = self.recent_modes.windows(2).filter(|pair| pair[0] != pair[1]).count();
        if flips >= self.cfg.flap_threshold {
            if !self.flap_latched {
                self.flap_latched = true;
                self.push_alert(
                    AlertKind::ModeFlapping,
                    e.round,
                    format!(
                        "controller flipped sync/async {flips} times in the last {} epochs",
                        self.recent_modes.len(),
                    ),
                );
            }
        } else if flips <= self.cfg.flap_threshold / 2 {
            // Hysteresis: re-arm only once the oscillation has clearly
            // settled, not the first epoch the count dips below threshold.
            self.flap_latched = false;
        }
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        HealthMonitor::new(HealthConfig::default())
    }
}

fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    median_mut(&mut v)
}

/// Median by sort; `values` must be non-empty and NaN-free.
fn median_mut(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("median input must be NaN-free"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 16-worker epoch with the given per-worker lags.
    fn epoch(round: u64, lags: Vec<f64>, eff: f64, mode: EpochMode) -> MetricsEpoch {
        MetricsEpoch {
            round,
            worker_lag: lags,
            efficiency_window: eff,
            mode,
            ..MetricsEpoch::default()
        }
    }

    fn healthy_lags() -> Vec<f64> {
        // Tight healthy horizon around lag 10 (MAD ~0.3); a straggler
        // pinned near GVT sits tens of robust sigmas below it.
        (0..16).map(|w| 10.0 + 0.15 * (w % 8) as f64).collect()
    }

    fn straggling_lags() -> Vec<f64> {
        let mut lags = healthy_lags();
        lags[3] = 0.01; // pinned at GVT
        lags
    }

    #[test]
    fn clean_stream_is_quiet() {
        let mut m = HealthMonitor::default();
        for r in 1..=40 {
            m.observe(&epoch(r, healthy_lags(), 0.9, EpochMode::Async));
        }
        assert!(m.alerts().is_empty(), "alerts: {:?}", m.alerts());
    }

    #[test]
    fn persistent_straggler_fires_once_and_names_the_worker() {
        let mut m = HealthMonitor::default();
        for r in 1..=10 {
            m.observe(&epoch(r, straggling_lags(), 0.9, EpochMode::Async));
        }
        let stragglers: Vec<_> =
            m.alerts().iter().filter(|a| a.kind == AlertKind::Straggler).collect();
        assert_eq!(stragglers.len(), 1, "latched rule must fire once: {:?}", m.alerts());
        assert!(stragglers[0].message.contains("worker 3"), "msg: {}", stragglers[0].message);
        assert_eq!(stragglers[0].round, HealthConfig::default().straggler_persistence as u64);
    }

    #[test]
    fn straggler_rule_realarms_after_recovery() {
        let mut m = HealthMonitor::default();
        for r in 1..=5 {
            m.observe(&epoch(r, straggling_lags(), 0.9, EpochMode::Async));
        }
        for r in 6..=10 {
            m.observe(&epoch(r, healthy_lags(), 0.9, EpochMode::Async));
        }
        for r in 11..=15 {
            m.observe(&epoch(r, straggling_lags(), 0.9, EpochMode::Async));
        }
        let stragglers = m.alerts().iter().filter(|a| a.kind == AlertKind::Straggler).count();
        assert_eq!(stragglers, 2);
    }

    #[test]
    fn transient_dip_below_persistence_stays_quiet() {
        let mut m = HealthMonitor::default();
        m.observe(&epoch(1, straggling_lags(), 0.9, EpochMode::Async));
        m.observe(&epoch(2, straggling_lags(), 0.9, EpochMode::Async));
        m.observe(&epoch(3, healthy_lags(), 0.9, EpochMode::Async));
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn small_clusters_skip_the_straggler_rule() {
        let mut m = HealthMonitor::default();
        for r in 1..=10 {
            m.observe(&epoch(r, vec![5.0, 5.5, 0.001, 6.0], 0.9, EpochMode::Async));
        }
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn lockstep_horizon_never_divides_by_zero_mad() {
        let mut m = HealthMonitor::default();
        for r in 1..=10 {
            m.observe(&epoch(r, vec![2.0; 16], 0.9, EpochMode::Async));
        }
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn idle_workers_do_not_trip_the_straggler_rule() {
        let mut lags = healthy_lags();
        lags[7] = f64::NAN;
        let mut m = HealthMonitor::default();
        for r in 1..=10 {
            m.observe(&epoch(r, lags.clone(), 0.9, EpochMode::Async));
        }
        assert!(m.alerts().is_empty(), "alerts: {:?}", m.alerts());
    }

    #[test]
    fn efficiency_collapse_fires_after_persistence_and_latches() {
        let mut m = HealthMonitor::default();
        for r in 1..=10 {
            m.observe(&epoch(r, healthy_lags(), 0.2, EpochMode::Async));
        }
        let collapses: Vec<_> =
            m.alerts().iter().filter(|a| a.kind == AlertKind::EfficiencyCollapse).collect();
        assert_eq!(collapses.len(), 1);
        assert_eq!(collapses[0].round, HealthConfig::default().collapse_persistence as u64);
    }

    #[test]
    fn brief_efficiency_dips_stay_quiet() {
        let mut m = HealthMonitor::default();
        for r in 1..=12 {
            let eff = if r % 3 == 0 { 0.3 } else { 0.9 };
            m.observe(&epoch(r, healthy_lags(), eff, EpochMode::Async));
        }
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn mode_flapping_fires_with_hysteresis() {
        let mut m = HealthMonitor::default();
        // Alternate sync/async every epoch: flips accumulate fast.
        for r in 1..=16 {
            let mode = if r % 2 == 0 { EpochMode::Sync } else { EpochMode::Async };
            m.observe(&epoch(r, healthy_lags(), 0.9, mode));
        }
        let flaps = m.alerts().iter().filter(|a| a.kind == AlertKind::ModeFlapping).count();
        assert_eq!(flaps, 1, "latched while oscillation persists: {:?}", m.alerts());
        // Long quiet stretch clears the window; a new burst re-fires.
        for r in 17..=40 {
            m.observe(&epoch(r, healthy_lags(), 0.9, EpochMode::Async));
        }
        for r in 41..=56 {
            let mode = if r % 2 == 0 { EpochMode::Sync } else { EpochMode::Async };
            m.observe(&epoch(r, healthy_lags(), 0.9, mode));
        }
        let flaps = m.alerts().iter().filter(|a| a.kind == AlertKind::ModeFlapping).count();
        assert_eq!(flaps, 2);
    }

    #[test]
    fn stable_controller_modes_never_flap() {
        let mut m = HealthMonitor::default();
        for r in 1..=20 {
            let mode = if r < 10 { EpochMode::Async } else { EpochMode::Sync };
            m.observe(&epoch(r, healthy_lags(), 0.9, mode));
        }
        assert!(m.alerts().is_empty(), "one transition is not flapping: {:?}", m.alerts());
    }

    #[test]
    fn fault_context_annotates_alerts() {
        let mut m = HealthMonitor::default();
        m.set_fault_context("node-straggle n1 x6");
        for r in 1..=10 {
            m.observe(&epoch(r, straggling_lags(), 0.9, EpochMode::Async));
        }
        assert!(!m.alerts().is_empty());
        assert!(m.alerts()[0].message.contains("[fault plan active: node-straggle n1 x6]"));
        assert!(m.report_lines()[0].starts_with("straggler: "));
    }
}
