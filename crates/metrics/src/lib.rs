//! `cagvt-metrics` — the concrete online-metrics layer behind the
//! [`MetricsSink`](cagvt_base::MetricsSink) hook defined in `cagvt-base`
//! (sibling of `TraceSink` and `FaultInjector`).
//!
//! Where `cagvt-trace` records *individual* engine actions, this crate
//! consumes the per-GVT-round [`MetricsEpoch`](cagvt_base::MetricsEpoch)
//! stream the engine publishes — windowed counter deltas, the per-worker
//! LVT-lag horizon and the CA-GVT controller's mode/cause decision — and
//! turns it into:
//!
//! * [`MetricsRegistry`] — the in-memory epoch store, with optional
//!   file exporters appended per epoch: tidy CSV ([`epoch_csv`]),
//!   JSON-lines, and a Prometheus text-exposition snapshot
//!   ([`prometheus`]) rewritten at every publication so a file-scraping
//!   collector always sees the latest round. An optional stderr ticker
//!   prints one line per epoch for live runs.
//! * [`HealthMonitor`] — online rules over the epoch stream: robust
//!   z-score straggler detection on the lag horizon, efficiency-collapse
//!   and mode-flapping (with hysteresis) alerts, plus fault-plan
//!   annotation. Alerts surface in the harness's `RunReport::health`
//!   section.
//!
//! Like tracing, metrics observation charges no simulated wall-clock
//! cost and feeds nothing back into engine state: the workspace-level
//! `metrics_never_perturb` proptest holds metered and unmetered runs to
//! bit-identical results.

pub mod epoch_csv;
pub mod health;
pub mod prometheus;
pub mod registry;

pub use epoch_csv::{epoch_csv_header, epoch_csv_row, epoch_jsonl_row};
pub use health::{Alert, AlertKind, HealthConfig, HealthMonitor};
pub use prometheus::{parse_exposition, prometheus_exposition, PromSample};
pub use registry::MetricsRegistry;
