//! Deterministic fault injection for the simulated cluster.
//!
//! The paper's algorithms are compared on a *healthy* virtual cluster; this
//! crate perturbs that cluster the way real many-core clusters degrade —
//! straggling nodes, degraded links, stalled MPI progress threads, dropped
//! packets — without touching a line of engine logic. Everything flows
//! through the [`FaultInjector`](cagvt_base::FaultInjector) hooks the
//! substrate layers already consult:
//!
//! * a [`FaultPlan`] is a pure value: a set of scheduled [`Perturbation`]s
//!   generated from a seed with the workspace's own PCG generator (never
//!   wall-clock randomness), so a plan is reproducible from `(topology,
//!   spec)` alone;
//! * a [`FaultRuntime`] interprets a plan during a run. It is deterministic
//!   under the serialized virtual scheduler: identical plan + identical
//!   call sequence ⇒ identical perturbations, hence bit-identical
//!   `RunReport`s.
//!
//! Faults only ever move *wall-clock* costs and delivery instants. Virtual
//! time, event payloads and message multiplicity are untouched — a dropped
//! message is modeled as retransmit timeouts appended to its delivery
//! instant, never as silent loss — which is why Mattern's white-message
//! conservation and the sequential-equivalence oracle hold under every
//! plan.

pub mod plan;
pub mod runtime;

pub use plan::{FaultPlan, FaultSpec, FaultTopology, Perturbation};
pub use runtime::FaultRuntime;
