//! Interprets a [`FaultPlan`] during a run as a
//! [`FaultInjector`](cagvt_base::FaultInjector).

use cagvt_base::fault::{FaultInjector, FaultStats, LinkShape};
use cagvt_base::ids::{ActorId, NodeId};
use cagvt_base::rng::Pcg32;
use cagvt_base::time::WallNs;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::plan::{FaultPlan, FaultTopology, Perturbation};

/// A message is retransmitted at most this many times before the loss
/// process is forced to succeed: recovery is always finite, so delivery
/// (and with it Mattern's message conservation) is never in question.
pub const MAX_RETRANSMITS: u32 = 8;

#[derive(Clone, Copy)]
struct StraggleWin {
    from: WallNs,
    until: WallNs,
    num: u32,
    den: u32,
}

#[derive(Clone, Copy)]
struct LinkWin {
    dst: NodeId,
    from: WallNs,
    until: WallNs,
    latency_x: u32,
    bandwidth_x: u32,
    den: u32,
}

#[derive(Clone, Copy)]
struct StallWin {
    from: WallNs,
    until: WallNs,
    stall: WallNs,
}

#[derive(Clone, Copy)]
struct DropWin {
    from: WallNs,
    until: WallNs,
    drop_permille: u16,
    retransmit_timeout: WallNs,
}

/// The live injector: plan windows bucketed per node for O(windows-on-node)
/// lookups, plus one seeded loss generator per source node.
///
/// Deterministic under the serialized virtual scheduler: every hook is a
/// pure function of `(plan, call arguments)` except the loss draws, whose
/// per-source generators advance in the scheduler's globally ordered call
/// sequence — so identical plans on identical runs replay identically.
pub struct FaultRuntime {
    topology: FaultTopology,
    straggle: Vec<Vec<StraggleWin>>,
    links: Vec<Vec<LinkWin>>,
    stalls: Vec<Vec<StallWin>>,
    drops: Vec<Vec<DropWin>>,
    loss_rng: Vec<Mutex<Pcg32>>,
    dropped_msgs: AtomicU64,
    retransmits: AtomicU64,
    retransmit_delay: AtomicU64,
    straggled_steps: AtomicU64,
    stalled_pumps: AtomicU64,
}

impl FaultRuntime {
    pub fn new(topology: FaultTopology, plan: &FaultPlan, seed: u64) -> Self {
        let n = topology.nodes as usize;
        let mut rt = FaultRuntime {
            topology,
            straggle: vec![Vec::new(); n],
            links: vec![Vec::new(); n],
            stalls: vec![Vec::new(); n],
            drops: vec![Vec::new(); n],
            loss_rng: (0..n).map(|i| Mutex::new(Pcg32::new(seed, 0xD0_0000 + i as u64))).collect(),
            dropped_msgs: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            retransmit_delay: AtomicU64::new(0),
            straggled_steps: AtomicU64::new(0),
            stalled_pumps: AtomicU64::new(0),
        };
        for p in &plan.perturbations {
            match *p {
                Perturbation::NodeStraggle { node, from, until, num, den } => {
                    rt.straggle[node.index()].push(StraggleWin { from, until, num, den });
                }
                Perturbation::LinkDegrade {
                    src,
                    dst,
                    from,
                    until,
                    latency_x,
                    bandwidth_x,
                    den,
                } => {
                    rt.links[src.index()].push(LinkWin {
                        dst,
                        from,
                        until,
                        latency_x,
                        bandwidth_x,
                        den,
                    });
                }
                Perturbation::MpiStall { node, from, until, stall } => {
                    rt.stalls[node.index()].push(StallWin { from, until, stall });
                }
                Perturbation::MessageDrop {
                    src,
                    from,
                    until,
                    drop_permille,
                    retransmit_timeout,
                } => {
                    rt.drops[src.index()].push(DropWin {
                        from,
                        until,
                        drop_permille,
                        retransmit_timeout,
                    });
                }
            }
        }
        rt
    }

    pub fn topology(&self) -> &FaultTopology {
        &self.topology
    }
}

#[inline]
fn active(from: WallNs, until: WallNs, now: WallNs) -> bool {
    from <= now && now < until
}

/// `v * num / den` in u128 to dodge overflow on large costs.
#[inline]
fn scale(v: u64, num: u32, den: u32) -> u64 {
    (v as u128 * num as u128 / den as u128) as u64
}

impl FaultInjector for FaultRuntime {
    fn actor_cost(&self, actor: ActorId, now: WallNs, cost: WallNs) -> WallNs {
        let node = self.topology.actor_node(actor.0);
        let mut out = cost.0;
        let mut hit = false;
        // Overlapping windows compound, in plan order.
        for w in &self.straggle[node.index()] {
            if active(w.from, w.until, now) && w.num > w.den {
                out = scale(out, w.num, w.den);
                hit = true;
            }
        }
        if hit && out > cost.0 {
            self.straggled_steps.fetch_add(1, Ordering::Relaxed);
        }
        WallNs(out)
    }

    fn link(
        &self,
        from: NodeId,
        to: NodeId,
        now: WallNs,
        per_msg: WallNs,
        latency: WallNs,
    ) -> LinkShape {
        let mut shape = LinkShape::clean(per_msg, latency);
        for w in &self.links[from.index()] {
            if w.dst == to && active(w.from, w.until, now) {
                shape.latency = WallNs(scale(shape.latency.0, w.latency_x, w.den));
                shape.per_msg = WallNs(scale(shape.per_msg.0, w.bandwidth_x, w.den));
            }
        }
        let mut lost = 0u32;
        for w in &self.drops[from.index()] {
            if active(w.from, w.until, now) {
                let mut rng = self.loss_rng[from.index()].lock();
                // Each transmission attempt is an independent Bernoulli
                // trial; after MAX_RETRANSMITS losses the attempt is forced
                // through, so delivery is guaranteed.
                while lost < MAX_RETRANSMITS && rng.next_bounded(1000) < w.drop_permille as u32 {
                    lost += 1;
                    shape.retransmit_delay += w.retransmit_timeout;
                }
                if lost > 0 {
                    self.dropped_msgs.fetch_add(1, Ordering::Relaxed);
                    self.retransmits.fetch_add(lost as u64, Ordering::Relaxed);
                    self.retransmit_delay.fetch_add(shape.retransmit_delay.0, Ordering::Relaxed);
                }
                // One loss process per message, even if windows overlap.
                break;
            }
        }
        shape
    }

    fn mpi_stall(&self, node: NodeId, now: WallNs) -> WallNs {
        let mut total = 0u64;
        for w in &self.stalls[node.index()] {
            if active(w.from, w.until, now) {
                total += w.stall.0;
            }
        }
        if total > 0 {
            self.stalled_pumps.fetch_add(1, Ordering::Relaxed);
        }
        WallNs(total)
    }

    fn stats(&self) -> FaultStats {
        FaultStats {
            dropped_msgs: self.dropped_msgs.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            retransmit_delay: WallNs(self.retransmit_delay.load(Ordering::Relaxed)),
            straggled_steps: self.straggled_steps.load(Ordering::Relaxed),
            stalled_pumps: self.stalled_pumps.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SCALE_DEN;

    fn topo() -> FaultTopology {
        FaultTopology { nodes: 2, workers_per_node: 2, dedicated_mpi: true }
    }

    fn plan(p: Vec<Perturbation>) -> FaultPlan {
        FaultPlan { perturbations: p }
    }

    #[test]
    fn straggle_scales_only_inside_the_window() {
        let rt = FaultRuntime::new(
            topo(),
            &plan(vec![Perturbation::NodeStraggle {
                node: NodeId(1),
                from: WallNs(100),
                until: WallNs(200),
                num: 2 * SCALE_DEN,
                den: SCALE_DEN,
            }]),
            7,
        );
        // Actor 2 is node 1's first worker; actor 0 is on node 0.
        assert_eq!(rt.actor_cost(ActorId(2), WallNs(150), WallNs(40)), WallNs(80));
        assert_eq!(rt.actor_cost(ActorId(2), WallNs(99), WallNs(40)), WallNs(40));
        assert_eq!(rt.actor_cost(ActorId(2), WallNs(200), WallNs(40)), WallNs(40));
        assert_eq!(rt.actor_cost(ActorId(0), WallNs(150), WallNs(40)), WallNs(40));
        assert_eq!(rt.stats().straggled_steps, 1);
    }

    #[test]
    fn link_degrade_shapes_only_its_direction() {
        let rt = FaultRuntime::new(
            topo(),
            &plan(vec![Perturbation::LinkDegrade {
                src: NodeId(0),
                dst: NodeId(1),
                from: WallNs(0),
                until: WallNs(1_000),
                latency_x: 3 * SCALE_DEN,
                bandwidth_x: 2 * SCALE_DEN,
                den: SCALE_DEN,
            }]),
            7,
        );
        let fwd = rt.link(NodeId(0), NodeId(1), WallNs(10), WallNs(500), WallNs(30_000));
        assert_eq!(fwd.latency, WallNs(90_000));
        assert_eq!(fwd.per_msg, WallNs(1_000));
        assert_eq!(fwd.retransmit_delay, WallNs::ZERO);
        let rev = rt.link(NodeId(1), NodeId(0), WallNs(10), WallNs(500), WallNs(30_000));
        assert_eq!(rev, LinkShape::clean(WallNs(500), WallNs(30_000)));
    }

    #[test]
    fn drops_become_bounded_retransmit_delays() {
        let rt = FaultRuntime::new(
            topo(),
            &plan(vec![Perturbation::MessageDrop {
                src: NodeId(0),
                from: WallNs(0),
                until: WallNs(1_000_000),
                drop_permille: 1000, // every attempt is lost...
                retransmit_timeout: WallNs(250),
            }]),
            7,
        );
        let shape = rt.link(NodeId(0), NodeId(1), WallNs(5), WallNs(500), WallNs(30_000));
        // ...but recovery is bounded, so the delay is exactly the cap.
        assert_eq!(shape.retransmit_delay, WallNs(MAX_RETRANSMITS as u64 * 250));
        assert_eq!(shape.per_msg, WallNs(500), "drops never change the serialization cost");
        let s = rt.stats();
        assert_eq!(s.dropped_msgs, 1);
        assert_eq!(s.retransmits, MAX_RETRANSMITS as u64);
        assert_eq!(s.retransmit_delay, WallNs(MAX_RETRANSMITS as u64 * 250));
    }

    #[test]
    fn loss_draws_replay_identically() {
        let mk = || {
            FaultRuntime::new(
                topo(),
                &plan(vec![Perturbation::MessageDrop {
                    src: NodeId(0),
                    from: WallNs(0),
                    until: WallNs(1_000_000),
                    drop_permille: 400,
                    retransmit_timeout: WallNs(100),
                }]),
                99,
            )
        };
        let a = mk();
        let b = mk();
        for i in 0..200u64 {
            let sa = a.link(NodeId(0), NodeId(1), WallNs(i), WallNs(500), WallNs(30_000));
            let sb = b.link(NodeId(0), NodeId(1), WallNs(i), WallNs(500), WallNs(30_000));
            assert_eq!(sa, sb, "loss process diverged at call {i}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn mpi_stall_applies_in_window() {
        let rt = FaultRuntime::new(
            topo(),
            &plan(vec![Perturbation::MpiStall {
                node: NodeId(0),
                from: WallNs(50),
                until: WallNs(60),
                stall: WallNs(9_000),
            }]),
            7,
        );
        assert_eq!(rt.mpi_stall(NodeId(0), WallNs(55)), WallNs(9_000));
        assert_eq!(rt.mpi_stall(NodeId(0), WallNs(60)), WallNs::ZERO);
        assert_eq!(rt.mpi_stall(NodeId(1), WallNs(55)), WallNs::ZERO);
        assert_eq!(rt.stats().stalled_pumps, 1);
    }
}
