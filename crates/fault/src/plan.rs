//! Fault plans: seeded, reproducible schedules of cluster perturbations.

use cagvt_base::ids::NodeId;
use cagvt_base::rng::Pcg32;
use cagvt_base::time::WallNs;
use cagvt_net::ClusterSpec;

/// The shape of the cluster a plan perturbs, plus the actor-id layout the
/// runtime needs to map scheduler actors back to nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultTopology {
    pub nodes: u16,
    pub workers_per_node: u16,
    /// Whether actor ids past the worker range are dedicated MPI actors
    /// (one per node, in node order).
    pub dedicated_mpi: bool,
}

impl FaultTopology {
    pub fn total_workers(&self) -> u32 {
        self.nodes as u32 * self.workers_per_node as u32
    }

    /// Node owning a scheduler actor id (workers are dense node-major,
    /// dedicated MPI actors follow, one per node).
    pub fn actor_node(&self, actor: u32) -> NodeId {
        let workers = self.total_workers();
        if actor < workers {
            NodeId((actor / self.workers_per_node as u32) as u16)
        } else {
            NodeId((actor - workers) as u16)
        }
    }
}

impl From<&ClusterSpec> for FaultTopology {
    fn from(spec: &ClusterSpec) -> Self {
        FaultTopology {
            nodes: spec.nodes,
            workers_per_node: spec.workers_per_node,
            dedicated_mpi: spec.has_dedicated_mpi_actor(),
        }
    }
}

/// One scheduled perturbation. Windows are half-open wall-clock intervals
/// `[from, until)` on the virtual cluster's clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Perturbation {
    /// Every actor on `node` (workers and its MPI pump) charges
    /// `cost * num / den` per step inside the window — a slow/oversubscribed
    /// node whose LPs fall behind the cluster.
    NodeStraggle { node: NodeId, from: WallNs, until: WallNs, num: u32, den: u32 },
    /// The directed link `src -> dst` serializes `bandwidth_x/den`-times
    /// slower and adds `latency_x/den`-times the wire latency inside the
    /// window.
    LinkDegrade {
        src: NodeId,
        dst: NodeId,
        from: WallNs,
        until: WallNs,
        latency_x: u32,
        bandwidth_x: u32,
        den: u32,
    },
    /// Node `node`'s MPI progress engine stalls: every pump invocation in
    /// the window charges an extra `stall` before any traffic moves.
    MpiStall { node: NodeId, from: WallNs, until: WallNs, stall: WallNs },
    /// Messages leaving `src` inside the window are dropped with
    /// probability `drop_permille`/1000 per transmission attempt, each drop
    /// recovered by one `retransmit_timeout` of extra delivery delay
    /// (bounded attempts; the message always arrives exactly once).
    MessageDrop {
        src: NodeId,
        from: WallNs,
        until: WallNs,
        drop_permille: u16,
        retransmit_timeout: WallNs,
    },
}

impl Perturbation {
    pub fn window(&self) -> (WallNs, WallNs) {
        match *self {
            Perturbation::NodeStraggle { from, until, .. }
            | Perturbation::LinkDegrade { from, until, .. }
            | Perturbation::MpiStall { from, until, .. }
            | Perturbation::MessageDrop { from, until, .. } => (from, until),
        }
    }
}

/// Inputs to plan generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Fault intensity in `[0, 1]`: 0 generates an empty plan, 1 the
    /// harshest one (more windows, bigger multipliers, higher drop rates).
    pub severity: f64,
    /// Seed for the plan's PCG streams; same `(topology, spec)` ⇒ same plan.
    pub seed: u64,
    /// Wall-clock span perturbation windows are drawn from — set it to
    /// roughly the clean run's makespan so windows actually overlap the
    /// run. Windows start in `[0, span/2)` and last `[span/4, span/2)`.
    pub span: WallNs,
}

impl FaultSpec {
    pub fn new(severity: f64, seed: u64, span: WallNs) -> Self {
        assert!((0.0..=1.0).contains(&severity), "severity must be in [0, 1]");
        assert!(span > WallNs::ZERO, "span must be positive");
        FaultSpec { severity, seed, span }
    }
}

/// Multiplier denominator shared by every generated rational scale factor.
pub const SCALE_DEN: u32 = 16;

/// A reproducible schedule of perturbations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub perturbations: Vec<Perturbation>,
}

impl FaultPlan {
    pub fn is_empty(&self) -> bool {
        self.perturbations.is_empty()
    }

    /// Generate a plan. Each fault class draws from its own PCG stream so
    /// adding windows of one class never shifts another class's draws.
    pub fn generate(topology: &FaultTopology, spec: &FaultSpec) -> FaultPlan {
        assert!((0.0..=1.0).contains(&spec.severity), "severity must be in [0, 1]");
        let mut plan = FaultPlan::default();
        if spec.severity <= 0.0 {
            return plan;
        }
        let s = spec.severity;
        let nodes = topology.nodes as u32;
        // Number of windows per class: one per ~2 nodes at full severity,
        // but at least one of each class whenever severity is non-zero so
        // even a tiny plan exercises every hook.
        let windows =
            |rate: f64| -> u32 { ((s * rate * nodes as f64 / 2.0).round() as u32).max(1) };
        let scale = |rng: &mut Pcg32, max_extra: f64| -> u32 {
            // Rational multiplier in [1, 1 + s*max_extra], SCALE_DEN denominator.
            let extra = rng.next_f64() * s * max_extra;
            ((1.0 + extra) * SCALE_DEN as f64).round() as u32
        };
        let window = |rng: &mut Pcg32| -> (WallNs, WallNs) {
            let half = (spec.span.0 / 2).max(1);
            let quarter = (spec.span.0 / 4).max(1);
            let from = rng.next_u64() % half;
            let len = quarter + rng.next_u64() % quarter;
            (WallNs(from), WallNs(from + len))
        };

        let mut rng = Pcg32::new(spec.seed, 0xFA01);
        for _ in 0..windows(1.0) {
            let node = NodeId(rng.next_bounded(nodes) as u16);
            let (from, until) = window(&mut rng);
            let num = scale(&mut rng, 4.0);
            plan.perturbations.push(Perturbation::NodeStraggle {
                node,
                from,
                until,
                num,
                den: SCALE_DEN,
            });
        }

        let mut rng = Pcg32::new(spec.seed, 0xFA02);
        if nodes > 1 {
            for _ in 0..windows(1.0) {
                let src = NodeId(rng.next_bounded(nodes) as u16);
                let dst = NodeId(
                    (src.0 as u32 + 1 + rng.next_bounded(nodes - 1)) as u16 % topology.nodes,
                );
                let (from, until) = window(&mut rng);
                let latency_x = scale(&mut rng, 6.0);
                let bandwidth_x = scale(&mut rng, 3.0);
                plan.perturbations.push(Perturbation::LinkDegrade {
                    src,
                    dst,
                    from,
                    until,
                    latency_x,
                    bandwidth_x,
                    den: SCALE_DEN,
                });
            }
        }

        let mut rng = Pcg32::new(spec.seed, 0xFA03);
        for _ in 0..windows(0.5) {
            let node = NodeId(rng.next_bounded(nodes) as u16);
            let (from, until) = window(&mut rng);
            // Up to ~100us of stall per pump at full severity — several
            // wire latencies, enough to back up the node's outbox.
            let stall = WallNs((rng.next_f64() * s * 100_000.0) as u64 + 1);
            plan.perturbations.push(Perturbation::MpiStall { node, from, until, stall });
        }

        let mut rng = Pcg32::new(spec.seed, 0xFA04);
        if nodes > 1 {
            for _ in 0..windows(0.5) {
                let src = NodeId(rng.next_bounded(nodes) as u16);
                let (from, until) = window(&mut rng);
                // Up to 25% per-attempt loss at full severity.
                let drop_permille = ((rng.next_f64() * s * 250.0) as u16).max(1);
                let retransmit_timeout = WallNs(200_000 + rng.next_u64() % 300_000);
                plan.perturbations.push(Perturbation::MessageDrop {
                    src,
                    from,
                    until,
                    drop_permille,
                    retransmit_timeout,
                });
            }
        }

        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(nodes: u16) -> FaultTopology {
        FaultTopology { nodes, workers_per_node: 4, dedicated_mpi: true }
    }

    #[test]
    fn zero_severity_is_the_empty_plan() {
        let spec = FaultSpec::new(0.0, 42, WallNs(1_000_000));
        assert!(FaultPlan::generate(&topo(4), &spec).is_empty());
    }

    #[test]
    fn identical_inputs_give_identical_plans() {
        let spec = FaultSpec::new(0.7, 0xDEAD_BEEF, WallNs(5_000_000));
        let a = FaultPlan::generate(&topo(8), &spec);
        let b = FaultPlan::generate(&topo(8), &spec);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let t = topo(8);
        let a = FaultPlan::generate(&t, &FaultSpec::new(0.7, 1, WallNs(5_000_000)));
        let b = FaultPlan::generate(&t, &FaultSpec::new(0.7, 2, WallNs(5_000_000)));
        assert_ne!(a, b);
    }

    #[test]
    fn severity_scales_window_count() {
        let t = topo(8);
        let mild = FaultPlan::generate(&t, &FaultSpec::new(0.2, 9, WallNs(5_000_000)));
        let harsh = FaultPlan::generate(&t, &FaultSpec::new(1.0, 9, WallNs(5_000_000)));
        assert!(harsh.perturbations.len() > mild.perturbations.len());
    }

    #[test]
    fn single_node_plans_skip_link_faults() {
        let plan = FaultPlan::generate(&topo(1), &FaultSpec::new(1.0, 5, WallNs(5_000_000)));
        assert!(!plan.is_empty(), "straggle/stall windows still apply on one node");
        for p in &plan.perturbations {
            assert!(
                !matches!(p, Perturbation::LinkDegrade { .. } | Perturbation::MessageDrop { .. }),
                "no inter-node faults on a single node: {p:?}"
            );
        }
    }

    #[test]
    fn windows_are_well_formed() {
        let plan = FaultPlan::generate(&topo(4), &FaultSpec::new(1.0, 77, WallNs(8_000_000)));
        for p in &plan.perturbations {
            let (from, until) = p.window();
            assert!(until > from, "empty window: {p:?}");
            assert!(from.0 < 8_000_000, "window starts past the span: {p:?}");
        }
    }

    #[test]
    fn actor_node_maps_workers_and_mpi_actors() {
        let t = topo(2); // 2 nodes x 4 workers, dedicated MPI
        assert_eq!(t.actor_node(0), NodeId(0));
        assert_eq!(t.actor_node(3), NodeId(0));
        assert_eq!(t.actor_node(4), NodeId(1));
        assert_eq!(t.actor_node(7), NodeId(1));
        // MPI actors: ids 8 and 9.
        assert_eq!(t.actor_node(8), NodeId(0));
        assert_eq!(t.actor_node(9), NodeId(1));
    }
}
