//! Cross-crate integration tests: the full stack (engine, GVT algorithms,
//! real models) against the sequential reference, on both execution
//! substrates.

use cagvt::core::cluster::{build_cluster, build_shared};
use cagvt::prelude::*;
use cagvt_exec::VirtualRunStats;
use std::sync::Arc;

fn all_kinds() -> [GvtKind; 3] {
    [GvtKind::Barrier, GvtKind::Mattern, GvtKind::CA_DEFAULT]
}

fn assert_matches_sequential<M: Model + Clone>(
    kind: GvtKind,
    model: M,
    cfg: SimConfig,
) -> cagvt::core::RunReport {
    let report = run_virtual(Arc::new(model.clone()), cfg, |shared| make_bundle(kind, shared));
    report.check_conservation(cfg.end_vt());
    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    assert_eq!(report.committed, seq.processed, "committed mismatch for {kind:?}\n{report}");
    assert_eq!(report.state_fingerprint, seq.fingerprint, "state mismatch for {kind:?}");
    report
}

#[test]
fn phold_comp_all_algorithms_match_sequential() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(2, 3);
        cfg.lps_per_worker = 8;
        cfg.end_time = 25.0;
        let workload = comp_dominated(&cfg);
        assert_matches_sequential(kind, workload.model, cfg);
    }
}

#[test]
fn phold_comm_all_algorithms_match_sequential() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(2, 3);
        cfg.lps_per_worker = 8;
        cfg.end_time = 20.0;
        let workload = comm_dominated(&cfg);
        let report = assert_matches_sequential(kind, workload.model, cfg);
        assert!(report.sent_remote > 0, "comm workload must generate remote traffic");
    }
}

#[test]
fn phold_mixed_model_matches_sequential() {
    for kind in all_kinds() {
        let mut cfg = SimConfig::small(2, 2);
        cfg.lps_per_worker = 8;
        cfg.end_time = 20.0;
        let workload = mixed_model(&cfg, 10.0, 15.0);
        assert_matches_sequential(kind, workload.model, cfg);
    }
}

#[test]
fn epidemic_matches_sequential() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.lps_per_worker = 4;
    cfg.end_time = 60.0;
    let model = EpidemicModel::default();
    for kind in all_kinds() {
        assert_matches_sequential(kind, model, cfg);
    }
}

#[test]
fn pcs_matches_sequential() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.lps_per_worker = 4;
    cfg.end_time = 40.0;
    let model = PcsModel::default();
    for kind in all_kinds() {
        assert_matches_sequential(kind, model, cfg);
    }
}

#[test]
fn cqn_matches_sequential_under_all_algorithms() {
    // Closed population: any lost or duplicated job shows in the
    // fingerprint.
    let mut cfg = SimConfig::small(2, 2);
    cfg.lps_per_worker = 8; // 32 stations, 8 rows of 4
    cfg.end_time = 40.0;
    let model = CqnModel { switch_prob: 0.35, ..Default::default() };
    for kind in [GvtKind::Barrier, GvtKind::Mattern, GvtKind::CA_DEFAULT, GvtKind::Samadi] {
        assert_matches_sequential(kind, model, cfg);
    }
}

#[test]
fn samadi_matches_sequential_on_phold() {
    let mut cfg = SimConfig::small(2, 3);
    cfg.lps_per_worker = 8;
    cfg.end_time = 20.0;
    let workload = comm_dominated(&cfg);
    let report = assert_matches_sequential(GvtKind::Samadi, workload.model, cfg);
    assert!(report.gvt_rounds > 0);
}

#[test]
fn all_algorithms_commit_identical_events() {
    // Different GVT algorithms change *timing*, never simulation results.
    let mut cfg = SimConfig::small(2, 3);
    cfg.lps_per_worker = 8;
    cfg.end_time = 20.0;
    let reports: Vec<_> = all_kinds()
        .into_iter()
        .map(|kind| {
            let workload = comm_dominated(&cfg);
            run_virtual(Arc::new(workload.model), cfg, |shared| make_bundle(kind, shared))
        })
        .collect();
    for pair in reports.windows(2) {
        assert_eq!(pair[0].committed, pair[1].committed);
        assert_eq!(pair[0].state_fingerprint, pair[1].state_fingerprint);
    }
}

#[test]
fn thread_runtime_matches_sequential() {
    // The identical actors on real OS threads (nondeterministic schedule,
    // deterministic results).
    let mut cfg = SimConfig::small(2, 2);
    cfg.lps_per_worker = 4;
    cfg.end_time = 8.0;
    let workload = comp_dominated(&cfg);
    let model = Arc::new(workload.model);

    let shared = build_shared(Arc::clone(&model), cfg);
    let bundle = make_bundle(GvtKind::Mattern, &shared);
    let (actors, handles) = build_cluster(Arc::clone(&shared), &*bundle);
    let stats = ThreadRuntime::new(ThreadConfig {
        realize_costs: false,
        timeout: Some(std::time::Duration::from_secs(120)),
        ..Default::default()
    })
    .run(actors);
    assert!(stats.completed, "threaded run timed out");

    let report = cagvt::core::RunReport::assemble(
        "mattern",
        &handles.shared,
        VirtualRunStats {
            final_time: stats.elapsed,
            steps: stats.steps,
            idle_steps: 0,
            completed: stats.completed,
        },
    );
    let seq = SequentialSim::new(model, cfg).run();
    assert_eq!(report.committed, seq.processed);
    assert_eq!(report.state_fingerprint, seq.fingerprint);
}

#[test]
fn gvt_interval_changes_round_count_not_results() {
    let mut cfg = SimConfig::small(1, 3);
    cfg.lps_per_worker = 8;
    cfg.end_time = 25.0;
    let mut last: Option<(u64, u64)> = None;
    let mut round_counts = Vec::new();
    for interval in [10u64, 50] {
        cfg.gvt_interval = interval;
        cfg.max_outstanding = 1024;
        let workload = comp_dominated(&cfg);
        let report = run_virtual(Arc::new(workload.model), cfg, |shared| {
            make_bundle(GvtKind::Mattern, shared)
        });
        if let Some((committed, fp)) = last {
            assert_eq!(report.committed, committed);
            assert_eq!(report.state_fingerprint, fp);
        }
        last = Some((report.committed, report.state_fingerprint));
        round_counts.push(report.gvt_rounds);
    }
    assert!(
        round_counts[0] > round_counts[1],
        "smaller interval must produce more rounds: {round_counts:?}"
    );
}

#[test]
fn report_csv_shapes_are_stable() {
    let mut cfg = SimConfig::small(1, 2);
    cfg.end_time = 10.0;
    let workload = comp_dominated(&cfg);
    let report =
        run_virtual(Arc::new(workload.model), cfg, |shared| make_bundle(GvtKind::Barrier, shared));
    assert_eq!(
        report.csv_row().split(',').count(),
        cagvt::core::RunReport::csv_header().split(',').count()
    );
    // Display must mention the algorithm and the efficiency.
    let text = format!("{report}");
    assert!(text.contains("barrier"));
    assert!(text.contains("efficiency"));
}

#[test]
fn reverse_computation_matches_snapshot_rollback_exactly() {
    // PHOLD implements reverse computation; forcing snapshots must change
    // nothing observable — committed events, final states, virtual
    // timing, the whole schedule.
    let mut cfg = SimConfig::small(2, 3);
    cfg.lps_per_worker = 8;
    cfg.end_time = 25.0;
    let run = |force_snapshot: bool| {
        let mut cfg = cfg;
        cfg.force_snapshot = force_snapshot;
        let workload = comm_dominated(&cfg); // rollback-heavy
        run_virtual(Arc::new(workload.model), cfg, |shared| make_bundle(GvtKind::Mattern, shared))
    };
    let reverse = run(false);
    let snapshot = run(true);
    assert!(reverse.rollbacks > 0, "rollbacks must exercise the reverse path");
    assert_eq!(reverse.committed, snapshot.committed);
    assert_eq!(reverse.state_fingerprint, snapshot.state_fingerprint);
    assert_eq!(reverse.sched_steps, snapshot.sched_steps);
    assert_eq!(reverse.sim_seconds, snapshot.sim_seconds);

    // And both match the sequential reference.
    let workload = comm_dominated(&cfg);
    let seq = SequentialSim::new(Arc::new(workload.model), cfg).run();
    assert_eq!(reverse.committed, seq.processed);
    assert_eq!(reverse.state_fingerprint, seq.fingerprint);
}

#[test]
fn periodic_snapshot_strategy_matches_other_strategies_exactly() {
    // Periodic state saving with coast-forward must be observably
    // identical to per-event snapshots and to reverse computation.
    let mut cfg = SimConfig::small(2, 3);
    cfg.lps_per_worker = 8;
    cfg.end_time = 25.0;
    let run = |periodic: Option<u32>, force_snapshot: bool| {
        let mut cfg = cfg;
        cfg.periodic_snapshot = periodic;
        cfg.force_snapshot = force_snapshot;
        let workload = comm_dominated(&cfg); // rollback-heavy
        run_virtual(Arc::new(workload.model), cfg, |shared| make_bundle(GvtKind::Mattern, shared))
    };
    let reverse = run(None, false);
    let snapshot = run(None, true);
    assert!(reverse.rollbacks > 0);
    assert_eq!(snapshot.sched_steps, reverse.sched_steps, "identical virtual timing");
    for k in [1u32, 4, 16, 64] {
        let periodic = run(Some(k), false);
        // Simulation results are identical; the virtual schedule may
        // differ slightly because snapshot retention shifts when the
        // optimism throttle engages.
        assert_eq!(periodic.committed, reverse.committed, "k={k}");
        assert_eq!(periodic.state_fingerprint, reverse.state_fingerprint, "k={k}");
    }
    // And all agree with the sequential reference.
    let workload = comm_dominated(&cfg);
    let seq = SequentialSim::new(Arc::new(workload.model), cfg).run();
    assert_eq!(reverse.committed, seq.processed);
}

#[test]
fn traffic_grid_matches_sequential_under_all_algorithms() {
    let mut cfg = SimConfig::small(2, 2);
    cfg.lps_per_worker = 4; // 4x4 torus
    cfg.end_time = 30.0;
    let model = TrafficModel { width: 4, height: 4, ..Default::default() };
    for kind in [GvtKind::Barrier, GvtKind::Mattern, GvtKind::CA_DEFAULT, GvtKind::Samadi] {
        assert_matches_sequential(kind, model, cfg);
    }
}
