//! Fault-plan integration tests: every GVT algorithm must commit exactly
//! the sequential reference's events and states under non-trivial fault
//! plans, because faults perturb wall-clock costs and delivery instants
//! only — never virtual-time event content.

use cagvt::core::testmodel::MiniHold;
use cagvt::prelude::*;
use std::sync::Arc;

/// A straggler-prone MiniHold on a 2x2 cluster with enough remote traffic
/// that link faults actually bite.
fn model() -> MiniHold {
    MiniHold { far_fraction: 0.4, ..Default::default() }
}

fn config() -> SimConfig {
    let mut cfg = SimConfig::small(2, 2);
    cfg.end_time = 30.0;
    cfg
}

/// Build an injector whose windows are anchored on the clean run's
/// makespan, so the plan demonstrably overlaps the faulted run.
fn injector(cfg: &SimConfig, severity: f64, seed: u64) -> (Arc<FaultRuntime>, FaultPlan) {
    let clean =
        run_virtual(Arc::new(model()), *cfg, |shared| make_bundle(GvtKind::Mattern, shared));
    let span = WallNs(((clean.sim_seconds * 1e9) as u64).max(1_000_000));
    let topology = FaultTopology::from(&cfg.spec);
    let spec = FaultSpec::new(severity, seed, span);
    let plan = FaultPlan::generate(&topology, &spec);
    assert!(!plan.is_empty(), "severity {severity} must yield a non-trivial plan");
    (Arc::new(FaultRuntime::new(topology, &plan, seed)), plan)
}

fn run_faulted(kind: GvtKind, cfg: SimConfig, faults: Arc<FaultRuntime>) -> RunReport {
    let vcfg =
        VirtualConfig { faults: Some(faults as Arc<dyn FaultInjector>), ..Default::default() };
    run_virtual_with(Arc::new(model()), cfg, vcfg, |shared| make_bundle(kind, shared))
}

fn assert_oracle_holds_under_faults(kind: GvtKind) -> RunReport {
    let cfg = config();
    let (faults, plan) = injector(&cfg, 0.8, 0x0FA_517);
    let report = run_faulted(kind, cfg, Arc::clone(&faults));
    report.check_conservation(cfg.end_vt());
    assert!(
        report.faults.straggled_steps > 0,
        "the plan ({} perturbations) must actually perturb the run\n{report}",
        plan.perturbations.len()
    );
    let seq = SequentialSim::new(Arc::new(model()), cfg).run();
    assert_eq!(
        report.committed, seq.processed,
        "faults must not change committed events\n{report}"
    );
    assert_eq!(
        report.state_fingerprint, seq.fingerprint,
        "faults must not change final LP states\n{report}"
    );
    report
}

#[test]
fn barrier_matches_sequential_under_faults() {
    assert_oracle_holds_under_faults(GvtKind::Barrier);
}

#[test]
fn mattern_matches_sequential_under_faults() {
    assert_oracle_holds_under_faults(GvtKind::Mattern);
}

#[test]
fn ca_gvt_matches_sequential_under_faults() {
    assert_oracle_holds_under_faults(GvtKind::CaGvt { threshold: 0.93 });
}

#[test]
fn faulted_runs_are_bit_identical() {
    let cfg = config();
    let kind = GvtKind::Mattern;
    let run = || {
        let (faults, _) = injector(&cfg, 0.6, 0xBEEF);
        run_faulted(kind, cfg, faults)
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.state_fingerprint, b.state_fingerprint);
    assert_eq!(a.sched_steps, b.sched_steps, "faulted schedule must be deterministic");
    assert_eq!(a.sim_seconds, b.sim_seconds);
    assert_eq!(a.faults, b.faults, "fault activity must replay identically");
}

#[test]
fn faults_slow_the_run_but_not_the_results() {
    let cfg = config();
    let clean = run_virtual(Arc::new(model()), cfg, |shared| make_bundle(GvtKind::Mattern, shared));
    let (faults, _) = injector(&cfg, 1.0, 7);
    let faulted = run_faulted(GvtKind::Mattern, cfg, faults);
    assert_eq!(clean.committed, faulted.committed);
    assert_eq!(clean.state_fingerprint, faulted.state_fingerprint);
    assert!(
        faulted.sim_seconds > clean.sim_seconds,
        "a full-severity plan must cost wall time: clean {} vs faulted {}",
        clean.sim_seconds,
        faulted.sim_seconds
    );
}

/// GVT must stay monotonic under faults; inspected directly from the
/// progress samples of a manually assembled run.
#[test]
fn gvt_remains_monotonic_under_faults() {
    let cfg = config();
    let (faults, _) = injector(&cfg, 0.9, 0x60_0D);
    let shared = build_shared_faulted(
        Arc::new(model()),
        cfg,
        Some(faults.clone() as Arc<dyn FaultInjector>),
    );
    let bundle = make_bundle(GvtKind::Mattern, &shared);
    let (actors, handles) = build_cluster(Arc::clone(&shared), &*bundle);
    let vcfg =
        VirtualConfig { faults: Some(faults as Arc<dyn FaultInjector>), ..Default::default() };
    let stats = VirtualScheduler::new(vcfg).run(actors);
    assert!(stats.completed);
    let samples = handles.shared.stats.progress.lock();
    assert!(!samples.is_empty(), "at least one GVT round must be sampled");
    for w in samples.windows(2) {
        assert!(w[1].gvt >= w[0].gvt, "GVT regressed under faults: {} -> {}", w[0].gvt, w[1].gvt);
        assert!(w[1].wall >= w[0].wall, "wall clock regressed in progress samples");
    }
}
