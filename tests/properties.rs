//! Property-based tests: random workload parameterizations, topologies,
//! algorithm settings and fault plans must always preserve the engine's
//! core invariants — sequential equivalence, event conservation, GVT
//! monotonicity, rollback staying above the published GVT (asserted
//! inside the engine), and determinism.

use cagvt::prelude::*;
use cagvt_models::phold::{PhaseSchedule, PholdModel, PholdParams, Topology};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_kind() -> impl Strategy<Value = GvtKind> {
    prop_oneof![
        Just(GvtKind::Barrier),
        Just(GvtKind::Mattern),
        (0.3f64..0.95).prop_map(|threshold| GvtKind::CaGvt { threshold }),
    ]
}

fn arb_topology() -> impl Strategy<Value = (u16, u16, u32)> {
    // (nodes, workers, lps_per_worker) — kept small: each case is a whole
    // simulation run.
    (1u16..=3, 1u16..=3, 2u32..=6)
}

fn phold_for(cfg: &SimConfig, regional: f64, remote: f64, epg: u64) -> PholdModel {
    PholdModel::new(
        Topology {
            lps_per_worker: cfg.lps_per_worker,
            workers_per_node: cfg.spec.workers_per_node,
            nodes: cfg.spec.nodes,
        },
        PhaseSchedule::constant(PholdParams::new(regional, remote, epg)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// Any random PHOLD parameterization on any small topology, under any
    /// algorithm, commits exactly the sequential reference's events and
    /// states.
    #[test]
    fn random_runs_match_sequential(
        kind in arb_kind(),
        (nodes, workers, lpw) in arb_topology(),
        regional in 0.0f64..0.6,
        remote in 0.0f64..0.3,
        epg in 100u64..20_000,
        interval in 5u64..60,
        seed in any::<u32>(),
    ) {
        let mut cfg = SimConfig::small(nodes, workers);
        cfg.lps_per_worker = lpw;
        cfg.end_time = 12.0;
        cfg.gvt_interval = interval;
        cfg.max_outstanding = (interval as usize * 16).max(128);
        cfg.seed = seed as u64 | 0x5EED_0000_0000;

        let model = phold_for(&cfg, regional, remote, epg);
        let report = run_virtual(Arc::new(model.clone()), cfg, |shared| make_bundle(kind, shared));
        report.check_conservation(cfg.end_vt());

        let seq = SequentialSim::new(Arc::new(model), cfg).run();
        prop_assert_eq!(report.committed, seq.processed);
        prop_assert_eq!(report.state_fingerprint, seq.fingerprint);
    }

    /// Random fault plans never change what commits, identical
    /// `(seed, config, plan)` runs are bit-identical, GVT only advances,
    /// and no rollback targets a time below the published GVT (the latter
    /// is asserted unconditionally inside the worker, so merely completing
    /// the faulted run exercises it).
    #[test]
    fn random_fault_plans_preserve_invariants(
        kind in arb_kind(),
        severity in 0.1f64..1.0,
        fault_seed in any::<u32>(),
        seed in any::<u32>(),
    ) {
        let mut cfg = SimConfig::small(2, 2);
        cfg.lps_per_worker = 4;
        cfg.end_time = 10.0;
        cfg.seed = seed as u64 | 0xFA_0000_0000;

        let model = phold_for(&cfg, 0.2, 0.1, 2_000);
        // Anchor windows on the clean makespan so the plan overlaps the run.
        let clean = run_virtual(Arc::new(model.clone()), cfg, |shared| make_bundle(kind, shared));
        let span = WallNs(((clean.sim_seconds * 1e9) as u64).max(1_000_000));
        let topology = FaultTopology::from(&cfg.spec);
        let spec = FaultSpec::new(severity, fault_seed as u64, span);
        let plan = FaultPlan::generate(&topology, &spec);
        prop_assert!(!plan.is_empty());

        let run = || {
            let rt = Arc::new(FaultRuntime::new(topology, &plan, spec.seed));
            let shared = build_shared_faulted(
                Arc::new(model.clone()),
                cfg,
                Some(rt.clone() as Arc<dyn FaultInjector>),
            );
            let bundle = make_bundle(kind, &shared);
            let (actors, handles) =
                cagvt::core::cluster::build_cluster(Arc::clone(&shared), &*bundle);
            let vcfg = VirtualConfig {
                faults: Some(rt as Arc<dyn FaultInjector>),
                ..Default::default()
            };
            let stats = VirtualScheduler::new(vcfg).run(actors);
            let report =
                cagvt::core::RunReport::assemble(bundle.name(), &handles.shared, stats);
            let samples = handles.shared.stats.progress.lock().clone();
            (report, samples)
        };
        let (a, gvt_samples) = run();
        let (b, _) = run();

        // Faults never change simulation results.
        a.check_conservation(cfg.end_vt());
        prop_assert_eq!(a.committed, clean.committed);
        prop_assert_eq!(a.state_fingerprint, clean.state_fingerprint);

        // Identical plan + config => bit-identical run.
        prop_assert_eq!(a.committed, b.committed);
        prop_assert_eq!(a.state_fingerprint, b.state_fingerprint);
        prop_assert_eq!(a.sched_steps, b.sched_steps);
        prop_assert_eq!(a.sim_seconds, b.sim_seconds);
        prop_assert_eq!(a.faults, b.faults);

        // GVT only ever advances.
        for w in gvt_samples.windows(2) {
            prop_assert!(w[1].gvt >= w[0].gvt, "GVT regressed: {} -> {}", w[0].gvt, w[1].gvt);
        }
    }

    /// Identical configurations are bit-identical (virtual determinism),
    /// across all algorithms.
    #[test]
    fn virtual_runs_are_deterministic(
        kind in arb_kind(),
        seed in any::<u32>(),
        remote in 0.0f64..0.3,
    ) {
        let mut cfg = SimConfig::small(2, 2);
        cfg.lps_per_worker = 4;
        cfg.end_time = 10.0;
        cfg.seed = seed as u64;
        let run = || {
            let model = phold_for(&cfg, 0.2, remote, 2_000);
            run_virtual(Arc::new(model), cfg, |shared| make_bundle(kind, shared))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.committed, b.committed);
        prop_assert_eq!(a.state_fingerprint, b.state_fingerprint);
        prop_assert_eq!(a.sched_steps, b.sched_steps);
        prop_assert_eq!(a.sim_seconds, b.sim_seconds);
    }

    /// Tracing is purely observational: the same run with no sink, with
    /// the disabled `NullTrace` sink and with the full ring-buffer
    /// recorder commits identical events and states (matching the
    /// sequential oracle), takes the same number of scheduler steps, and
    /// the same holds with a fault plan active.
    #[test]
    fn tracing_never_perturbs(
        kind in arb_kind(),
        seed in any::<u32>(),
        remote in 0.0f64..0.3,
        severity in 0.1f64..1.0,
        fault_seed in any::<u32>(),
    ) {
        let mut cfg = SimConfig::small(2, 2);
        cfg.lps_per_worker = 4;
        cfg.end_time = 10.0;
        cfg.seed = seed as u64 | 0x7ACE_0000_0000;
        let model = phold_for(&cfg, 0.2, remote, 2_000);

        let run = |trace: Option<Arc<dyn TraceSink>>| {
            let vcfg = VirtualConfig { trace, ..Default::default() };
            run_virtual_with(Arc::new(model.clone()), cfg, vcfg, |shared| {
                make_bundle(kind, shared)
            })
        };
        let plain = run(None);
        let null = run(Some(Arc::new(NullTrace)));
        let recorder = TraceRecorder::new();
        let ring = run(Some(recorder.clone() as Arc<dyn TraceSink>));
        prop_assert!(recorder.recorded() > 0, "recorder saw no records");

        let seq = SequentialSim::new(Arc::new(model.clone()), cfg).run();
        prop_assert_eq!(plain.committed, seq.processed);
        prop_assert_eq!(plain.state_fingerprint, seq.fingerprint);
        for r in [&null, &ring] {
            prop_assert_eq!(r.committed, plain.committed);
            prop_assert_eq!(r.state_fingerprint, plain.state_fingerprint);
            prop_assert_eq!(r.sched_steps, plain.sched_steps);
            prop_assert_eq!(r.sim_seconds, plain.sim_seconds);
        }

        // With a fault plan active the recorder still changes nothing —
        // faulted-and-traced matches faulted-untraced bit for bit, and
        // both still commit the clean run's events.
        let span = WallNs(((plain.sim_seconds * 1e9) as u64).max(1_000_000));
        let topology = FaultTopology::from(&cfg.spec);
        let spec = FaultSpec::new(severity, fault_seed as u64, span);
        let plan = FaultPlan::generate(&topology, &spec);
        let faulted = |trace: Option<Arc<dyn TraceSink>>| {
            let rt = Arc::new(FaultRuntime::new(topology, &plan, spec.seed));
            let vcfg = VirtualConfig {
                faults: Some(rt as Arc<dyn FaultInjector>),
                trace,
                ..Default::default()
            };
            run_virtual_with(Arc::new(model.clone()), cfg, vcfg, |shared| {
                make_bundle(kind, shared)
            })
        };
        let fplain = faulted(None);
        let ftraced = faulted(Some(TraceRecorder::new() as Arc<dyn TraceSink>));
        prop_assert_eq!(ftraced.committed, fplain.committed);
        prop_assert_eq!(ftraced.state_fingerprint, fplain.state_fingerprint);
        prop_assert_eq!(ftraced.sched_steps, fplain.sched_steps);
        prop_assert_eq!(ftraced.sim_seconds, fplain.sim_seconds);
        prop_assert_eq!(fplain.committed, plain.committed);
        prop_assert_eq!(fplain.state_fingerprint, plain.state_fingerprint);
    }

    /// Metrics observation is purely observational (mirror of
    /// `tracing_never_perturbs`): the same run with no sink, with the
    /// disabled `NullMetrics` sink and with a full recording registry
    /// commits identical events and states (matching the sequential
    /// oracle), takes the same number of scheduler steps, and the same
    /// holds with a fault plan active.
    #[test]
    fn metrics_never_perturb(
        kind in arb_kind(),
        seed in any::<u32>(),
        remote in 0.0f64..0.3,
        severity in 0.1f64..1.0,
        fault_seed in any::<u32>(),
    ) {
        let mut cfg = SimConfig::small(2, 2);
        cfg.lps_per_worker = 4;
        cfg.end_time = 10.0;
        cfg.seed = seed as u64 | 0x3E7_0000_0000;
        let model = phold_for(&cfg, 0.2, remote, 2_000);

        let run = |metrics: Option<Arc<dyn MetricsSink>>| {
            let vcfg = VirtualConfig { metrics, ..Default::default() };
            run_virtual_with(Arc::new(model.clone()), cfg, vcfg, |shared| {
                make_bundle(kind, shared)
            })
        };
        let plain = run(None);
        let null = run(Some(Arc::new(NullMetrics)));
        let registry = Arc::new(MetricsRegistry::new());
        let metered = run(Some(registry.clone() as Arc<dyn MetricsSink>));
        prop_assert!(!registry.is_empty(), "registry saw no epochs");
        // The recorded stream is coherent: rounds strictly increase and
        // every windowed delta stays within the cumulative totals.
        let epochs = registry.epochs();
        for w in epochs.windows(2) {
            prop_assert!(w[1].round > w[0].round);
            prop_assert!(w[1].gvt >= w[0].gvt);
        }
        let committed_sum: u64 = epochs.iter().map(|e| e.committed_delta).sum();
        prop_assert!(committed_sum <= metered.committed);

        let seq = SequentialSim::new(Arc::new(model.clone()), cfg).run();
        prop_assert_eq!(plain.committed, seq.processed);
        prop_assert_eq!(plain.state_fingerprint, seq.fingerprint);
        for r in [&null, &metered] {
            prop_assert_eq!(r.committed, plain.committed);
            prop_assert_eq!(r.state_fingerprint, plain.state_fingerprint);
            prop_assert_eq!(r.sched_steps, plain.sched_steps);
            prop_assert_eq!(r.sim_seconds, plain.sim_seconds);
        }

        // With a fault plan active the registry still changes nothing —
        // faulted-and-metered matches faulted-unmetered bit for bit, and
        // both still commit the clean run's events.
        let span = WallNs(((plain.sim_seconds * 1e9) as u64).max(1_000_000));
        let topology = FaultTopology::from(&cfg.spec);
        let spec = FaultSpec::new(severity, fault_seed as u64, span);
        let plan = FaultPlan::generate(&topology, &spec);
        let faulted = |metrics: Option<Arc<dyn MetricsSink>>| {
            let rt = Arc::new(FaultRuntime::new(topology, &plan, spec.seed));
            let vcfg = VirtualConfig {
                faults: Some(rt as Arc<dyn FaultInjector>),
                metrics,
                ..Default::default()
            };
            run_virtual_with(Arc::new(model.clone()), cfg, vcfg, |shared| {
                make_bundle(kind, shared)
            })
        };
        let fplain = faulted(None);
        let fmetered = faulted(Some(Arc::new(MetricsRegistry::new()) as Arc<dyn MetricsSink>));
        prop_assert_eq!(fmetered.committed, fplain.committed);
        prop_assert_eq!(fmetered.state_fingerprint, fplain.state_fingerprint);
        prop_assert_eq!(fmetered.sched_steps, fplain.sched_steps);
        prop_assert_eq!(fmetered.sim_seconds, fplain.sim_seconds);
        prop_assert_eq!(fplain.committed, plain.committed);
        prop_assert_eq!(fplain.state_fingerprint, plain.state_fingerprint);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// The phase schedule always returns one of its segments and respects
    /// segment boundaries.
    #[test]
    fn phase_schedule_total(x in 1.0f64..40.0, y in 1.0f64..40.0, p in 0.0f64..1.0) {
        let a = PholdParams::new(0.1, 0.01, 10_000);
        let b = PholdParams::new(0.9, 0.10, 5_000);
        let s = PhaseSchedule::alternating(x, a, y, b);
        let got = s.at(p);
        prop_assert!(got == a || got == b);
        // Position within the cycle decides the segment.
        let cycle = (x + y) / 100.0;
        let pos = (p / cycle).fract() * (x + y);
        if pos < x {
            prop_assert_eq!(got, a);
        } else {
            prop_assert_eq!(got, b);
        }
    }
}
