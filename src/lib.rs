//! # cagvt — Controlled Asynchronous GVT
//!
//! A Rust reproduction of *"Controlled Asynchronous GVT: Accelerating
//! Parallel Discrete Event Simulation on Many-Core Clusters"* (Eker,
//! Williams, Chiu, Ponomarev — ICPP 2019): an optimistic (Time Warp) PDES
//! engine in the style of ROSS, a simulated many-core cluster substrate,
//! and the paper's three GVT algorithms — synchronous **Barrier GVT**,
//! asynchronous **Mattern GVT**, and adaptive **CA-GVT**.
//!
//! ## Quick start
//!
//! ```
//! use cagvt::prelude::*;
//! use std::sync::Arc;
//!
//! // A 2-node cluster, 4 workers per node, with a dedicated MPI thread.
//! let mut cfg = SimConfig::small(2, 4);
//! cfg.end_time = 15.0;
//!
//! // The paper's computation-dominated PHOLD workload.
//! let workload = comp_dominated(&cfg);
//!
//! // Run under CA-GVT on the deterministic virtual cluster.
//! let report = run_virtual(Arc::new(workload.model), cfg, |shared| {
//!     make_bundle(GvtKind::CA_DEFAULT, shared)
//! });
//! assert!(report.committed > 0);
//! println!("{report}");
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`base`] | virtual time, wall-clock ns, ids, RNG, stats, actors |
//! | [`net`] | simulated cluster fabric: mailboxes, NIC/latency models, MPI planes, collectives |
//! | [`exec`] | deterministic virtual scheduler + real OS-thread runtime |
//! | [`core`] | the Time Warp engine, GVT interface, sequential reference |
//! | [`gvt`] | Barrier, Mattern and CA-GVT algorithms |
//! | [`fault`] | deterministic fault plans: stragglers, link degradation, drops |
//! | [`trace`] | ring-buffer trace recorder, Chrome/Perfetto export, horizon statistics |
//! | [`metrics`] | per-GVT-epoch metrics registry, CSV/JSONL/Prometheus exporters, health rules |
//! | [`models`] | modified PHOLD, epidemic (SIR), PCS cellular models |
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use cagvt_base as base;
pub use cagvt_core as core;
pub use cagvt_exec as exec;
pub use cagvt_fault as fault;
pub use cagvt_gvt as gvt;
pub use cagvt_metrics as metrics;
pub use cagvt_models as models;
pub use cagvt_net as net;
pub use cagvt_trace as trace;

/// The commonly-needed imports in one place.
pub mod prelude {
    pub use cagvt_base::{
        Actor, FaultInjector, FaultStats, LpId, MetricsEpoch, MetricsSink, NoFaults, NullMetrics,
        NullTrace, TraceSink, VirtualTime, WallNs,
    };
    pub use cagvt_core::cluster::{
        build_cluster, build_shared, build_shared_faulted, build_shared_observed, run_virtual,
        run_virtual_with,
    };
    pub use cagvt_core::model::{Emitter, EventCtx, Model};
    pub use cagvt_core::seq::SequentialSim;
    pub use cagvt_core::{RunReport, SimConfig};
    pub use cagvt_exec::{ThreadConfig, ThreadRuntime, VirtualConfig, VirtualScheduler};
    pub use cagvt_fault::{FaultPlan, FaultRuntime, FaultSpec, FaultTopology, Perturbation};
    pub use cagvt_gvt::{make_bundle, GvtKind};
    pub use cagvt_metrics::{HealthConfig, HealthMonitor, MetricsRegistry};
    pub use cagvt_models::presets::{comm_dominated, comp_dominated, mixed_model};
    pub use cagvt_models::{CqnModel, EpidemicModel, PcsModel, PholdModel, TrafficModel};
    pub use cagvt_net::{ClusterSpec, CostModel, MpiMode};
    pub use cagvt_trace::{chrome_trace, csv_trace, HorizonStats, TraceMeta, TraceRecorder};
}
