//! CA-GVT adaptation in action: a mixed computation/communication PHOLD
//! run where the algorithm switches between asynchronous and synchronous
//! rounds as measured efficiency crosses the threshold (paper §6).
//!
//! ```text
//! cargo run --release --example adaptive_gvt
//! ```

use cagvt::core::cluster::{build_cluster, build_shared};
use cagvt::prelude::*;
use std::sync::Arc;

fn main() {
    let mut cfg = SimConfig::small(2, 16);
    cfg.lps_per_worker = 32;
    cfg.end_time = 40.0;

    // The paper's 10-15 mixed model: 10% of the run computation-dominated,
    // then 15% communication-dominated, repeating.
    let workload = mixed_model(&cfg, 10.0, 15.0);

    let shared = build_shared(Arc::new(workload.model), cfg);
    let bundle = make_bundle(GvtKind::CaGvt { threshold: 0.9 }, &shared);
    let (actors, handles) = build_cluster(Arc::clone(&shared), &*bundle);
    let stats = VirtualScheduler::new(VirtualConfig::default()).run(actors);

    let report = cagvt::core::RunReport::assemble("ca-gvt", &handles.shared, stats);
    println!("{report}\n");

    // Show the mode trace: which rounds ran synchronously.
    let trace = handles.shared.stats.gvt_trace.lock();
    println!("round  mode   efficiency    gvt");
    let mut last_mode = None;
    for rec in trace.iter() {
        let mode = if rec.synchronous { "SYNC " } else { "async" };
        // Print transitions and a sparse sample, not every round.
        let transition = last_mode != Some(rec.synchronous);
        if transition || rec.round % 20 == 0 {
            println!(
                "{:>5}  {}  {:>8.2}%  {:>8.3}{}",
                rec.round,
                mode,
                rec.efficiency * 100.0,
                rec.gvt,
                if transition { "   <- mode switch" } else { "" }
            );
        }
        last_mode = Some(rec.synchronous);
    }
    let sync = trace.iter().filter(|r| r.synchronous).count();
    println!(
        "\n{} rounds total: {} synchronous, {} asynchronous",
        trace.len(),
        sync,
        trace.len() - sync
    );
}
