//! Quickstart: run the paper's PHOLD workload on a small simulated
//! cluster under each GVT algorithm and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cagvt::prelude::*;
use std::sync::Arc;

fn main() {
    // A 2-node cluster with 8 workers per node and a dedicated MPI thread
    // per node, 16 LPs per worker.
    let mut cfg = SimConfig::small(2, 8);
    cfg.lps_per_worker = 16;
    cfg.end_time = 30.0;

    println!(
        "PHOLD (computation-dominated), {} LPs on {} workers x {} nodes\n",
        cfg.total_lps(),
        cfg.spec.workers_per_node,
        cfg.spec.nodes
    );

    for kind in [GvtKind::Barrier, GvtKind::Mattern, GvtKind::Samadi, GvtKind::CA_DEFAULT] {
        let workload = comp_dominated(&cfg);
        let report = run_virtual(Arc::new(workload.model), cfg, |shared| make_bundle(kind, shared));
        println!("{report}\n");
    }

    // Ground truth: the sequential reference processes the same events.
    let workload = comp_dominated(&cfg);
    let seq = SequentialSim::new(Arc::new(workload.model), cfg).run();
    println!(
        "sequential reference: {} events — every run above committed exactly this many",
        seq.processed
    );
}
