//! Domain example: an SIR epidemic over a ring of regions, simulated
//! optimistically and verified against the sequential reference.
//!
//! ```text
//! cargo run --release --example epidemic
//! ```

use cagvt::prelude::*;
use std::sync::Arc;

fn main() {
    let mut cfg = SimConfig::small(2, 4);
    cfg.lps_per_worker = 8; // 64 regions
    cfg.end_time = 120.0;

    let model = EpidemicModel {
        population: 2_000,
        seed_every: 16,
        beta: 0.35,
        gamma: 0.08,
        export_prob: 0.25,
        ..Default::default()
    };

    println!(
        "SIR epidemic: {} regions x {} people, seeded every 16th region\n",
        cfg.total_lps(),
        model.population
    );

    let report =
        run_virtual(Arc::new(model), cfg, |shared| make_bundle(GvtKind::CA_DEFAULT, shared));
    println!("{report}\n");

    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    assert_eq!(
        report.committed, seq.processed,
        "optimistic run must match the sequential reference"
    );
    assert_eq!(report.state_fingerprint, seq.fingerprint);
    println!(
        "verified against sequential reference: {} events, fingerprint {:#x}",
        seq.processed, seq.fingerprint
    );
}
