//! Tutorial: implementing your own simulation model, including reverse
//! computation for snapshot-free rollback.
//!
//! The model here is a ring of token-passing counters — deliberately tiny
//! so every trait method is readable. It demonstrates:
//!
//! 1. the [`Model`] trait: state, payloads, initial events, the handler;
//! 2. determinism rules (all randomness through the provided generator);
//! 3. `state_fingerprint` so the sequential reference can verify runs;
//! 4. optional `reverse` + `supports_reverse` for ROSS-style reverse
//!    computation (the engine then stores 24 bytes per event instead of a
//!    state snapshot).
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use cagvt::base::rng::Pcg32;
use cagvt::prelude::*;
use std::sync::Arc;

/// Each LP owns a counter; a token carries a running sum around the ring.
#[derive(Clone, Copy)]
struct TokenRing {
    /// Mean hop delay.
    mean_hop: f64,
    /// Simulated work per hop, in EPG units (~1 FLOP each).
    work: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Counter {
    hops_seen: u64,
    weighted_sum: u64,
}

impl Model for TokenRing {
    type State = Counter;
    type Payload = u64; // the token's running sum

    fn init_state(&self, _lp: LpId, _rng: &mut Pcg32) -> Counter {
        Counter { hops_seen: 0, weighted_sum: 0 }
    }

    fn initial_events(
        &self,
        lp: LpId,
        _state: &mut Counter,
        rng: &mut Pcg32,
        emit: &mut Emitter<u64>,
    ) {
        // One token starts at every fourth LP.
        if lp.0.is_multiple_of(4) {
            emit.emit(lp, 0.01 + rng.next_exp(self.mean_hop), lp.0 as u64);
        }
    }

    fn handle(
        &self,
        ctx: &EventCtx,
        state: &mut Counter,
        token: &u64,
        rng: &mut Pcg32,
        emit: &mut Emitter<u64>,
    ) -> u64 {
        // Forward pass: fold the token into local state...
        state.hops_seen += 1;
        state.weighted_sum = state.weighted_sum.wrapping_add(token.rotate_left(7));
        // ...and pass it to the next LP on the ring. The hop delay comes
        // from the provided generator — never from global randomness — so
        // rollback/replay and the sequential reference stay bit-identical.
        let next = LpId((ctx.self_lp.0 + 1) % ctx.total_lps);
        emit.emit(next, 0.01 + rng.next_exp(self.mean_hop), token.wrapping_add(1));
        self.work
    }

    fn state_fingerprint(&self, s: &Counter) -> u64 {
        s.hops_seen.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ s.weighted_sum
    }

    // -- Reverse computation -------------------------------------------
    //
    // `reverse` must be the exact inverse of `handle`. The engine restores
    // the generator itself and hands a scratch copy positioned where
    // `handle` started, so draws can be re-derived if the reversal needs
    // them (here it does not: the mutations are algebraically invertible).

    fn supports_reverse(&self) -> bool {
        true
    }

    fn reverse(&self, _ctx: &EventCtx, state: &mut Counter, token: &u64, _rng: &mut Pcg32) {
        state.weighted_sum = state.weighted_sum.wrapping_sub(token.rotate_left(7));
        state.hops_seen -= 1;
    }
}

fn main() {
    let mut cfg = SimConfig::small(2, 4);
    cfg.lps_per_worker = 8; // 64 LPs, 16 tokens
    cfg.end_time = 80.0;

    let model = TokenRing { mean_hop: 1.0, work: 3_000 };
    println!("token ring: {} LPs, {} tokens\n", cfg.total_lps(), cfg.total_lps() / 4);

    // Reverse computation (the model supports it, so it is the default)...
    let reverse =
        run_virtual(Arc::new(model), cfg, |shared| make_bundle(GvtKind::CA_DEFAULT, shared));
    // ...vs forced per-event snapshots...
    let mut snap_cfg = cfg;
    snap_cfg.force_snapshot = true;
    let snapshot =
        run_virtual(Arc::new(model), snap_cfg, |shared| make_bundle(GvtKind::CA_DEFAULT, shared));
    // ...vs periodic state saving with coast-forward.
    let mut per_cfg = cfg;
    per_cfg.periodic_snapshot = Some(16);
    let periodic =
        run_virtual(Arc::new(model), per_cfg, |shared| make_bundle(GvtKind::CA_DEFAULT, shared));

    for (name, r) in [("reverse", &reverse), ("snapshot", &snapshot), ("periodic(16)", &periodic)] {
        println!(
            "{name:<13} committed {:>6}  rollbacks {:>4}  fingerprint {:#018x}",
            r.committed, r.rollbacks, r.state_fingerprint
        );
    }

    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    assert_eq!(reverse.committed, seq.processed);
    assert_eq!(reverse.state_fingerprint, seq.fingerprint);
    assert_eq!(snapshot.state_fingerprint, seq.fingerprint);
    assert_eq!(periodic.state_fingerprint, seq.fingerprint);
    println!(
        "\nall three rollback strategies match the sequential reference ({} events)",
        seq.processed
    );
}
