//! Run the engine on real OS threads instead of the virtual scheduler:
//! the same actors, driven by `ThreadRuntime`, with modeled costs realized
//! as actual busy-waiting. This is how the library behaves as a *real*
//! parallel simulator on multicore hardware.
//!
//! ```text
//! cargo run --release --example real_threads
//! ```

use cagvt::core::cluster::{build_cluster, build_shared};
use cagvt::core::RunReport;
use cagvt::prelude::*;
use cagvt_exec::VirtualRunStats;
use std::sync::Arc;

fn main() {
    // Small topology: one actor per OS thread, so keep it modest.
    let mut cfg = SimConfig::small(2, 2);
    cfg.lps_per_worker = 8;
    cfg.end_time = 10.0;

    let workload = comp_dominated(&cfg);
    let shared = build_shared(Arc::new(workload.model), cfg);
    let bundle = make_bundle(GvtKind::Mattern, &shared);
    let (actors, handles) = build_cluster(Arc::clone(&shared), &*bundle);

    println!("running {} actors on OS threads...", actors.len());
    let t0 = std::time::Instant::now();
    let stats = ThreadRuntime::new(ThreadConfig {
        realize_costs: false, // flat out; set true to realize modeled delays
        ..Default::default()
    })
    .run(actors);
    println!("real time: {:.3}s, {} total steps\n", t0.elapsed().as_secs_f64(), stats.steps);

    let report = RunReport::assemble(
        "mattern",
        &handles.shared,
        // Reuse the report assembler; wall stats come from the real clock.
        VirtualRunStats {
            final_time: stats.elapsed,
            steps: stats.steps,
            idle_steps: 0,
            completed: stats.completed,
        },
    );
    println!("{report}");

    // The committed events still match the sequential reference exactly.
    let workload = comp_dominated(&cfg);
    let seq = SequentialSim::new(Arc::new(workload.model), cfg).run();
    assert_eq!(report.committed, seq.processed);
    assert_eq!(report.state_fingerprint, seq.fingerprint);
    println!("\nverified against sequential reference ({} events)", seq.processed);
}
