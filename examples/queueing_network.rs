//! Domain example: a closed queueing network (tandem rows of FCFS
//! stations with probabilistic switching) — Fujimoto's classic CQN
//! benchmark — run optimistically and verified against the sequential
//! reference.
//!
//! ```text
//! cargo run --release --example queueing_network
//! ```

use cagvt::prelude::*;
use std::sync::Arc;

fn main() {
    let mut cfg = SimConfig::small(2, 4);
    cfg.lps_per_worker = 8; // 64 stations
    cfg.end_time = 60.0;

    let model = CqnModel {
        row_length: 4,
        jobs_per_row: 12,
        mean_service: 1.0,
        switch_prob: 0.3,
        epg: 6_000,
    };
    let rows = cfg.total_lps() / model.row_length;
    println!(
        "CQN: {} stations in {} rows, {} jobs circulating\n",
        cfg.total_lps(),
        rows,
        rows * model.jobs_per_row
    );

    for kind in [GvtKind::Mattern, GvtKind::Barrier, GvtKind::CA_DEFAULT, GvtKind::Samadi] {
        let report = run_virtual(Arc::new(model), cfg, |shared| make_bundle(kind, shared));
        println!(
            "{:<8} steady {:>10.0} ev/s   efficiency {:>6.2}%   rollbacks {:>5}   gvt rounds {:>3}",
            report.algorithm,
            report.steady_rate,
            report.efficiency * 100.0,
            report.rollbacks,
            report.gvt_rounds
        );
    }

    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    println!(
        "\nsequential reference: {} events (all runs above committed exactly this many)",
        seq.processed
    );
}
