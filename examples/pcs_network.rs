//! Domain example: a PCS cellular network (call arrivals, completions,
//! handoffs between neighbouring cells) — a communication-heavy workload
//! where the synchronous and adaptive GVT algorithms shine.
//!
//! ```text
//! cargo run --release --example pcs_network
//! ```

use cagvt::prelude::*;
use std::sync::Arc;

fn main() {
    let mut cfg = SimConfig::small(2, 8);
    cfg.lps_per_worker = 8; // 128 cells
    cfg.end_time = 80.0;

    let model = PcsModel {
        channels: 8,
        mean_interarrival: 1.5,
        mean_hold: 4.0,
        handoff_prob: 0.35,
        epg: 3_000,
    };

    println!(
        "PCS: {} cells, {} channels each, handoff probability {}\n",
        cfg.total_lps(),
        model.channels,
        model.handoff_prob
    );

    for kind in [GvtKind::Mattern, GvtKind::Barrier, GvtKind::CA_DEFAULT] {
        let report = run_virtual(Arc::new(model), cfg, |shared| make_bundle(kind, shared));
        println!(
            "{:<8} steady rate {:>10.0} ev/s   efficiency {:>6.2}%   rollbacks {:>6}",
            report.algorithm,
            report.steady_rate,
            report.efficiency * 100.0,
            report.rollbacks
        );
    }

    let seq = SequentialSim::new(Arc::new(model), cfg).run();
    println!("\nsequential reference: {} events", seq.processed);
}
